//! Facade crate for the FTTT reproduction suite.
//!
//! Re-exports every workspace crate under one roof so the examples and the
//! integration tests in `tests/` can exercise the whole stack through a
//! single dependency:
//!
//! * [`geometry`] — planar geometry (Apollonius circles, grids).
//! * [`signal`] — the log-normal shadowing radio model and the uncertainty
//!   constant `C`.
//! * [`network`] — sensor nodes, deployments, grouping sampling, faults.
//! * [`mobility`] — target traces (random waypoint, waypoint paths).
//! * [`parallel`] — the scoped-thread data-parallel runtime.
//! * [`telemetry`] — counters, gauges, histograms, spans and exporters.
//! * [`fttt`] — the paper's contribution: vectors, face maps, matchers,
//!   trackers and the Section-5 theory.
//! * [`baselines`] — the Direct MLE and PM comparator trackers.

#![forbid(unsafe_code)]

pub use fttt;
pub use wsn_baselines as baselines;
pub use wsn_geometry as geometry;
pub use wsn_mobility as mobility;
pub use wsn_network as network;
pub use wsn_parallel as parallel;
pub use wsn_signal as signal;
pub use wsn_telemetry as telemetry;
