//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! real `rand` cannot be fetched. This crate reimplements exactly the API
//! surface the workspace uses — the [`RngCore`] / [`Rng`] / [`SeedableRng`]
//! traits, uniform range sampling, and [`rngs::StdRng`] — with honest,
//! deterministic generators. It makes no attempt to be stream-compatible
//! with upstream `rand` (nothing in this repo depends on upstream streams;
//! all fixtures were produced by these implementations).
//!
//! Implemented and tested:
//!
//! * `gen::<f64>()`, `gen::<f32>()`, `gen::<bool>()`, `gen::<u32>()`,
//!   `gen::<u64>()` via the [`distributions::Standard`] distribution;
//! * `gen_range(lo..hi)` and `gen_range(lo..=hi)` for the float and integer
//!   types the workspace samples;
//! * `seed_from_u64` via SplitMix64 expansion (the same construction
//!   upstream uses);
//! * [`rngs::StdRng`]: xoshiro256++, seeded from SplitMix64.

/// The backbone of every generator: a source of raw random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Fixed-size seed material.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands one `u64` into a full seed with SplitMix64 and builds the
    /// generator — the construction upstream `rand` documents for this
    /// method.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: the seed-expansion generator (public domain constants).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod distributions {
    //! The `Standard` distribution for primitive types.

    use super::RngCore;

    /// Samples a value of type `T` from a distribution.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The uniform "whole type" distribution: `[0, 1)` for floats, every
    /// value equiprobable for integers and `bool`.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits: uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() >> 31 == 1
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
}

/// Uniform sampling from a half-open or inclusive range.
///
/// Float ranges map 53 random bits affinely onto the interval; integer
/// ranges use Lemire's unbiased multiply-shift rejection.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_float {
    ($t:ty, $bits:expr) => {
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                lo + (hi - lo) * u
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                // The endpoint has measure zero; reuse the half-open map but
                // clamp so `lo..=hi` can actually return `hi`.
                let u = (rng.next_u64() >> 10) as $t * (1.0 / ((1u64 << 53) as $t * 2.0));
                let v = lo + (hi - lo) * u;
                if v > hi {
                    hi
                } else {
                    v
                }
            }
        }
    };
}

impl_uniform_float!(f64, 53);
impl_uniform_float!(f32, 24);

macro_rules! impl_uniform_int {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(sample_below(span, rng) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(sample_below(span + 1, rng) as $t)
            }
        }
    };
}

impl_uniform_int!(u8);
impl_uniform_int!(u16);
impl_uniform_int!(u32);
impl_uniform_int!(u64);
impl_uniform_int!(usize);
impl_uniform_int!(i8);
impl_uniform_int!(i16);
impl_uniform_int!(i32);
impl_uniform_int!(i64);
impl_uniform_int!(isize);

/// Unbiased uniform draw from `[0, span)` (Lemire multiply-shift).
fn sample_below<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let low = m as u64;
        if low >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Ready-made generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's general-purpose RNG: xoshiro256++ (Blackman/Vigna).
    ///
    /// Upstream `StdRng` documents its algorithm as unspecified; this
    /// stand-in keeps that contract while being small and fast.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // A pathological all-zero state would be a fixed point.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = rng.gen_range(-5.0..5.0f64);
            assert!((-5.0..5.0).contains(&a));
            let b = rng.gen_range(0..4);
            assert!((0..4).contains(&b));
            let c = rng.gen_range(-3i8..=3);
            assert!((-3..=3).contains(&c));
            let d = rng.gen_range(10usize..=10);
            assert_eq!(d, 10);
        }
    }

    #[test]
    fn integer_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_of_unit_uniform_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
