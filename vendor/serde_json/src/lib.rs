//! Offline compile-only stand-in for `serde_json`.
//!
//! This crate exists so that dev-dependencies on `serde_json` resolve
//! without a registry. The functions compile against the vendored `serde`
//! marker traits but return [`Error`] at runtime: JSON round-trip tests are
//! gated behind the non-default `serde` feature and are not supported in
//! this offline environment. Code that needs to *emit* JSON (e.g. the bench
//! snapshot writer) formats it by hand instead.

use std::fmt;

/// The error every stub operation returns.
#[derive(Debug)]
pub struct Error {
    what: &'static str,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json offline stub: {} is not implemented", self.what)
    }
}

impl std::error::Error for Error {}

/// Stub result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Always fails: serialization is not available offline.
pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    Err(Error { what: "to_string" })
}

/// Always fails: serialization is not available offline.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    Err(Error { what: "to_string_pretty" })
}

/// Always fails: deserialization is not available offline.
pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    Err(Error { what: "from_str" })
}

#[cfg(test)]
mod tests {
    #[test]
    fn stub_reports_errors() {
        let err = super::to_string(&1.0f64).unwrap_err();
        assert!(err.to_string().contains("offline stub"));
        let err = super::from_str::<f64>("1.0").unwrap_err();
        assert!(err.to_string().contains("offline stub"));
    }
}
