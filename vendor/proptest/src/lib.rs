//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach a registry, so this crate provides the
//! subset of the proptest API the workspace's property suites use: the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] /
//! [`prop_oneof!`] macros, the [`strategy::Strategy`] trait with `prop_map`,
//! `Just`, range and tuple strategies, and [`collection::vec`].
//!
//! Semantics: each test runs `ProptestConfig::cases` random cases from a
//! ChaCha8 generator seeded deterministically from the test's module path and
//! name, so failures reproduce exactly across runs. There is no shrinking —
//! a failing case reports its case index and message instead of a minimized
//! input. `prop_assume!` rejects the current sample and draws a fresh one,
//! with a global rejection cap to catch vacuous tests.

pub use error::TestCaseError;

/// Per-test-suite configuration (the `#![proptest_config(...)]` header).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required for the test to succeed.
    pub cases: u32,
    /// Maximum total `prop_assume!` rejections before the test aborts.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config that runs `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64, max_global_rejects: 4096 }
    }
}

mod error {
    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed: the property is violated.
        Fail(String),
        /// A `prop_assume!` precondition failed: discard and resample.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }
}

pub mod test_runner {
    //! The deterministic generator driving each property test.

    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Random source for strategy sampling. Seeded from the test's fully
    /// qualified name (FNV-1a), so every run replays the same case sequence.
    pub struct TestRng(ChaCha8Rng);

    impl TestRng {
        /// Builds the generator for the named test.
        pub fn deterministic(test_name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in test_name.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(ChaCha8Rng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::{Rng, SampleUniform};
    use std::rc::Rc;

    /// Generates random values of an output type.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking: a
    /// strategy is just a sampler.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Type-erased strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Uniform choice between alternative strategies ([`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over the given alternatives (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }

    impl<T: SampleUniform + 'static> Strategy for std::ops::Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: SampleUniform + 'static> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

/// Defines property-test functions: `fn name(pat in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __rejects: u32 = 0;
                let mut __case: u32 = 0;
                while __case < __config.cases {
                    let __outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {
                            __case += 1;
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Reject(__why)) => {
                            __rejects += 1;
                            if __rejects > __config.max_global_rejects {
                                panic!(
                                    "proptest {}: too many prop_assume! rejections ({}), last: {}",
                                    stringify!($name),
                                    __rejects,
                                    __why,
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest {} failed at case {}: {}",
                                stringify!($name),
                                __case,
                                __msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                __l,
                __r,
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)+),
            )));
        }
    }};
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}` ({} == {})",
                __l,
                __r,
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Discards the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    struct P(f64, f64);

    fn arb_p() -> impl Strategy<Value = P> {
        (0.0..10.0f64, -5.0..5.0f64).prop_map(|(x, y)| P(x, y))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn ranges_respect_bounds(x in 1.0..2.0f64, n in 3usize..7, s in -1i8..=1) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((3..7).contains(&n));
            prop_assert!((-1..=1).contains(&s), "signed {} out of range", s);
        }

        #[test]
        fn mapped_tuples_compose(p in arb_p()) {
            prop_assert!(p.0 >= 0.0 && p.0 < 10.0);
            prop_assert!(p.1 >= -5.0 && p.1 < 5.0);
        }

        #[test]
        fn vec_lengths_obey_size_range(v in prop::collection::vec(0u64..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn oneof_and_just(opt in prop_oneof![Just(None), (-1.0..=1.0f64).prop_map(Some)]) {
            if let Some(x) = opt {
                prop_assert!((-1.0..=1.0).contains(&x));
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0.0..1.0f64) {
            prop_assert!(x >= 0.0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0.0..1.0f64, 0u64..1000);
        let mut a = TestRng::deterministic("demo");
        let mut b = TestRng::deterministic("demo");
        for _ in 0..100 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0.0..1.0f64) {
                prop_assert!(x < 0.0, "x was {}", x);
            }
        }
        inner();
    }
}
