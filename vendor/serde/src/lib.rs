//! Offline stand-in for `serde`.
//!
//! [`Serialize`] and [`Deserialize`] are empty marker traits: enough for the
//! workspace's `#[cfg_attr(feature = "serde", derive(...))]` attributes and
//! generic bounds to compile, with no actual serialization machinery. The
//! `serde_json` stub pairs with this by returning errors at runtime, so the
//! feature-gated round-trip tests are not supported offline (the default
//! build never enables them).

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Serialize> Serialize for Box<[T]> {}
impl Serialize for f64 {}
impl Serialize for f32 {}
impl Serialize for u8 {}
impl Serialize for i8 {}
impl Serialize for u32 {}
impl Serialize for u64 {}
impl Serialize for usize {}
impl Serialize for bool {}
impl Serialize for String {}
impl Serialize for str {}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<[T]> {}
impl<'de> Deserialize<'de> for f64 {}
impl<'de> Deserialize<'de> for f32 {}
impl<'de> Deserialize<'de> for u8 {}
impl<'de> Deserialize<'de> for i8 {}
impl<'de> Deserialize<'de> for u32 {}
impl<'de> Deserialize<'de> for u64 {}
impl<'de> Deserialize<'de> for usize {}
impl<'de> Deserialize<'de> for bool {}
impl<'de> Deserialize<'de> for String {}
