//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-definition API this workspace uses —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! plain wall-clock harness: calibrating warmup, then `sample_size` timed
//! samples, reporting min/median/mean ns per iteration to stdout. There is
//! no statistical regression analysis, HTML report, or CLI filtering.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level harness handle passed to every `criterion_group!` target.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { warm_up: Duration::from_millis(300), measurement: Duration::from_millis(1200) }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup { criterion: self, name, sample_size: 30 }
    }

    /// Registers a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let warm_up = self.warm_up;
        let measurement = self.measurement;
        run_benchmark(&id.to_string(), warm_up, measurement, 30, f);
        self
    }
}

/// A named benchmark within a group (`name/parameter`).
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { repr: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { repr: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs `f` as a benchmark named `{group}/{id}`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.criterion.warm_up, self.criterion.measurement, self.sample_size, f);
        self
    }

    /// Runs `f(bencher, input)` as a benchmark named `{group}/{id}`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`: calibrates an iteration count during warmup, then
    /// collects `sample_size` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup doubles the batch size until it covers the warmup budget,
        // which also brings code and data into cache.
        let mut batch: u64 = 1;
        let mut per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.warm_up || batch >= 1 << 40 {
                break elapsed.as_nanos() as f64 / batch as f64;
            }
            batch = batch.saturating_mul(2);
        };
        if per_iter_ns <= 0.0 {
            per_iter_ns = 1.0;
        }
        let budget_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = (budget_ns / per_iter_ns).ceil().max(1.0) as u64;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(routine());
            }
            self.samples_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }
}

fn run_benchmark<F>(label: &str, warm_up: Duration, measurement: Duration, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher =
        Bencher { warm_up, measurement, sample_size, samples_ns: Vec::with_capacity(sample_size) };
    f(&mut bencher);
    let mut samples = bencher.samples_ns;
    if samples.is_empty() {
        println!("  {label:<40} (no measurement: Bencher::iter never called)");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "  {label:<40} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        samples.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into one registration function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups (CLI arguments are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion {
            warm_up: Duration::from_micros(200),
            measurement: Duration::from_micros(500),
        }
    }

    #[test]
    fn group_runs_benchmarks_and_reports() {
        let mut c = fast_criterion();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        let mut ran = 0u32;
        g.bench_function("sum", |b| {
            ran += 1;
            b.iter(|| (0..100u64).sum::<u64>());
        });
        g.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| {
            b.iter(|| x * x);
        });
        g.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("exhaustive", 20).to_string(), "exhaustive/20");
        assert_eq!(BenchmarkId::from_parameter(4).to_string(), "4");
    }

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            warm_up: Duration::from_micros(100),
            measurement: Duration::from_micros(400),
            sample_size: 5,
            samples_ns: Vec::new(),
        };
        b.iter(|| black_box(3u64).wrapping_mul(5));
        assert_eq!(b.samples_ns.len(), 5);
        assert!(b.samples_ns.iter().all(|&s| s >= 0.0));
    }

    criterion_group!(demo_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        // Replace the default budgets so the test stays fast.
        *c = fast_criterion();
        let mut g = c.benchmark_group("noop");
        g.sample_size(2);
        g.bench_function("id", |b| b.iter(|| 1u64));
        g.finish();
    }

    #[test]
    fn macro_generated_group_runs() {
        demo_group();
    }
}
