//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` defines [`Serialize`]/[`Deserialize`] as empty
//! marker traits; these derives emit the corresponding marker impls so that
//! `#[cfg_attr(feature = "serde", derive(serde::Serialize, ...))]` attributes
//! across the workspace still compile when the feature is enabled. No
//! serialization code is generated — `serde_json`'s stub functions return
//! errors at runtime.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name a `derive` is attached to: the identifier right
/// after the first `struct` or `enum` keyword. Generic types are rejected
/// (nothing in this workspace derives serde on a generic type).
fn derived_type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("serde_derive stub: expected type name, found {other:?}"),
                };
                if let Some(TokenTree::Punct(p)) = tokens.next() {
                    if p.as_char() == '<' {
                        panic!(
                            "serde_derive stub: generic type `{name}` is not supported; \
                             write the marker impl by hand"
                        );
                    }
                }
                return name;
            }
        }
    }
    panic!("serde_derive stub: no struct or enum found in derive input");
}

/// No-op `Serialize` derive: emits only the marker-trait impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = derived_type_name(input);
    format!("impl serde::Serialize for {name} {{}}").parse().expect("valid impl tokens")
}

/// No-op `Deserialize` derive: emits only the marker-trait impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = derived_type_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl tokens")
}
