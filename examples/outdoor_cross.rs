//! The outdoor testbed scenario (paper Fig. 13), with an ASCII rendering
//! of the field: 9 sensors in a "+", a walker on a "⌐" path, basic and
//! extended FTTT estimates overlaid.
//!
//! ```sh
//! cargo run --release --example outdoor_cross
//! ```

use fttt_suite::fttt::config::PaperParams;
use fttt_suite::fttt::tracker::{Tracker, TrackerOptions};
use fttt_suite::geometry::{Point, Rect};
use fttt_suite::mobility::WaypointPath;
use fttt_suite::network::{Deployment, SensorField};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Renders the 100×100 m field as a `rows × cols` character raster.
struct Canvas {
    cols: usize,
    rows: usize,
    cells: Vec<char>,
}

impl Canvas {
    fn new(cols: usize, rows: usize) -> Self {
        Self {
            cols,
            rows,
            cells: vec!['.'; cols * rows],
        }
    }

    fn plot(&mut self, p: Point, glyph: char) {
        let cx = (p.x / 100.0 * self.cols as f64) as usize;
        let cy = (p.y / 100.0 * self.rows as f64) as usize;
        if cx < self.cols && cy < self.rows {
            // y grows upward; render top row first.
            self.cells[(self.rows - 1 - cy) * self.cols + cx] = glyph;
        }
    }

    fn print(&self) {
        for row in self.cells.chunks(self.cols) {
            println!("  {}", row.iter().collect::<String>());
        }
    }
}

fn main() {
    let params = PaperParams {
        beta: 3.0,
        nodes: 9,
        ..PaperParams::default()
    };
    let rect = Rect::square(100.0);
    let deployment = Deployment::cross(rect.center(), 2, 15.0, rect);
    let field = SensorField::new(deployment, params.sensing_range);
    let path = WaypointPath::corner(Point::new(30.0, 70.0), 40.0);

    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let trace = path.walk_random_speed(1.0, 5.0, params.localization_period(), &mut rng);

    let map = params.face_map(&field);
    println!(
        "9 IRIS-style sensors in a '+', walker on a ⌐ path at 1–5 m/s; {} faces\n",
        map.face_count()
    );

    for (name, options, glyph) in [
        ("basic FTTT", TrackerOptions::default(), 'b'),
        ("extended FTTT", TrackerOptions::extended(), 'e'),
    ] {
        let mut world = ChaCha8Rng::seed_from_u64(17);
        let mut tracker = Tracker::new(map.clone(), options);
        let run = tracker.track(&field, &params.sampler(), &trace, &mut world);
        let stats = run.error_stats();
        println!(
            "{name}: mean {:.2} m, std {:.2} m, max {:.2} m over {} localizations",
            stats.mean, stats.std, stats.max, stats.count
        );

        let mut canvas = Canvas::new(60, 30);
        for l in &run.localizations {
            canvas.plot(l.truth, '#');
        }
        for l in &run.localizations {
            canvas.plot(l.estimate, glyph);
        }
        for node in field.nodes() {
            canvas.plot(node.pos, 'S');
        }
        canvas.print();
        println!("  S sensors   # true walk   {glyph} estimates\n");
    }
}
