//! Fault tolerance in action: the same tracking problem under increasing
//! sensor failure, with permanently dead nodes and per-reading losses.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use fttt_suite::fttt::config::PaperParams;
use fttt_suite::fttt::tracker::{Tracker, TrackerOptions};
use fttt_suite::network::{FaultModel, NodeId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let params = PaperParams::default().with_nodes(15);
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let field = params.random_field(&mut rng);
    let map = params.face_map(&field);
    let trace = params.random_trace(60.0, &mut rng);

    println!("15 sensors, 60 s target; FTTT with the eq.-6 fault rule\n");
    println!("{:<42} {:>9} {:>9}", "fault model", "mean (m)", "max (m)");

    let cases: Vec<(String, FaultModel)> = vec![
        ("no faults".into(), FaultModel::none()),
        ("10% node failure / localization".into(), FaultModel::with_node_failure(0.10)),
        ("30% node failure / localization".into(), FaultModel::with_node_failure(0.30)),
        ("50% node failure / localization".into(), FaultModel::with_node_failure(0.50)),
        ("20% of one-shot readings lost".into(), FaultModel::with_reading_drop(0.20)),
        (
            "nodes 0–2 permanently dead".into(),
            FaultModel::with_dead_nodes([NodeId(0), NodeId(1), NodeId(2)]),
        ),
    ];

    for (name, fault) in cases {
        let sampler = params.sampler().with_fault(fault);
        let mut world = ChaCha8Rng::seed_from_u64(21);
        let mut tracker = Tracker::new(map.clone(), TrackerOptions::default());
        let run = tracker.track(&field, &sampler, &trace, &mut world);
        let s = run.error_stats();
        println!("{name:<42} {:>9.2} {:>9.2}", s.mean, s.max);
    }

    println!();
    println!("Silent sensors land their pairs on the eq.-6 values (or '*'), so the");
    println!("sampling vector keeps the signature dimension and matching proceeds —");
    println!("accuracy degrades gracefully instead of failing.");
}
