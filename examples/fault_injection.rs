//! Fault tolerance in action, in two acts:
//!
//! 1. the eq.-6 fault rule alone: a bare tracker under increasing static
//!    sensor failure;
//! 2. the self-healing session layer: a composable, time-evolving fault
//!    regime (bursty loss, a mid-run blackout, two lying sensors) written
//!    in the `wsn_network::spec` schedule language, with the session's
//!    status ladder and adaptive sampling shown round by round.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use fttt_suite::fttt::config::PaperParams;
use fttt_suite::fttt::session::{SessionOptions, TrackStatus, TrackingSession};
use fttt_suite::fttt::tracker::{Tracker, TrackerOptions};
use fttt_suite::network::{FaultModel, GroupSampler, NodeId, Schedule};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The regime schedule of act 2 — the same text a user would put in a
/// config file for `fttt-sim campaign --schedule`.
const SCHEDULE: &str = "\
# bursty channel all run long
burst enter=0.10 exit=0.40 loss_bad=0.9
# every node silent for six seconds mid-run
outage from=20 until=26
# two sensors freeze (keep reporting a stale value) from t = 35
stuck nodes=0,1 from=35
";

fn main() {
    let params = PaperParams::default().with_nodes(15);
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let field = params.random_field(&mut rng);
    let map = params.face_map(&field);
    let trace = params.random_trace(60.0, &mut rng);

    println!("Act 1 — 15 sensors, 60 s target; FTTT with the eq.-6 fault rule\n");
    println!("{:<42} {:>9} {:>9}", "fault model", "mean (m)", "max (m)");

    let cases: Vec<(String, FaultModel)> = vec![
        ("no faults".into(), FaultModel::none()),
        (
            "10% node failure / localization".into(),
            FaultModel::with_node_failure(0.10),
        ),
        (
            "30% node failure / localization".into(),
            FaultModel::with_node_failure(0.30),
        ),
        (
            "50% node failure / localization".into(),
            FaultModel::with_node_failure(0.50),
        ),
        (
            "20% of one-shot readings lost".into(),
            FaultModel::with_reading_drop(0.20),
        ),
        (
            "nodes 0–2 permanently dead".into(),
            FaultModel::with_dead_nodes([NodeId(0), NodeId(1), NodeId(2)]),
        ),
    ];

    for (name, fault) in cases {
        let sampler = params.sampler().with_fault(fault);
        let mut world = ChaCha8Rng::seed_from_u64(21);
        let mut tracker = Tracker::new(map.clone(), TrackerOptions::default());
        let run = tracker.track(&field, &sampler, &trace, &mut world);
        let s = run.error_stats();
        println!("{name:<42} {:>9.2} {:>9.2}", s.mean, s.max);
    }

    println!();
    println!("Silent sensors land their pairs on the eq.-6 values (or '*'), so the");
    println!("sampling vector keeps the signature dimension and matching proceeds —");
    println!("accuracy degrades gracefully instead of failing.");

    println!("\nAct 2 — a time-evolving regime schedule + a self-healing session\n");
    print!("{}", SCHEDULE.replace("# ", "  # ").replace('\n', "\n  "));
    println!();

    // Watch the whole act through the telemetry spine: the sink collects
    // per-layer counters while the session runs.
    let registry = std::sync::Arc::new(fttt_suite::telemetry::Registry::new());
    fttt_suite::telemetry::install(std::sync::Arc::clone(&registry));

    let schedule = Schedule::parse(SCHEDULE).expect("schedule is valid");
    let mut engine = schedule.engine(field.len());
    let mut session = TrackingSession::new(
        Tracker::new(map, TrackerOptions::heuristic()),
        SessionOptions::new(params.samples_k).with_max_speed(params.max_speed),
    );
    let base = params.sampler();
    let mut world = ChaCha8Rng::seed_from_u64(21);
    let run = session.run(&trace, &mut world, |k, pos, t, r| {
        let sampler = GroupSampler {
            samples: k,
            ..base.clone()
        };
        let mut g = sampler.sample(&field, pos, r);
        engine.apply(t, &mut g, r);
        g
    });

    println!(
        "{:>6} {:>9} {:>4} {:>6} {:>10}  status",
        "t (s)", "err (m)", "k", "miss", "held"
    );
    for (round, err) in run.rounds.iter().zip(&run.errors).step_by(4) {
        let status = match round.status {
            TrackStatus::Tracking => "Tracking",
            TrackStatus::Degraded => "Degraded",
            TrackStatus::Lost => "LOST",
        };
        println!(
            "{:>6.1} {:>9.2} {:>4} {:>5.0}% {:>10}  {status}",
            round.t,
            err,
            round.samples,
            100.0 * round.missing_fraction,
            if round.held { "hold" } else { "" },
        );
    }

    let s = run.error_stats();
    println!(
        "\nsession: mean {:.2} m | max {:.2} m | {} rounds Lost | recovered: {}",
        s.mean,
        s.max,
        run.rounds_in(TrackStatus::Lost),
        run.recovered_from_lost(),
    );
    println!("The blackout drives the session Lost (it holds the last trusted estimate");
    println!("and escalates k toward the Section-5.1 bound); when readings return it");
    println!("re-acquires exhaustively and walks back to Tracking.");

    fttt_suite::telemetry::uninstall();
    let snap = registry.snapshot();
    println!("\ntelemetry (same counters `fttt-sim campaign --metrics-out` writes):");
    for name in [
        "fttt.session.rounds",
        "fttt.session.transitions",
        "fttt.session.to_lost",
        "fttt.session.escalations",
        "fttt.match.evaluations",
        "wsn.regime.activations",
        "wsn.regime.readings_dropped",
        "wsn.regime.readings_lying",
    ] {
        println!(
            "  {name:<32} {}",
            snap.counters.get(name).copied().unwrap_or(0)
        );
    }
}
