//! Quickstart: track one target with FTTT in ~20 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fttt_suite::fttt::config::PaperParams;
use fttt_suite::fttt::tracker::{Tracker, TrackerOptions};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // The paper's Table-1 setting: 100×100 m² field, β = 4, σ = 6, R = 40 m,
    // ε = 1 dBm, k = 5 samples per localization, 10 random sensors.
    let params = PaperParams::default().with_nodes(10);
    let mut rng = ChaCha8Rng::seed_from_u64(42);

    // Deploy sensors, precompute the face map (offline phase).
    let field = params.random_field(&mut rng);
    let map = params.face_map(&field);
    println!(
        "deployed {} sensors; field divided into {} faces (C = {:.4})",
        field.len(),
        map.face_count(),
        params.uncertainty_constant()
    );

    // A 30 s random-waypoint target, localized every k/λ = 0.5 s.
    let trace = params.random_trace(30.0, &mut rng);

    // Online phase: grouping sampling → sampling vector → face matching.
    let mut tracker = Tracker::new(map, TrackerOptions::default());
    let run = tracker.track(&field, &params.sampler(), &trace, &mut rng);

    let stats = run.error_stats();
    println!(
        "{} localizations: mean error {:.2} m, std {:.2} m, max {:.2} m",
        stats.count, stats.mean, stats.std, stats.max
    );
    for l in run.localizations.iter().take(5) {
        println!(
            "  t = {:>4.1}s  truth {}  estimate {}  error {:.2} m",
            l.t, l.truth, l.estimate, l.error
        );
    }
    println!("  …");
}
