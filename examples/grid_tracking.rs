//! Strategy comparison on a grid deployment: FTTT (basic, extended,
//! heuristic) against PM and Direct MLE on the *same* world — the same
//! sensors, trace and noise stream.
//!
//! ```sh
//! cargo run --release --example grid_tracking
//! ```

use fttt_suite::baselines::{DirectMle, PathMatching};
use fttt_suite::fttt::config::PaperParams;
use fttt_suite::fttt::tracker::{Tracker, TrackerOptions, TrackingRun};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let params = PaperParams::default().with_nodes(16);
    let field = params.grid_field();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let trace = params.random_trace(60.0, &mut rng);
    let sampler = params.sampler();
    let positions = field.deployment().positions();

    let report = |name: &str, run: TrackingRun| {
        let s = run.error_stats();
        println!(
            "{name:<14} mean {:>6.2} m   std {:>6.2} m   max {:>6.2} m   evals/loc {:>6.0}",
            s.mean,
            s.std,
            s.max,
            run.total_evaluated() as f64 / run.localizations.len() as f64
        );
    };

    println!(
        "grid of {} sensors, 60 s random-waypoint target\n",
        field.len()
    );

    let map = params.face_map(&field);
    for (name, options) in [
        ("FTTT basic", TrackerOptions::default()),
        ("FTTT extended", TrackerOptions::extended()),
        ("FTTT heuristic", TrackerOptions::heuristic()),
    ] {
        let mut world = ChaCha8Rng::seed_from_u64(99);
        let mut tracker = Tracker::new(map.clone(), options);
        report(name, tracker.track(&field, &sampler, &trace, &mut world));
    }

    let mle = DirectMle::new(&positions, params.rect(), params.cell_size);
    let mut world = ChaCha8Rng::seed_from_u64(99);
    report(
        "Direct MLE",
        mle.track(&field, &sampler, &trace, &mut world),
    );

    let mut pm = PathMatching::new(
        &positions,
        params.rect(),
        params.cell_size,
        params.max_speed,
        params.localization_period(),
    );
    let mut world = ChaCha8Rng::seed_from_u64(99);
    report("PM", pm.track(&field, &sampler, &trace, &mut world));

    println!("\n(all five trackers consumed the identical RSS streams)");
}
