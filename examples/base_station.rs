//! End-to-end system simulation: sensors → lossy uplink → base station →
//! FTTT, with per-node energy accounting.
//!
//! This is the deployment story of the paper's Section 4.3 (results
//! "real-time aggregated and stored in the base stations") with the parts
//! a field system adds: packet loss, delivery deadlines and an energy
//! budget.
//!
//! ```sh
//! cargo run --release --example base_station
//! ```

use fttt_suite::fttt::config::PaperParams;
use fttt_suite::fttt::tracker::{Tracker, TrackerOptions};
use fttt_suite::network::{EnergyLedger, EnergyModel, Uplink};
use fttt_suite::signal::Gaussian;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let params = PaperParams::default().with_nodes(12);
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let field = params.random_field(&mut rng);
    let map = params.face_map(&field);
    let trace = params.random_trace(60.0, &mut rng);
    let sampler = params.sampler();

    println!(
        "12 sensors, 60 s target, localization every {:.1} s\n",
        params.localization_period()
    );
    println!(
        "{:<34} {:>9} {:>9} {:>11} {:>12}",
        "uplink", "mean (m)", "max (m)", "delivered %", "energy (mJ)"
    );

    let cases: Vec<(String, Uplink)> = vec![
        ("ideal".into(), Uplink::ideal()),
        (
            "5% loss, 20±10 ms, 100 ms deadline".into(),
            Uplink::new(0.05, Gaussian::new(0.02, 0.01), 0.1),
        ),
        (
            "20% loss, 50±30 ms, 100 ms deadline".into(),
            Uplink::new(0.20, Gaussian::new(0.05, 0.03), 0.1),
        ),
        (
            "5% loss, 120±40 ms, 100 ms deadline".into(),
            Uplink::new(0.05, Gaussian::new(0.12, 0.04), 0.1),
        ),
    ];

    for (name, uplink) in cases {
        let mut world = ChaCha8Rng::seed_from_u64(31);
        let mut tracker = Tracker::new(map.clone(), TrackerOptions::default());
        let mut ledger = EnergyLedger::new(EnergyModel::default(), field.len());
        let mut errors = Vec::new();
        let mut sent = 0usize;
        let mut delivered = 0usize;
        for p in trace.points() {
            let sensed = sampler.sample(&field, p.pos, &mut world);
            // Sensors pay for acquisition + transmission regardless of
            // whether the sink hears them.
            ledger.charge_grouping(&sensed);
            sent += sensed.responding().iter().filter(|&&b| b).count();
            let (received, latencies) = uplink.deliver(&sensed, &mut world);
            delivered += latencies.iter().flatten().count();
            let (estimate, _) = tracker.localize(&received);
            errors.push(estimate.distance(p.pos));
        }
        ledger.charge_idle(trace.duration());
        let stats = fttt_suite::fttt::error::ErrorStats::from_errors(&errors);
        println!(
            "{name:<34} {:>9.2} {:>9.2} {:>11.1} {:>12.2}",
            stats.mean,
            stats.max,
            100.0 * delivered as f64 / sent.max(1) as f64,
            ledger.total() * 1e3,
        );
    }

    println!();
    println!("Lost and late packets put their senders in the paper's N̄_r set; the");
    println!("eq.-6 rule keeps the sampling vector full-length, so accuracy decays");
    println!("with delivery rate instead of collapsing.");
}
