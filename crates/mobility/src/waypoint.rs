//! The random waypoint mobility model (paper Table 1 / reference [30]).

use crate::trace::{TimedPoint, Trace};
use rand::Rng;
use wsn_geometry::{Point, Rect};

/// Random waypoint: the target repeatedly picks a uniform destination in
/// the field, walks there in a straight line at a uniform-random speed, and
/// optionally pauses before the next leg.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RandomWaypoint {
    /// Field the target roams in.
    pub field: Rect,
    /// Minimum speed, m/s (Table 1: 1).
    pub min_speed: f64,
    /// Maximum speed, m/s (Table 1: 5).
    pub max_speed: f64,
    /// Pause at each waypoint, seconds (paper uses continuous movement: 0).
    pub pause: f64,
}

impl RandomWaypoint {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_speed ≤ max_speed` and `pause ≥ 0`, all
    /// finite.
    pub fn new(field: Rect, min_speed: f64, max_speed: f64, pause: f64) -> Self {
        assert!(
            min_speed.is_finite() && max_speed.is_finite() && pause.is_finite(),
            "mobility parameters must be finite"
        );
        assert!(
            min_speed > 0.0,
            "min speed must be positive, got {min_speed}"
        );
        assert!(max_speed >= min_speed, "max speed below min speed");
        assert!(pause >= 0.0, "pause must be non-negative");
        Self {
            field,
            min_speed,
            max_speed,
            pause,
        }
    }

    /// The paper's setting: 1–5 m/s, no pause.
    pub fn paper_default(field: Rect) -> Self {
        Self::new(field, 1.0, 5.0, 0.0)
    }

    /// Generates a trace of `duration` seconds sampled every `dt` seconds,
    /// starting from a uniform-random position.
    ///
    /// # Panics
    ///
    /// Panics if `duration` or `dt` is not strictly positive.
    pub fn trace<R: Rng + ?Sized>(&self, duration: f64, dt: f64, rng: &mut R) -> Trace {
        assert!(
            duration > 0.0 && duration.is_finite(),
            "duration must be positive"
        );
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive");
        let mut pos = self.random_point(rng);
        let mut samples = Vec::with_capacity((duration / dt).ceil() as usize + 1);
        let mut t = 0.0;
        // Current leg state.
        let mut dest = self.random_point(rng);
        let mut speed = self.random_speed(rng);
        let mut pause_left = 0.0_f64;
        while t <= duration {
            samples.push(TimedPoint::new(t, pos));
            let mut step_left = dt;
            // Advance the continuous-time state by dt, possibly across
            // several waypoint arrivals within one sampling period.
            while step_left > 0.0 {
                if pause_left > 0.0 {
                    let hold = pause_left.min(step_left);
                    pause_left -= hold;
                    step_left -= hold;
                    continue;
                }
                let to_dest = dest - pos;
                let dist = to_dest.norm();
                let reach = speed * step_left;
                if reach < dist {
                    pos += to_dest * (reach / dist);
                    step_left = 0.0;
                } else {
                    pos = dest;
                    step_left -= if speed > 0.0 { dist / speed } else { step_left };
                    pause_left = self.pause;
                    dest = self.random_point(rng);
                    speed = self.random_speed(rng);
                }
            }
            t += dt;
        }
        Trace::new(samples)
    }

    fn random_point<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        Point::new(
            rng.gen_range(self.field.min.x..=self.field.max.x),
            rng.gen_range(self.field.min.y..=self.field.max.y),
        )
    }

    fn random_speed<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.max_speed > self.min_speed {
            rng.gen_range(self.min_speed..=self.max_speed)
        } else {
            self.min_speed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    fn model() -> RandomWaypoint {
        RandomWaypoint::paper_default(Rect::square(100.0))
    }

    #[test]
    fn trace_covers_duration_with_fixed_period() {
        let tr = model().trace(60.0, 0.5, &mut rng(1));
        assert_eq!(tr.start_time(), 0.0);
        assert!((tr.end_time() - 60.0).abs() < 0.5 + 1e-9);
        assert_eq!(tr.len(), 121);
    }

    #[test]
    fn target_stays_in_field() {
        let field = Rect::square(100.0);
        let tr = model().trace(120.0, 0.1, &mut rng(2));
        for p in tr.points() {
            assert!(field.contains(p.pos), "escaped to {}", p.pos);
        }
    }

    #[test]
    fn speed_between_samples_is_bounded() {
        let m = model();
        let dt = 0.1;
        let tr = m.trace(60.0, dt, &mut rng(3));
        for w in tr.points().windows(2) {
            let v = w[0].pos.distance(w[1].pos) / dt;
            // Up to max_speed (a leg change inside dt can only slow it down).
            assert!(v <= m.max_speed + 1e-6, "speed {v}");
        }
    }

    #[test]
    fn moves_at_least_at_min_speed_without_pause() {
        let m = model();
        let tr = m.trace(60.0, 1.0, &mut rng(4));
        // Total path length must be at least min_speed × duration (waypoint
        // turns inside a step only shorten the displacement, not the path,
        // so allow a generous margin).
        assert!(tr.path_length() > 0.5 * m.min_speed * 60.0);
    }

    #[test]
    fn pause_produces_stationary_stretches() {
        let m = RandomWaypoint::new(Rect::square(50.0), 5.0, 5.0, 10.0);
        let tr = m.trace(100.0, 0.5, &mut rng(5));
        let stationary = tr
            .points()
            .windows(2)
            .filter(|w| w[0].pos.distance(w[1].pos) < 1e-12)
            .count();
        assert!(
            stationary > 10,
            "expected pauses, found {stationary} stationary steps"
        );
    }

    #[test]
    fn reproducible_under_seed() {
        let a = model().trace(30.0, 0.5, &mut rng(9));
        let b = model().trace(30.0, 0.5, &mut rng(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "min speed")]
    fn zero_speed_rejected() {
        let _ = RandomWaypoint::new(Rect::square(10.0), 0.0, 1.0, 0.0);
    }
}
