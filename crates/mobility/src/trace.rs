//! Time-stamped target trajectories.

use wsn_geometry::Point;

/// One trajectory sample: the target was at `pos` at time `t` (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimedPoint {
    /// Time in seconds.
    pub t: f64,
    /// Target position.
    pub pos: Point,
}

impl TimedPoint {
    /// Creates a sample.
    #[inline]
    pub const fn new(t: f64, pos: Point) -> Self {
        Self { t, pos }
    }
}

/// A target trajectory: a non-empty sequence of [`TimedPoint`]s with
/// strictly increasing timestamps, interpolated linearly between samples.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trace {
    points: Vec<TimedPoint>,
}

impl Trace {
    /// Wraps a sample sequence.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, timestamps are not strictly increasing,
    /// or any coordinate/timestamp is non-finite.
    pub fn new(points: Vec<TimedPoint>) -> Self {
        assert!(!points.is_empty(), "a trace needs at least one sample");
        for w in points.windows(2) {
            assert!(
                w[1].t > w[0].t,
                "trace timestamps must strictly increase: {} !< {}",
                w[0].t,
                w[1].t
            );
        }
        for p in &points {
            assert!(
                p.t.is_finite() && p.pos.is_finite(),
                "trace samples must be finite"
            );
        }
        Self { points }
    }

    /// The samples, in time order.
    #[inline]
    pub fn points(&self) -> &[TimedPoint] {
        &self.points
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always `false` (construction requires ≥ 1 sample).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// First timestamp.
    #[inline]
    pub fn start_time(&self) -> f64 {
        self.points[0].t
    }

    /// Last timestamp.
    #[inline]
    pub fn end_time(&self) -> f64 {
        self.points[self.points.len() - 1].t
    }

    /// `end_time − start_time`.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.end_time() - self.start_time()
    }

    /// Total path length (sum of inter-sample distances).
    pub fn path_length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].pos.distance(w[1].pos))
            .sum()
    }

    /// Position at time `t`, linearly interpolated; clamped to the first /
    /// last sample outside the time range.
    ///
    /// ```
    /// use wsn_geometry::Point;
    /// use wsn_mobility::{TimedPoint, Trace};
    ///
    /// let trace = Trace::new(vec![
    ///     TimedPoint::new(0.0, Point::new(0.0, 0.0)),
    ///     TimedPoint::new(10.0, Point::new(20.0, 0.0)),
    /// ]);
    /// assert_eq!(trace.position_at(2.5), Point::new(5.0, 0.0));
    /// assert_eq!(trace.position_at(99.0), Point::new(20.0, 0.0)); // clamped
    /// ```
    pub fn position_at(&self, t: f64) -> Point {
        let pts = &self.points;
        if t <= pts[0].t {
            return pts[0].pos;
        }
        if t >= pts[pts.len() - 1].t {
            return pts[pts.len() - 1].pos;
        }
        // Binary search for the enclosing segment.
        let idx = pts.partition_point(|p| p.t <= t);
        let (a, b) = (&pts[idx - 1], &pts[idx]);
        let frac = (t - a.t) / (b.t - a.t);
        a.pos.lerp(b.pos, frac)
    }

    /// Resamples the trace at a fixed period `dt`, starting at
    /// `start_time()` and including `end_time()`'s clamped position.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn resample(&self, dt: f64) -> Trace {
        assert!(
            dt.is_finite() && dt > 0.0,
            "resample period must be positive"
        );
        let mut out = Vec::new();
        let mut t = self.start_time();
        let end = self.end_time();
        while t < end {
            out.push(TimedPoint::new(t, self.position_at(t)));
            t += dt;
        }
        out.push(TimedPoint::new(end, self.position_at(end)));
        Trace::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_trace() -> Trace {
        Trace::new(vec![
            TimedPoint::new(0.0, Point::new(0.0, 0.0)),
            TimedPoint::new(10.0, Point::new(10.0, 0.0)),
            TimedPoint::new(20.0, Point::new(10.0, 10.0)),
        ])
    }

    #[test]
    fn interpolation_between_samples() {
        let tr = l_trace();
        assert_eq!(tr.position_at(5.0), Point::new(5.0, 0.0));
        assert_eq!(tr.position_at(15.0), Point::new(10.0, 5.0));
        assert_eq!(tr.position_at(10.0), Point::new(10.0, 0.0));
    }

    #[test]
    fn clamping_outside_time_range() {
        let tr = l_trace();
        assert_eq!(tr.position_at(-5.0), Point::new(0.0, 0.0));
        assert_eq!(tr.position_at(100.0), Point::new(10.0, 10.0));
    }

    #[test]
    fn metrics() {
        let tr = l_trace();
        assert_eq!(tr.duration(), 20.0);
        assert_eq!(tr.path_length(), 20.0);
        assert_eq!(tr.len(), 3);
    }

    #[test]
    fn resample_has_fixed_period_and_covers_end() {
        let tr = l_trace().resample(3.0);
        let ts: Vec<f64> = tr.points().iter().map(|p| p.t).collect();
        assert_eq!(ts, vec![0.0, 3.0, 6.0, 9.0, 12.0, 15.0, 18.0, 20.0]);
        // Positions stay on the original polyline.
        assert_eq!(tr.position_at(3.0), Point::new(3.0, 0.0));
        assert_eq!(tr.points().last().unwrap().pos, Point::new(10.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn non_monotone_rejected() {
        let _ = Trace::new(vec![
            TimedPoint::new(0.0, Point::ORIGIN),
            TimedPoint::new(0.0, Point::new(1.0, 1.0)),
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_rejected() {
        let _ = Trace::new(vec![]);
    }
}
