//! The Gauss–Markov mobility model.
//!
//! A standard alternative to random waypoint with *tunable memory*: speed
//! and heading evolve as first-order autoregressive processes,
//!
//! ```text
//! s_t = α·s_{t−1} + (1−α)·s̄ + √(1−α²)·σ_s·w,
//! θ_t = α·θ_{t−1} + (1−α)·θ̄_t + √(1−α²)·σ_θ·w,
//! ```
//!
//! with `α ∈ [0, 1]` the memory parameter (`α → 1`: near-linear motion;
//! `α → 0`: Brownian-like). Near the field boundary the mean heading
//! `θ̄_t` is steered back toward the centre, the usual edge treatment.
//!
//! FTTT itself is mobility-model-free; this model exists to *stress the
//! comparators that are not* (the `ablation_mobility` experiment).

use crate::trace::{TimedPoint, Trace};
use rand::Rng;
use wsn_geometry::{Point, Rect, Vector};

/// Gauss–Markov mobility parameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GaussMarkov {
    /// Field the target roams in.
    pub field: Rect,
    /// Memory parameter `α ∈ [0, 1]`.
    pub alpha: f64,
    /// Long-run mean speed, m/s.
    pub mean_speed: f64,
    /// Speed process std-dev, m/s.
    pub speed_std: f64,
    /// Heading process std-dev, radians.
    pub heading_std: f64,
}

impl GaussMarkov {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ alpha ≤ 1`, `mean_speed > 0`, and the std-devs
    /// are non-negative and finite.
    pub fn new(field: Rect, alpha: f64, mean_speed: f64, speed_std: f64, heading_std: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "α must be in [0, 1], got {alpha}"
        );
        assert!(
            mean_speed > 0.0 && mean_speed.is_finite(),
            "mean speed must be positive"
        );
        assert!(
            speed_std >= 0.0 && speed_std.is_finite(),
            "speed std must be non-negative"
        );
        assert!(
            heading_std >= 0.0 && heading_std.is_finite(),
            "heading std must be non-negative"
        );
        Self {
            field,
            alpha,
            mean_speed,
            speed_std,
            heading_std,
        }
    }

    /// A smooth walker matched to the paper's speed range (mean 3 m/s).
    pub fn paper_default(field: Rect) -> Self {
        Self::new(field, 0.85, 3.0, 1.0, 0.6)
    }

    /// Generates a trace of `duration` seconds sampled every `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `duration` or `dt` is not strictly positive.
    pub fn trace<R: Rng + ?Sized>(&self, duration: f64, dt: f64, rng: &mut R) -> Trace {
        assert!(
            duration > 0.0 && duration.is_finite(),
            "duration must be positive"
        );
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive");
        let mut pos = Point::new(
            rng.gen_range(self.field.min.x..=self.field.max.x),
            rng.gen_range(self.field.min.y..=self.field.max.y),
        );
        let mut speed = self.mean_speed;
        let mut heading = rng.gen_range(0.0..std::f64::consts::TAU);
        let innovation = (1.0 - self.alpha * self.alpha).sqrt();

        let gauss = |rng: &mut R| {
            // Box–Muller, one variate.
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };

        let steps = (duration / dt).ceil() as usize;
        let mut samples = Vec::with_capacity(steps + 1);
        for i in 0..=steps {
            samples.push(TimedPoint::new(i as f64 * dt, pos));
            // Mean heading: straight ahead, unless close to the boundary —
            // then steer toward the field centre.
            let margin = 0.1 * self.field.width().min(self.field.height());
            let near_edge = pos.x < self.field.min.x + margin
                || pos.x > self.field.max.x - margin
                || pos.y < self.field.min.y + margin
                || pos.y > self.field.max.y - margin;
            let mean_heading = if near_edge {
                let to_center = self.field.center() - pos;
                to_center.y.atan2(to_center.x)
            } else {
                heading
            };
            speed = self.alpha * speed
                + (1.0 - self.alpha) * self.mean_speed
                + innovation * self.speed_std * gauss(rng);
            speed = speed.max(0.0);
            heading = self.alpha * heading
                + (1.0 - self.alpha) * mean_heading
                + innovation * self.heading_std * gauss(rng);
            pos = self
                .field
                .clamp(pos + Vector::new(heading.cos(), heading.sin()) * (speed * dt));
        }
        Trace::new(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    fn model() -> GaussMarkov {
        GaussMarkov::paper_default(Rect::square(100.0))
    }

    #[test]
    fn stays_in_field_and_is_seeded() {
        let m = model();
        let a = m.trace(60.0, 0.5, &mut rng(1));
        let b = m.trace(60.0, 0.5, &mut rng(1));
        assert_eq!(a, b);
        for p in a.points() {
            assert!(m.field.contains(p.pos));
        }
    }

    #[test]
    fn mean_speed_is_respected() {
        let m = model();
        let tr = m.trace(300.0, 0.5, &mut rng(2));
        let mean_step: f64 = tr
            .points()
            .windows(2)
            .map(|w| w[0].pos.distance(w[1].pos))
            .sum::<f64>()
            / (tr.len() - 1) as f64;
        let mean_speed = mean_step / 0.5;
        // Boundary clamping eats a little of the nominal speed.
        assert!(
            mean_speed > 0.5 * m.mean_speed && mean_speed < 1.5 * m.mean_speed,
            "mean speed {mean_speed}"
        );
    }

    #[test]
    fn high_alpha_is_smoother_than_low_alpha() {
        let field = Rect::square(200.0);
        let turn_sum = |alpha: f64| {
            let m = GaussMarkov::new(field, alpha, 3.0, 0.5, 0.8);
            let tr = m.trace(120.0, 1.0, &mut rng(3));
            tr.points()
                .windows(3)
                .map(|w| {
                    let a = w[1].pos - w[0].pos;
                    let b = w[2].pos - w[1].pos;
                    (b - a).norm()
                })
                .sum::<f64>()
        };
        assert!(
            turn_sum(0.95) < turn_sum(0.1),
            "high-memory walk must turn less: {} vs {}",
            turn_sum(0.95),
            turn_sum(0.1)
        );
    }

    #[test]
    #[should_panic(expected = "α must be in")]
    fn bad_alpha_rejected() {
        let _ = GaussMarkov::new(Rect::square(10.0), 1.5, 1.0, 0.1, 0.1);
    }
}
