//! Target-mobility substrate: trajectory generation and sampling.
//!
//! The paper's simulations move the target with the **random waypoint**
//! model ([30], Table 1: 1–5 m/s over a 100×100 m² field, 60 s runs), and
//! its outdoor experiment walks a "⌐"-shaped waypoint path at changeable
//! speed (Fig. 13). Both generators live here:
//!
//! * [`Trace`] — a time-stamped polyline with interpolation; the common
//!   currency between mobility, sampling and error measurement.
//! * [`RandomWaypoint`] — the classic model: pick a uniform destination,
//!   travel at a uniform-random speed, optionally pause, repeat.
//! * [`WaypointPath`] — deterministic piecewise-linear paths (per-leg or
//!   randomized speeds) for scripted scenarios like the outdoor "⌐".
//! * [`GaussMarkov`] — the memory-tunable Gauss–Markov walker, used to
//!   stress comparators that assume a motion model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gauss_markov;
pub mod path;
pub mod trace;
pub mod waypoint;

pub use gauss_markov::GaussMarkov;
pub use path::WaypointPath;
pub use trace::{TimedPoint, Trace};
pub use waypoint::RandomWaypoint;
