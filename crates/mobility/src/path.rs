//! Scripted piecewise-linear waypoint paths (the outdoor "⌐" trace of
//! paper Fig. 13).

use crate::trace::{TimedPoint, Trace};
use rand::Rng;
use wsn_geometry::Point;

/// A deterministic sequence of waypoints walked leg by leg.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WaypointPath {
    waypoints: Vec<Point>,
}

impl WaypointPath {
    /// Creates a path through `waypoints`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two waypoints are given or consecutive
    /// waypoints coincide (a zero-length leg has no direction).
    pub fn new(waypoints: Vec<Point>) -> Self {
        assert!(waypoints.len() >= 2, "a path needs at least two waypoints");
        for w in waypoints.windows(2) {
            assert!(
                w[0].distance(w[1]) > f64::EPSILON,
                "consecutive waypoints must be distinct"
            );
        }
        Self { waypoints }
    }

    /// The "⌐"-shaped walk of the outdoor evaluation: out along +x for
    /// `leg` metres, then down along −y for `leg` metres, starting at
    /// `start`.
    pub fn corner(start: Point, leg: f64) -> Self {
        assert!(leg > 0.0 && leg.is_finite(), "leg length must be positive");
        Self::new(vec![
            start,
            Point::new(start.x + leg, start.y),
            Point::new(start.x + leg, start.y - leg),
        ])
    }

    /// The waypoints.
    #[inline]
    pub fn waypoints(&self) -> &[Point] {
        &self.waypoints
    }

    /// Total length of the path.
    pub fn length(&self) -> f64 {
        self.waypoints.windows(2).map(|w| w[0].distance(w[1])).sum()
    }

    /// Walks the path at constant `speed` (m/s), sampled every `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `speed` or `dt` is not strictly positive.
    pub fn walk_constant(&self, speed: f64, dt: f64) -> Trace {
        assert!(speed > 0.0 && speed.is_finite(), "speed must be positive");
        self.walk_with(|_| speed, dt)
    }

    /// Walks the path with a per-leg speed drawn uniformly from
    /// `[min_speed, max_speed]` (the outdoor target's "changeable velocity
    /// in 1–5 m/s"), sampled every `dt`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_speed ≤ max_speed` and `dt > 0`.
    pub fn walk_random_speed<R: Rng + ?Sized>(
        &self,
        min_speed: f64,
        max_speed: f64,
        dt: f64,
        rng: &mut R,
    ) -> Trace {
        assert!(min_speed > 0.0 && max_speed >= min_speed, "bad speed range");
        let speeds: Vec<f64> = (0..self.waypoints.len() - 1)
            .map(|_| {
                if max_speed > min_speed {
                    rng.gen_range(min_speed..=max_speed)
                } else {
                    min_speed
                }
            })
            .collect();
        self.walk_with(|leg| speeds[leg], dt)
    }

    /// Walks with an arbitrary per-leg speed function.
    fn walk_with<F: Fn(usize) -> f64>(&self, speed_of_leg: F, dt: f64) -> Trace {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive");
        // Build (cumulative time, waypoint) knots, then resample.
        let mut knots = vec![TimedPoint::new(0.0, self.waypoints[0])];
        let mut t = 0.0;
        for (leg, w) in self.waypoints.windows(2).enumerate() {
            let v = speed_of_leg(leg);
            assert!(v > 0.0 && v.is_finite(), "leg {leg} speed must be positive");
            t += w[0].distance(w[1]) / v;
            knots.push(TimedPoint::new(t, w[1]));
        }
        Trace::new(knots).resample(dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn corner_shape() {
        let p = WaypointPath::corner(Point::new(10.0, 80.0), 40.0);
        assert_eq!(p.waypoints().len(), 3);
        assert_eq!(p.length(), 80.0);
        assert_eq!(p.waypoints()[1], Point::new(50.0, 80.0));
        assert_eq!(p.waypoints()[2], Point::new(50.0, 40.0));
    }

    #[test]
    fn constant_walk_timing() {
        let p = WaypointPath::corner(Point::new(0.0, 50.0), 10.0);
        let tr = p.walk_constant(2.0, 0.5);
        // 20 m at 2 m/s = 10 s.
        assert!((tr.duration() - 10.0).abs() < 1e-9);
        // Halfway in time is the corner waypoint.
        assert_eq!(tr.position_at(5.0), Point::new(10.0, 50.0));
        // Speed between samples is constant.
        for w in tr.points().windows(2) {
            let v = w[0].pos.distance(w[1].pos) / (w[1].t - w[0].t);
            assert!((v - 2.0).abs() < 1e-6, "v={v}");
        }
    }

    #[test]
    fn random_speed_walk_is_seeded_and_bounded() {
        let p = WaypointPath::corner(Point::new(0.0, 50.0), 20.0);
        let mut r1 = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let mut r2 = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let a = p.walk_random_speed(1.0, 5.0, 0.2, &mut r1);
        let b = p.walk_random_speed(1.0, 5.0, 0.2, &mut r2);
        assert_eq!(a, b);
        // Duration bounded by length / extreme speeds.
        assert!(a.duration() >= 40.0 / 5.0 - 1e-9);
        assert!(a.duration() <= 40.0 / 1.0 + 1e-9);
    }

    #[test]
    fn walk_visits_every_waypoint() {
        let p = WaypointPath::new(vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(5.0, 5.0),
            Point::new(0.0, 5.0),
        ]);
        let tr = p.walk_constant(1.0, 0.25);
        for wp in p.waypoints() {
            let nearest = tr
                .points()
                .iter()
                .map(|s| s.pos.distance(*wp))
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 0.26, "waypoint {wp} missed by {nearest}");
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn repeated_waypoints_rejected() {
        let _ = WaypointPath::new(vec![Point::ORIGIN, Point::ORIGIN]);
    }
}
