//! Property-based tests for the mobility substrate.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wsn_geometry::{Point, Rect};
use wsn_mobility::{RandomWaypoint, Trace, WaypointPath};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random-waypoint traces stay in-field, respect the speed ceiling
    /// between samples, and reproduce under the same seed.
    #[test]
    fn rwp_invariants(
        seed in 0u64..5_000,
        vmin in 0.5..3.0f64,
        dv in 0.0..5.0f64,
        dt in 0.05..1.0f64,
    ) {
        let field = Rect::square(100.0);
        let m = RandomWaypoint::new(field, vmin, vmin + dv, 0.0);
        let tr = m.trace(20.0, dt, &mut ChaCha8Rng::seed_from_u64(seed));
        let again = m.trace(20.0, dt, &mut ChaCha8Rng::seed_from_u64(seed));
        prop_assert_eq!(&tr, &again);
        for w in tr.points().windows(2) {
            prop_assert!(field.contains(w[1].pos));
            let v = w[0].pos.distance(w[1].pos) / (w[1].t - w[0].t);
            prop_assert!(v <= (vmin + dv) * (1.0 + 1e-9));
        }
    }

    /// Trace interpolation stays on the polyline: interpolated points are
    /// convex combinations of the bracketing samples.
    #[test]
    fn interpolation_brackets(
        t_query in 0.0..20.0f64,
        seed in 0u64..1000,
    ) {
        let field = Rect::square(100.0);
        let m = RandomWaypoint::paper_default(field);
        let tr = m.trace(20.0, 0.5, &mut ChaCha8Rng::seed_from_u64(seed));
        let p = tr.position_at(t_query);
        prop_assert!(field.contains(p));
        // Between the bracketing samples, distance to each endpoint is at
        // most the inter-sample distance.
        let pts = tr.points();
        let idx = pts.partition_point(|s| s.t <= t_query).min(pts.len() - 1).max(1);
        let (a, b) = (&pts[idx - 1], &pts[idx]);
        let seg = a.pos.distance(b.pos);
        prop_assert!(p.distance(a.pos) <= seg + 1e-9);
        prop_assert!(p.distance(b.pos) <= seg + 1e-9);
    }

    /// Resampling preserves endpoints and total duration, and emits
    /// strictly increasing timestamps at the requested period.
    #[test]
    fn resample_preserves_structure(dt in 0.05..3.0f64, seed in 0u64..1000) {
        let field = Rect::square(50.0);
        let m = RandomWaypoint::paper_default(field);
        let tr = m.trace(10.0, 0.7, &mut ChaCha8Rng::seed_from_u64(seed));
        let rs = tr.resample(dt);
        prop_assert_eq!(rs.start_time(), tr.start_time());
        prop_assert!((rs.end_time() - tr.end_time()).abs() < 1e-9);
        prop_assert_eq!(rs.points().first().unwrap().pos, tr.points().first().unwrap().pos);
        prop_assert_eq!(rs.points().last().unwrap().pos, tr.points().last().unwrap().pos);
        for w in rs.points().windows(2) {
            prop_assert!(w[1].t > w[0].t);
            prop_assert!(w[1].t - w[0].t <= dt + 1e-9);
        }
    }

    /// Constant-speed walks cover the path length in length/speed seconds
    /// and pass within one sample of every waypoint.
    #[test]
    fn walk_timing(leg in 5.0..40.0f64, speed in 0.5..8.0f64, dt in 0.05..0.5f64) {
        let path = WaypointPath::corner(Point::new(10.0, 80.0), leg);
        let tr: Trace = path.walk_constant(speed, dt);
        prop_assert!((tr.duration() - path.length() / speed).abs() < 1e-9);
        for wp in path.waypoints() {
            let nearest = tr
                .points()
                .iter()
                .map(|s| s.pos.distance(*wp))
                .fold(f64::INFINITY, f64::min);
            prop_assert!(nearest <= speed * dt + 1e-9, "waypoint {} missed by {}", wp, nearest);
        }
    }
}
