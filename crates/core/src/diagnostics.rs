//! Run-level diagnostics: how much uncertainty the sampler actually
//! reported and how often matching was ambiguous.
//!
//! The experiments use these to *explain* error numbers rather than just
//! report them: e.g. the Fig.-12(b) inversion under Gaussian shadowing is
//! visible here as a zero-fraction that grows with the sampling times.

use crate::vector::SamplingVector;

/// Composition of one sampling vector's components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VectorComposition {
    /// Components equal to +1 or −1 (ordinal pairs).
    pub ordinal: usize,
    /// Components equal to 0 (flipped pairs / no order evidence).
    pub flipped: usize,
    /// Components strictly inside (−1, 1) excluding 0 (extended values).
    pub fractional: usize,
    /// `*` components (pairs with no readings at all).
    pub unknown: usize,
}

impl VectorComposition {
    /// Classifies every component of `v`.
    pub fn of(v: &SamplingVector) -> Self {
        let mut out = Self::default();
        for c in v.components() {
            match c {
                None => out.unknown += 1,
                Some(x) if *x == 1.0 || *x == -1.0 => out.ordinal += 1,
                Some(x) if *x == 0.0 => out.flipped += 1,
                Some(_) => out.fractional += 1,
            }
        }
        out
    }

    /// Total component count.
    pub fn total(&self) -> usize {
        self.ordinal + self.flipped + self.fractional + self.unknown
    }

    /// Fraction of flipped (0) components.
    pub fn flipped_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.flipped as f64 / self.total() as f64
        }
    }

    /// Fraction of `*` components.
    pub fn unknown_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.unknown as f64 / self.total() as f64
        }
    }

    /// Component-wise sum (for aggregating across localizations).
    pub fn add(&mut self, other: &VectorComposition) {
        self.ordinal += other.ordinal;
        self.flipped += other.flipped;
        self.fractional += other.fractional;
        self.unknown += other.unknown;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_all_kinds() {
        let v = SamplingVector::new(vec![
            Some(1.0),
            Some(-1.0),
            Some(0.0),
            Some(0.4),
            None,
            Some(0.0),
        ]);
        let c = VectorComposition::of(&v);
        assert_eq!(c.ordinal, 2);
        assert_eq!(c.flipped, 2);
        assert_eq!(c.fractional, 1);
        assert_eq!(c.unknown, 1);
        assert_eq!(c.total(), 6);
        assert!((c.flipped_fraction() - 2.0 / 6.0).abs() < 1e-12);
        assert!((c.unknown_fraction() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn aggregation() {
        let a = VectorComposition {
            ordinal: 1,
            flipped: 2,
            fractional: 3,
            unknown: 4,
        };
        let mut b = VectorComposition {
            ordinal: 10,
            flipped: 20,
            fractional: 30,
            unknown: 40,
        };
        b.add(&a);
        assert_eq!(
            b,
            VectorComposition {
                ordinal: 11,
                flipped: 22,
                fractional: 33,
                unknown: 44
            }
        );
    }

    #[test]
    fn empty_fractions_are_zero() {
        let c = VectorComposition::default();
        assert_eq!(c.flipped_fraction(), 0.0);
        assert_eq!(c.unknown_fraction(), 0.0);
    }
}
