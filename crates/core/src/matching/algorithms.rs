//! Exhaustive and heuristic vector matching.
//!
//! Both matchers rank faces by the `*`-aware squared distance
//! `‖V_d − V_s(f)‖²` evaluated with the packed
//! [`SignaturePlanes`](crate::vector::SignaturePlanes) kernel — the
//! sampling vector is packed once per call and compared against every
//! candidate face with branch-free popcount arithmetic. Similarity
//! `S = 1/‖·‖` (Definition 7) is monotone decreasing in the distance, so
//! ranking by squared distance is equivalent and needs the reciprocal
//! square root only once, for the winner. Ties are detected on the exact
//! squared distance, not on the rounded similarity: `1/√d²` maps distinct
//! nearby `d²` values to the same f64, so comparing similarities would
//! fabricate ties that the metric does not have.

use crate::facemap::{FaceId, FaceMap};
use crate::vector::{PackedQuery, SamplingVector};
use wsn_telemetry as telemetry;

/// How a full-accuracy (exhaustive-quality) match is executed.
///
/// Both strategies return **bit-identical** outcomes — same winner, same
/// similarity, same tie set (the `index_differential` suite proves it) —
/// so callers pick purely on performance. Only
/// [`MatchOutcome::evaluated`] differs: the index reports the distance
/// evaluations it actually spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchStrategy {
    /// Linear scan over every face ([`match_exhaustive`]).
    Scan,
    /// Coarse-to-fine descent over the face map's chunk index
    /// ([`match_indexed`]), pruning whole chunks by their envelope lower
    /// bound before any face is scanned.
    #[default]
    Indexed,
}

/// Runs a full-accuracy match under the chosen [`MatchStrategy`].
///
/// # Panics
///
/// Panics if the vector's dimension does not match the map's pair count.
pub fn match_full(map: &FaceMap, v: &SamplingVector, strategy: MatchStrategy) -> MatchOutcome {
    match strategy {
        MatchStrategy::Scan => match_exhaustive(map, v),
        MatchStrategy::Indexed => match_indexed(map, v),
    }
}

/// Result of matching one sampling vector against a face map.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchOutcome {
    /// The matched face (the first face attaining the best similarity).
    pub face: FaceId,
    /// Similarity of the matched face (`f64::INFINITY` for exact matches).
    pub similarity: f64,
    /// All faces attaining the best similarity, including `face` (the
    /// strategy extension averages their centroids on ties, Section 6).
    pub ties: Vec<FaceId>,
    /// Number of similarity evaluations performed.
    pub evaluated: usize,
    /// Hill-climbing rounds (0 for exhaustive matching).
    pub rounds: usize,
}

impl MatchOutcome {
    /// `true` if more than one face attained the maximum similarity.
    pub fn is_tied(&self) -> bool {
        self.ties.len() > 1
    }
}

/// Similarity of the winning squared distance (Definition 7): the one
/// place a reciprocal square root is taken.
#[inline]
fn similarity_of_d2(d2: f64) -> f64 {
    if d2 == 0.0 {
        f64::INFINITY
    } else {
        1.0 / d2.sqrt()
    }
}

/// Maximum-likelihood matching: scans every face, returns the argmax of
/// the similarity with all ties collected.
///
/// # Panics
///
/// Panics if the vector's dimension does not match the map's pair count
/// (they must come from the same deployment).
pub fn match_exhaustive(map: &FaceMap, v: &SamplingVector) -> MatchOutcome {
    assert_eq!(
        v.len(),
        map.pair_dimension(),
        "vector/map pair-dimension mismatch"
    );
    let planes = map.planes();
    let q = PackedQuery::new(v);
    let mut best_d2 = f64::INFINITY;
    let mut ties: Vec<FaceId> = Vec::new();
    for f in 0..map.face_count() {
        let d2 = planes.distance_squared(f, &q);
        if d2 < best_d2 {
            best_d2 = d2;
            ties.clear();
            ties.push(FaceId(f as u32));
        } else if d2 == best_d2 {
            ties.push(FaceId(f as u32));
        }
    }
    let face = *ties
        .first()
        .expect("FaceMap invariant: a built map has at least one face (asserted at construction)");
    if telemetry::enabled() {
        telemetry::counter_add("fttt.match.exhaustive.calls", 1);
        telemetry::counter_add("fttt.match.evaluations", map.face_count() as u64);
        telemetry::observe(
            "fttt.match.tie_width",
            telemetry::COUNT_BUCKETS,
            ties.len() as f64,
        );
    }
    if telemetry::journal_enabled() {
        use telemetry::ArgValue;
        telemetry::trace_instant(
            "fttt.match.exhaustive",
            vec![
                ("face", ArgValue::U64(face.index() as u64)),
                ("evaluated", ArgValue::U64(map.face_count() as u64)),
                ("ties", ArgValue::U64(ties.len() as u64)),
            ],
        );
    }
    MatchOutcome {
        face,
        similarity: similarity_of_d2(best_d2),
        ties,
        evaluated: map.face_count(),
        rounds: 0,
    }
}

/// Histogram buckets for fractions in `[0, 1]` (bound tightness).
const FRACTION_BUCKETS: &[f64] = &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// A frontier node in the best-first descent: an unexpanded super-chunk
/// or an unscanned leaf chunk.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Node {
    Super(u32),
    Leaf(u32),
}

impl Node {
    /// Deterministic tie-break key at equal bound: leaves pop before
    /// supers (a leaf tightens `best_d2` immediately, a super only adds
    /// more frontier), then ascending id.
    fn key(self) -> (u8, u32) {
        match self {
            Node::Leaf(c) => (0, c),
            Node::Super(s) => (1, s),
        }
    }
}

/// An entry in the [`BestFirstFrontier`]: totally ordered by ascending
/// bound, then by [`Node::key`]. Bounds are exact ternary distances —
/// finite, never NaN — so `total_cmp` agrees with the numeric order.
struct FrontierEntry {
    bound: f64,
    node: Node,
}

impl PartialEq for FrontierEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for FrontierEntry {}

impl PartialOrd for FrontierEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FrontierEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bound
            .total_cmp(&other.bound)
            .then_with(|| self.node.key().cmp(&other.node.key()))
    }
}

/// Min-priority queue driving the best-first descent in
/// [`match_indexed`]: pops the frontier node with the smallest lower
/// bound first, with a deterministic tie order (see [`FrontierEntry`]).
struct BestFirstFrontier {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<FrontierEntry>>,
}

impl BestFirstFrontier {
    fn with_capacity(n: usize) -> Self {
        Self {
            heap: std::collections::BinaryHeap::with_capacity(n),
        }
    }

    fn push(&mut self, bound: f64, node: Node) {
        self.heap
            .push(std::cmp::Reverse(FrontierEntry { bound, node }));
    }

    fn pop(&mut self) -> Option<(f64, Node)> {
        self.heap
            .pop()
            .map(|std::cmp::Reverse(e)| (e.bound, e.node))
    }
}

/// Coarse-to-fine maximum-likelihood matching over the map's chunk index:
/// bit-identical to [`match_exhaustive`], usually far cheaper.
///
/// The face map groups its faces into a two-level index: small leaf
/// chunks of nearby grid cells nested under coarser super-chunks, each
/// level carrying envelope summaries whose
/// [`chunk_lower_bound`](crate::vector::SignaturePlanes::chunk_lower_bound)
/// (resp. `super_lower_bound`) provably undercuts every member face's
/// squared distance. The matcher bounds all super-chunks first (cheap:
/// there are few), visits them in ascending bound order, and descends a
/// super-chunk only while its bound does not exceed the best distance
/// found so far. Inside a descended super-chunk the leaf bounds are
/// computed on demand, sorted, and faces are scanned exactly only while
/// the leaf bound also stays within the best — once either level's bound
/// exceeds it, everything below is pruned wholesale.
///
/// Correctness of the prune: at each level candidates are visited in
/// ascending bound order and skipped only when `bound > best_d2`. Since
/// the super bound undercuts every member leaf bound, which undercuts
/// `d²(f)` for each member face, and `best_d2` only decreases, no pruned
/// face can beat **or tie** the winner, so the winner, its distance, and
/// the complete tie set are exactly the exhaustive scan's (ties are
/// re-sorted into face order to make the equality literal).
///
/// Extended (Definition 10) queries carry no envelope structure, and maps
/// without a chunk index have nothing to descend; both fall back to the
/// plain scan — same outcome, linear cost.
///
/// # Panics
///
/// Panics if the vector's dimension does not match the map's pair count.
pub fn match_indexed(map: &FaceMap, v: &SamplingVector) -> MatchOutcome {
    assert_eq!(
        v.len(),
        map.pair_dimension(),
        "vector/map pair-dimension mismatch"
    );
    let planes = map.planes();
    let q = PackedQuery::new(v);
    if !q.is_packed_ternary() || !planes.has_chunks() {
        return match_exhaustive(map, v);
    }
    let chunk_count = planes.chunk_count();
    // Ternary distances and bounds are exact small integers in f64, so
    // every comparison below is exact. The descent is *globally*
    // best-first: a single priority queue holds super-chunks and leaf
    // chunks together, ordered by lower bound. Popping a super-chunk
    // pushes its leaf bounds; popping a leaf scans its faces exactly.
    // Because pops come in ascending bound order, the first leaf scanned
    // is the tightest anywhere in the map — `best_d2` snaps to (near)
    // the optimum immediately and the rest of the queue dies on the
    // first pop whose bound exceeds it. Most of the map is pruned
    // without its leaf bounds (let alone faces) ever being touched.
    let mut frontier = BestFirstFrontier::with_capacity(planes.super_count() + 16);
    let mut min_bound = f64::INFINITY;
    for s in 0..planes.super_count() as u32 {
        let b = planes.super_lower_bound(s as usize, &q);
        min_bound = min_bound.min(b);
        frontier.push(b, Node::Super(s));
    }

    let mut best_d2 = f64::INFINITY;
    let mut ties: Vec<FaceId> = Vec::new();
    let mut evaluated = 0usize;
    let mut descended = 0u64;
    let mut scanned = 0u64;
    while let Some((bound, node)) = frontier.pop() {
        // Strict inequality: a bound *equal* to the best could still hide
        // a tie, so such nodes are expanded. Stopping is sound because
        // every remaining node pops with a bound ≥ this one > best, and
        // every face under it has d² ≥ that bound.
        if !ties.is_empty() && bound > best_d2 {
            break;
        }
        match node {
            Node::Super(s) => {
                descended += 1;
                for c in planes.super_chunks(s as usize) {
                    frontier.push(planes.chunk_lower_bound(c, &q), Node::Leaf(c as u32));
                }
            }
            Node::Leaf(c) => {
                scanned += 1;
                for (slot, &f) in planes.chunk_faces(c as usize).iter().enumerate() {
                    evaluated += 1;
                    // Early-exit evaluation against the current best,
                    // streaming the chunk-ordered lane copy of the
                    // planes: a rejected face provably has d² > best and
                    // can neither win nor tie, so the outcome stays
                    // bit-identical to the exhaustive scan.
                    let Some(d2) = planes.chunk_slot_distance_within(c as usize, slot, &q, best_d2)
                    else {
                        continue;
                    };
                    if d2 < best_d2 {
                        best_d2 = d2;
                        ties.clear();
                        ties.push(FaceId(f));
                    } else {
                        // `d2 ≤ best` and not `<` — an exact tie.
                        ties.push(FaceId(f));
                    }
                }
            }
        }
    }
    // Chunks interleave face ids, so restore the exhaustive scan's face
    // order before `ties[0]` picks the winner.
    ties.sort_unstable();
    let face = *ties
        .first()
        .expect("FaceMap invariant: a built map has at least one face (asserted at construction)");
    let pruned = chunk_count as u64 - scanned;
    // How close the cheapest bound came to the true optimum (1 = tight).
    let tightness = if best_d2 > 0.0 {
        min_bound / best_d2
    } else {
        1.0
    };
    if telemetry::enabled() {
        telemetry::counter_add("fttt.match.indexed.calls", 1);
        telemetry::counter_add("fttt.match.evaluations", evaluated as u64);
        telemetry::counter_add("fttt.match.index.chunks_total", chunk_count as u64);
        telemetry::counter_add("fttt.match.index.chunks_scanned", scanned);
        telemetry::counter_add("fttt.match.index.chunks_pruned", pruned);
        telemetry::counter_add("fttt.match.index.supers_descended", descended);
        telemetry::observe(
            "fttt.match.index.bound_tightness",
            FRACTION_BUCKETS,
            tightness,
        );
        telemetry::observe(
            "fttt.match.tie_width",
            telemetry::COUNT_BUCKETS,
            ties.len() as f64,
        );
    }
    if telemetry::journal_enabled() {
        use telemetry::ArgValue;
        telemetry::trace_instant(
            "fttt.match.index",
            vec![
                ("face", ArgValue::U64(face.index() as u64)),
                ("evaluated", ArgValue::U64(evaluated as u64)),
                ("ties", ArgValue::U64(ties.len() as u64)),
                ("chunks", ArgValue::U64(chunk_count as u64)),
                ("scanned", ArgValue::U64(scanned)),
                ("pruned", ArgValue::U64(pruned)),
                ("supers", ArgValue::U64(descended)),
                ("tightness", ArgValue::F64(tightness)),
            ],
        );
    }
    MatchOutcome {
        face,
        similarity: similarity_of_d2(best_d2),
        ties,
        evaluated,
        rounds: 0,
    }
}

/// `[3, 17, 9]` → `"3>17>9"`, elided past `HOP_PATH_DISPLAY_CAP` faces.
fn render_hop_path(path: &[u32]) -> String {
    /// Faces shown before the path is elided; keeps one journal arg
    /// bounded even on pathological climbs across a huge map.
    const HOP_PATH_DISPLAY_CAP: usize = 32;
    let shown: Vec<String> = path
        .iter()
        .take(HOP_PATH_DISPLAY_CAP)
        .map(|f| f.to_string())
        .collect();
    let mut out = shown.join(">");
    if path.len() > HOP_PATH_DISPLAY_CAP {
        out.push_str(&format!(">…+{}", path.len() - HOP_PATH_DISPLAY_CAP));
    }
    out
}

/// Algorithm 2: hill-climbing over neighbor-face links, with bounded
/// plateau traversal.
///
/// Starting from `start` (the previous localization during tracking, or
/// [`FaceMap::center_face`] cold), the search repeatedly moves to strictly
/// better neighbors. The paper's convergence argument (Theorem 1: vector
/// and geographic distance grow together) makes the landscape slope toward
/// the target's face — but with ternary signatures the slope is terraced:
/// wide *plateaus* of equal similarity are common, and a climb that only
/// accepts strict improvement strands on them. The search therefore also
/// walks across equal-similarity faces (breadth-first, bounded by
/// `PLATEAU_BUDGET` expansions since the last strict improvement) to find
/// the next ascent. This keeps the per-localization cost far below the
/// exhaustive scan while recovering its accuracy in practice — the
/// `matching` Criterion bench quantifies both.
///
/// The returned `ties` holds every *visited* face attaining the final
/// similarity (a global tie scan would defeat the point of the heuristic).
///
/// # Panics
///
/// Panics on a vector/map dimension mismatch or a foreign `start` id.
pub fn match_heuristic(map: &FaceMap, v: &SamplingVector, start: FaceId) -> MatchOutcome {
    assert_eq!(
        v.len(),
        map.pair_dimension(),
        "vector/map pair-dimension mismatch"
    );
    assert!(start.index() < map.face_count(), "start face not in map");

    /// Plateau faces expanded without a strict improvement before giving
    /// up. Plateaus wider than this are indistinguishable from the global
    /// tie case, which the tie list already covers.
    const PLATEAU_BUDGET: usize = 64;

    let planes = map.planes();
    let q = PackedQuery::new(v);

    let mut visited = vec![false; map.face_count()];
    visited[start.index()] = true;
    let mut best_d2 = planes.distance_squared(start.index(), &q);
    let mut best_face = start;
    let mut best_ties = vec![start];
    let mut evaluated = 1;
    let mut rounds = 0;
    // Hop path (strict-ascent faces, start included) — only assembled
    // when a trace journal wants it.
    let mut hop_path: Option<Vec<u32>> =
        telemetry::journal_enabled().then(|| vec![start.index() as u32]);

    // Frontier of faces at the current best distance, pending expansion.
    let mut frontier = std::collections::VecDeque::from([start]);
    let mut since_improvement = 0usize;
    let mut plateau_expansions = 0u64;

    while let Some(face) = frontier.pop_front() {
        if since_improvement >= PLATEAU_BUDGET {
            break;
        }
        since_improvement += 1;
        plateau_expansions += 1;
        for &nb in map.neighbors(face) {
            if visited[nb.index()] {
                continue;
            }
            visited[nb.index()] = true;
            let d2 = planes.distance_squared(nb.index(), &q);
            evaluated += 1;
            if d2 < best_d2 {
                // Strict ascent: restart the plateau walk from here.
                best_d2 = d2;
                best_face = nb;
                best_ties.clear();
                best_ties.push(nb);
                frontier.clear();
                frontier.push_back(nb);
                since_improvement = 0;
                rounds += 1;
                if let Some(path) = hop_path.as_mut() {
                    path.push(nb.index() as u32);
                }
            } else if d2 == best_d2 {
                best_ties.push(nb);
                frontier.push_back(nb);
            }
        }
    }

    if telemetry::enabled() {
        telemetry::counter_add("fttt.match.heuristic.calls", 1);
        telemetry::counter_add("fttt.match.evaluations", evaluated as u64);
        telemetry::counter_add(
            "fttt.match.heuristic.plateau_expansions",
            plateau_expansions,
        );
        telemetry::observe(
            "fttt.match.heuristic.rounds",
            telemetry::COUNT_BUCKETS,
            rounds as f64,
        );
        telemetry::observe(
            "fttt.match.tie_width",
            telemetry::COUNT_BUCKETS,
            best_ties.len() as f64,
        );
    }
    if let Some(path) = hop_path {
        use telemetry::ArgValue;
        telemetry::trace_instant(
            "fttt.match.heuristic",
            vec![
                ("start", ArgValue::U64(start.index() as u64)),
                ("face", ArgValue::U64(best_face.index() as u64)),
                ("path", ArgValue::Str(render_hop_path(&path))),
                ("evaluated", ArgValue::U64(evaluated as u64)),
                ("rounds", ArgValue::U64(rounds as u64)),
                ("plateau_expansions", ArgValue::U64(plateau_expansions)),
                ("ties", ArgValue::U64(best_ties.len() as u64)),
            ],
        );
    }
    MatchOutcome {
        face: best_face,
        similarity: similarity_of_d2(best_d2),
        ties: best_ties,
        evaluated,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facemap::FaceMap;
    use crate::vector::{difference_norm_squared, SamplingVector};
    use wsn_geometry::{Point, Rect};

    fn square4() -> Vec<Point> {
        vec![
            Point::new(30.0, 30.0),
            Point::new(70.0, 30.0),
            Point::new(30.0, 70.0),
            Point::new(70.0, 70.0),
        ]
    }

    fn map() -> FaceMap {
        FaceMap::build(&square4(), Rect::square(100.0), 1.15, 1.0)
    }

    /// The exact signature of a face must match back to that face with
    /// infinite similarity.
    #[test]
    fn exhaustive_finds_exact_faces() {
        let m = map();
        for f in m.faces().iter().take(50) {
            let v = SamplingVector::new(
                f.signature
                    .components()
                    .iter()
                    .map(|&c| Some(c as f64))
                    .collect(),
            );
            let out = match_exhaustive(&m, &v);
            assert_eq!(out.face, f.id);
            assert_eq!(out.similarity, f64::INFINITY);
            assert_eq!(
                out.ties,
                vec![f.id],
                "signatures are unique, no ties possible"
            );
        }
    }

    /// Degenerate map: two sensors so far away that the whole field sits in
    /// one face. Both matchers must return that face instead of hitting the
    /// old `ties[0]` index path unguarded.
    #[test]
    fn degenerate_one_face_map_matches() {
        let far = vec![Point::new(10_000.0, 50.0), Point::new(10_010.0, 50.0)];
        let m = FaceMap::build(&far, Rect::square(100.0), 1.15, 5.0);
        assert_eq!(
            m.face_count(),
            1,
            "far-away pair leaves the field undivided"
        );
        let f = &m.faces()[0];
        let v = SamplingVector::new(
            f.signature
                .components()
                .iter()
                .map(|&c| Some(c as f64))
                .collect(),
        );
        let out = match_exhaustive(&m, &v);
        assert_eq!(out.face, f.id);
        assert_eq!(out.ties, vec![f.id]);
        assert_eq!(out.evaluated, 1);
        // A vector disagreeing with the lone signature still matches it —
        // there is nothing else to return, and no panic.
        let off = SamplingVector::new(vec![Some(1.0); v.len()]);
        let worst = match_exhaustive(&m, &off);
        assert_eq!(worst.face, f.id);
        let heur = match_heuristic(&m, &v, f.id);
        assert_eq!(heur.face, f.id);
    }

    #[test]
    fn exhaustive_visits_every_face() {
        let m = map();
        let f0 = &m.faces()[0];
        let v = SamplingVector::new(
            f0.signature
                .components()
                .iter()
                .map(|&c| Some(c as f64))
                .collect(),
        );
        let out = match_exhaustive(&m, &v);
        assert_eq!(out.evaluated, m.face_count());
        assert_eq!(out.rounds, 0);
    }

    /// A perturbed signature (one component toggled) must still land on a
    /// face at distance 1 — maximum-likelihood matching at work.
    #[test]
    fn exhaustive_ml_on_perturbed_vector() {
        let m = map();
        let f = m.face(m.center_face()).clone();
        let mut comps: Vec<Option<f64>> = f
            .signature
            .components()
            .iter()
            .map(|&c| Some(c as f64))
            .collect();
        // Toggle the first 0 component to 1 (or flip a 1 to 0).
        let idx = comps.iter().position(|c| *c == Some(0.0)).unwrap_or(0);
        comps[idx] = Some(if comps[idx] == Some(0.0) { 1.0 } else { 0.0 });
        let v = SamplingVector::new(comps);
        let out = match_exhaustive(&m, &v);
        // The original face is within distance 1, so the winner's
        // similarity is at least 1.
        assert!(out.similarity >= 1.0);
    }

    #[test]
    fn exhaustive_agrees_with_scalar_reference() {
        let m = map();
        // An extended vector with no exact match: the winner must be the
        // scalar argmin of ‖V_d − V_s(f)‖², with the similarity computed
        // from exactly that squared distance.
        let f = m.face(m.center_face()).clone();
        let comps: Vec<Option<f64>> = f
            .signature
            .components()
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                if i % 7 == 3 {
                    None
                } else {
                    Some((c as f64) * 0.75)
                }
            })
            .collect();
        let v = SamplingVector::new(comps);
        let out = match_exhaustive(&m, &v);
        let (mut arg, mut best) = (0usize, f64::INFINITY);
        for (i, face) in m.faces().iter().enumerate() {
            let d2 = difference_norm_squared(&v, &face.signature);
            if d2 < best {
                best = d2;
                arg = i;
            }
        }
        assert_eq!(out.face.index(), arg);
        assert_eq!(out.similarity, 1.0 / best.sqrt());
    }

    /// Regression: ties must be detected on the squared distance, not the
    /// rounded similarity. Once d² is large enough that the `r³/2` slope
    /// of `1/√d²` drops below half an ulp, distinct nearby d² values map
    /// to the *same* f64 similarity, and the old `s == best` comparison
    /// reported faces at strictly different distances as ties.
    ///
    /// The witness vector puts every component near 0.5 with sub-ulp
    /// per-index jitter: every face then sits at d² ≈ 0.25·dim + 2·m
    /// (m = count of −1 components), separated only by the jitter's
    /// cross terms — a cluster of d² values a few ulps apart whose
    /// reciprocal square roots collapse onto one f64.
    #[test]
    fn near_equal_distances_are_not_ties() {
        let m = map();
        let dim = m.pair_dimension();
        let mut witness = None;
        'search: for base in [0.5f64, 0.45, 0.55] {
            for scale in [-55i32, -54, -56, -53] {
                for stride in [1usize, 3, 5] {
                    let e = 2.0f64.powi(scale);
                    let comps: Vec<Option<f64>> = (0..dim)
                        .map(|i| Some(base + ((i * stride) % 8) as f64 * e))
                        .collect();
                    let v = SamplingVector::new(comps);
                    let scored: Vec<f64> = m
                        .faces()
                        .iter()
                        .map(|f| difference_norm_squared(&v, &f.signature))
                        .collect();
                    let d2min = scored.iter().cloned().fold(f64::INFINITY, f64::min);
                    let rmin = (1.0 / d2min.sqrt()).to_bits();
                    let dset: Vec<FaceId> = (0..scored.len())
                        .filter(|&i| scored[i] == d2min)
                        .map(|i| FaceId(i as u32))
                        .collect();
                    let rset: Vec<FaceId> = (0..scored.len())
                        .filter(|&i| (1.0 / scored[i].sqrt()).to_bits() == rmin)
                        .map(|i| FaceId(i as u32))
                        .collect();
                    if rset.len() > dset.len() {
                        witness = Some((v, d2min, dset, rset));
                        break 'search;
                    }
                }
            }
        }
        let (v, d2min, dset, rset) = witness.expect("no 1/sqrt collision witness found");
        let out = match_exhaustive(&m, &v);
        assert_eq!(
            out.ties,
            dset,
            "ties must be exactly the d² argmin set, not the {} faces with equal similarity",
            rset.len()
        );
        assert_eq!(out.face, dset[0]);
        assert_eq!(out.similarity, 1.0 / d2min.sqrt());
    }

    #[test]
    fn heuristic_converges_to_exhaustive_result_from_anywhere() {
        let m = map();
        // Use an exact face signature: global optimum is unique, and the
        // landscape of Theorem 1 should funnel the walk there from any
        // start.
        let target = m.face_at(Point::new(52.0, 48.0)).unwrap();
        let f = m.face(target);
        let v = SamplingVector::new(
            f.signature
                .components()
                .iter()
                .map(|&c| Some(c as f64))
                .collect(),
        );
        let exhaustive = match_exhaustive(&m, &v);
        let mut converged = 0;
        let starts = [0usize, 1, m.face_count() / 2, m.face_count() - 1];
        for &s in &starts {
            let out = match_heuristic(&m, &v, FaceId(s as u32));
            if out.face == exhaustive.face {
                converged += 1;
            }
        }
        // Hill climbing may stall on rare plateaus; from most starts it
        // must reach the optimum.
        assert!(converged >= 3, "only {converged}/4 starts converged");
    }

    #[test]
    fn heuristic_warm_start_is_cheap() {
        let m = map();
        let target = m.center_face();
        let f = m.face(target);
        let v = SamplingVector::new(
            f.signature
                .components()
                .iter()
                .map(|&c| Some(c as f64))
                .collect(),
        );
        // Warm start at the answer: zero rounds, evaluates only the
        // neighborhood.
        let out = match_heuristic(&m, &v, target);
        assert_eq!(out.face, target);
        assert_eq!(out.rounds, 0);
        assert!(out.evaluated <= 1 + m.neighbors(target).len());
        assert!(out.evaluated < m.face_count());
    }

    #[test]
    fn heuristic_from_neighbor_takes_one_round() {
        let m = map();
        let target = m.center_face();
        let f = m.face(target);
        let v = SamplingVector::new(
            f.signature
                .components()
                .iter()
                .map(|&c| Some(c as f64))
                .collect(),
        );
        let nb = m.neighbors(target)[0];
        let out = match_heuristic(&m, &v, nb);
        assert_eq!(out.face, target);
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn all_star_vector_ties_everything_exhaustively() {
        let m = map();
        let v = SamplingVector::new(vec![None; m.pair_dimension()]);
        let out = match_exhaustive(&m, &v);
        assert_eq!(out.ties.len(), m.face_count());
        assert!(out.is_tied());
    }

    /// Outcome equality on every probe kind the suite uses elsewhere:
    /// exact signatures, perturbed signatures, and the all-star vector.
    /// (`index_differential` does this at scale; this is the in-crate
    /// smoke check.)
    #[test]
    fn indexed_matches_exhaustive_outcomes() {
        let m = map();
        assert!(m.planes().has_chunks(), "built maps carry a chunk index");
        let mut probes: Vec<SamplingVector> = m
            .faces()
            .iter()
            .step_by(7)
            .map(|f| {
                SamplingVector::new(
                    f.signature
                        .components()
                        .iter()
                        .map(|&c| Some(c as f64))
                        .collect(),
                )
            })
            .collect();
        let f = m.face(m.center_face()).clone();
        let mut comps: Vec<Option<f64>> = f
            .signature
            .components()
            .iter()
            .map(|&c| Some(c as f64))
            .collect();
        comps[0] = Some(if comps[0] == Some(0.0) { 1.0 } else { 0.0 });
        comps[5] = None;
        probes.push(SamplingVector::new(comps));
        probes.push(SamplingVector::new(vec![None; m.pair_dimension()]));
        for v in &probes {
            let ex = match_exhaustive(&m, v);
            let ix = match_indexed(&m, v);
            assert_eq!(ix.face, ex.face);
            assert_eq!(ix.similarity.to_bits(), ex.similarity.to_bits());
            assert_eq!(ix.ties, ex.ties);
            assert!(
                ix.evaluated <= ex.evaluated,
                "the index never evaluates more faces than the scan"
            );
        }
    }

    /// A unique exact match prunes hard: the winning chunk's bound is 0
    /// and every other chunk's bound is ≥ 1, so only chunks containing a
    /// zero-distance candidate are ever scanned.
    #[test]
    fn indexed_prunes_on_exact_match() {
        let m = map();
        let f = m.face(m.center_face()).clone();
        let v = SamplingVector::new(
            f.signature
                .components()
                .iter()
                .map(|&c| Some(c as f64))
                .collect(),
        );
        let out = match_indexed(&m, &v);
        assert_eq!(out.face, f.id);
        assert_eq!(out.similarity, f64::INFINITY);
        assert!(
            out.evaluated < m.face_count(),
            "evaluated {} of {} faces — no pruning happened",
            out.evaluated,
            m.face_count()
        );
    }

    /// Extended (non-ternary) queries carry no envelope structure; the
    /// indexed entry point must fall back to the scan, not misprune.
    #[test]
    fn indexed_extended_query_falls_back_to_scan() {
        let m = map();
        // 0.3 is outside {−1, 0, +1}, so the packed query is extended no
        // matter what any face's signature looks like.
        let comps: Vec<Option<f64>> = (0..m.pair_dimension())
            .map(|i| if i % 5 == 2 { None } else { Some(0.3) })
            .collect();
        let v = SamplingVector::new(comps);
        let ex = match_exhaustive(&m, &v);
        let ix = match_indexed(&m, &v);
        assert_eq!(ix.face, ex.face);
        assert_eq!(ix.similarity.to_bits(), ex.similarity.to_bits());
        assert_eq!(ix.ties, ex.ties);
        assert_eq!(ix.evaluated, m.face_count(), "fallback scans every face");
    }

    /// `match_full` is a pure dispatcher.
    #[test]
    fn match_full_dispatches_both_strategies() {
        let m = map();
        let v = SamplingVector::new(vec![None; m.pair_dimension()]);
        let scan = match_full(&m, &v, MatchStrategy::Scan);
        let indexed = match_full(&m, &v, MatchStrategy::Indexed);
        assert_eq!(scan, match_exhaustive(&m, &v));
        assert_eq!(indexed, match_indexed(&m, &v));
        assert_eq!(MatchStrategy::default(), MatchStrategy::Indexed);
    }

    /// One-face degenerate map through the indexed path.
    #[test]
    fn indexed_degenerate_one_face_map() {
        let far = vec![Point::new(10_000.0, 50.0), Point::new(10_010.0, 50.0)];
        let m = FaceMap::build(&far, Rect::square(100.0), 1.15, 5.0);
        assert_eq!(m.face_count(), 1);
        let v = SamplingVector::new(vec![Some(1.0)]);
        let out = match_indexed(&m, &v);
        assert_eq!(out.face, m.faces()[0].id);
        assert_eq!(out.ties, vec![m.faces()[0].id]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_rejected() {
        let m = map();
        let v = SamplingVector::from_ternary(vec![Some(1)]);
        let _ = match_exhaustive(&m, &v);
    }

    #[test]
    fn hop_path_renders_and_elides() {
        assert_eq!(render_hop_path(&[7]), "7");
        assert_eq!(render_hop_path(&[3, 17, 9]), "3>17>9");
        let long: Vec<u32> = (0..40).collect();
        let rendered = render_hop_path(&long);
        assert!(rendered.starts_with("0>1>2>"));
        assert!(rendered.ends_with(">…+8"), "got {rendered}");
    }
}
