//! Matching a sampling vector to a face (Section 4.4).
//!
//! * [`match_exhaustive`] — maximum-likelihood matching over every face
//!   (the `O(n⁴)` ergodic scan).
//! * [`match_indexed`] — the same maximum-likelihood outcome, bit for
//!   bit, via coarse-to-fine descent over the map's chunk index: whole
//!   chunks are pruned by an envelope lower bound before any face is
//!   scanned, making full-accuracy matching sublinear in practice.
//! * [`match_heuristic`] — Algorithm 2: hill-climb over neighbor-face
//!   links from a start face (the previous localization when tracking),
//!   dropping the per-localization cost to `O(n²)` in practice.
//!
//! Callers that want exhaustive *quality* without committing to a
//! particular execution pick a [`MatchStrategy`] and go through
//! [`match_full`].

mod algorithms;

pub use algorithms::{
    match_exhaustive, match_full, match_heuristic, match_indexed, MatchOutcome, MatchStrategy,
};
