//! Matching a sampling vector to a face (Section 4.4).
//!
//! * [`match_exhaustive`] — maximum-likelihood matching over every face
//!   (the `O(n⁴)` ergodic scan).
//! * [`match_heuristic`] — Algorithm 2: hill-climb over neighbor-face
//!   links from a start face (the previous localization when tracking),
//!   dropping the per-localization cost to `O(n²)` in practice.

mod algorithms;

pub use algorithms::{match_exhaustive, match_heuristic, MatchOutcome};
