//! The Section-5 analysis: grouping sampling times and tracking error.
//!
//! Two closed forms are implemented and Monte-Carlo-validated in tests:
//!
//! * the probability a grouping sampling captures **all** expected flipped
//!   pairs, and the sampling-times bound `k(λ, N)` derived from it
//!   (Section 5.1 + Appendix I);
//! * the expected vector-distance error `E_N = N·f` when the target sits
//!   in the intersection of `N` pairs' uncertain areas (Section 5.2 +
//!   Appendix II), plus the worst-case geographic bound of eq. (10).
//!
//! Note on exponents: the paper's main text states `f_N = (1−f)^{N−1}`
//! while its own recurrence (Appendix I: `f_N = (1−f)·f_{N−1}`, `f₁ = 1−f`)
//! gives `f_N = (1−f)^N`. We implement the recurrence-consistent `(1−f)^N`;
//! the two differ by one factor of `(1−f) ≈ 1` and agree with the paper's
//! numeric example (`k = 16` for 20 nodes at λ = 0.99) either way.

/// Probability that `k` samples of a pair in its uncertain area all land
/// on the same order, i.e. the flip goes **unobserved**:
/// `f = (1/2)^(k−1)` (Section 5.1, assuming either order is equally likely
/// per sample).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn flip_miss_probability(k: usize) -> f64 {
    assert!(k > 0, "need at least one sample");
    let exponent = k - 1;
    // 2^−1074 is the smallest positive f64; past it the power underflows to
    // exactly 0.0. Answering that directly keeps the exponent in i32 range —
    // a bare `k as i32` would wrap for k > i32::MAX and feed `powi` a
    // negative exponent, returning garbage ≫ 1.
    if exponent > 1074 {
        return 0.0;
    }
    0.5_f64.powi(exponent as i32)
}

/// Probability that a grouping sampling of `k` samples observes the flip
/// of **every one** of `n_pairs` uncertain pairs: `(1 − f)^N` with
/// `f = (1/2)^(k−1)` (Appendix I).
pub fn all_flips_probability(k: usize, n_pairs: usize) -> f64 {
    let f = flip_miss_probability(k);
    if f == 1.0 {
        // k = 1: a single sample can never witness both orders.
        return if n_pairs == 0 { 1.0 } else { 0.0 };
    }
    // (1 − f)^N as exp(N·ln(1 − f)), with ln_1p so small f keeps its full
    // precision. This also retires the old `powi(n_pairs as i32)`, whose
    // cast silently wrapped for n_pairs > i32::MAX.
    (n_pairs as f64 * (-f).ln_1p()).exp()
}

/// Minimum sampling times `k` such that
/// [`all_flips_probability`]`(k, n_pairs) > lambda` — the paper's
/// `k > 1 − log₂(1 − λ^{1/N})`.
///
/// The logarithmic dependence is the paper's headline observation: even
/// `n_pairs = 190` (20 nodes in range) at `λ = 0.99` needs only `k = 16`.
///
/// # Panics
///
/// Panics unless `0 < lambda < 1` and `n_pairs ≥ 1`.
pub fn required_sampling_times(lambda: f64, n_pairs: usize) -> usize {
    assert!(
        lambda > 0.0 && lambda < 1.0,
        "λ must be in (0, 1), got {lambda}"
    );
    assert!(n_pairs >= 1, "need at least one pair");
    // 1 − λ^{1/N} = −expm1(ln λ / N). For large N, λ^{1/N} sits within a
    // few ulps of 1.0, so the textbook `1.0 − lambda.powf(1.0 / N)` cancels
    // catastrophically (and rounds to 0 outright once N ≳ 10^16); expm1
    // keeps the per-pair miss budget at full precision.
    let miss_budget = -(lambda.ln() / n_pairs as f64).exp_m1();
    let k = 1.0 - miss_budget.log2();
    // Strict inequality: the smallest integer k with k > bound.
    (k.floor() as usize) + 1
}

/// Expected vector-distance error when the target lies in the intersection
/// of `n_pairs` uncertain areas and each missed flip shifts the matched
/// face by one signature component: `E_N = N·f` (Appendix II).
pub fn expected_vector_error(k: usize, n_pairs: usize) -> f64 {
    n_pairs as f64 * flip_miss_probability(k)
}

/// The worst-case geographic tracking-error bound of eq. (10):
///
/// ```text
/// E < sqrt( C(n,2)·f·πR² / (ξ·n⁴) ),   n = πR²·ρ
/// ```
///
/// with `ρ` the deployment density (nodes/m²), `R` the sensing range (m),
/// `k` the sampling times and `xi` the paper's face-count constant (the
/// number of faces per `n⁴`). Falls with `2^{(k−1)/2}`, `ρ` and `R` — the
/// scaling the paper reads off as `O(1/(2^{(k−1)/2}·ρ·R))`.
///
/// # Panics
///
/// Panics unless `density`, `range` and `xi` are strictly positive, and the
/// implied in-range node count is at least 2.
pub fn worst_case_error_bound(k: usize, density: f64, range: f64, xi: f64) -> f64 {
    assert!(
        density > 0.0 && range > 0.0 && xi > 0.0,
        "parameters must be positive"
    );
    let area = std::f64::consts::PI * range * range;
    let n = area * density;
    assert!(
        n >= 2.0,
        "fewer than two nodes in sensing range (n = {n:.2})"
    );
    let pairs = n * (n - 1.0) / 2.0;
    let f = flip_miss_probability(k);
    (pairs * f * area / (xi * n.powi(4))).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn flip_miss_probability_halves_per_sample() {
        assert_eq!(flip_miss_probability(1), 1.0);
        assert_eq!(flip_miss_probability(2), 0.5);
        assert_eq!(flip_miss_probability(5), 0.0625);
    }

    #[test]
    fn paper_numeric_example_20_nodes() {
        // 20 nodes ⟹ N = 190 pairs; λ = 0.99 ⟹ k = 16 (Section 5.1).
        let n_pairs = 20 * 19 / 2;
        assert_eq!(required_sampling_times(0.99, n_pairs), 16);
        assert!(all_flips_probability(16, n_pairs) > 0.99);
        assert!(all_flips_probability(15, n_pairs) <= 0.99);
    }

    #[test]
    fn required_k_grows_logarithmically() {
        let k_small = required_sampling_times(0.99, 10);
        let k_big = required_sampling_times(0.99, 10_000);
        assert!(k_big > k_small);
        // Three orders of magnitude more pairs cost only ~10 more samples.
        assert!(k_big - k_small <= 12, "k: {k_small} → {k_big}");
    }

    #[test]
    fn required_k_satisfies_its_own_bound_tightly() {
        for &lambda in &[0.9, 0.99, 0.999] {
            for &n_pairs in &[1usize, 3, 45, 190, 780] {
                let k = required_sampling_times(lambda, n_pairs);
                assert!(
                    all_flips_probability(k, n_pairs) > lambda,
                    "k={k} fails λ={lambda}, N={n_pairs}"
                );
                if k > 1 {
                    assert!(
                        all_flips_probability(k - 1, n_pairs) <= lambda,
                        "k−1={} already satisfies λ={lambda}, N={n_pairs}",
                        k - 1
                    );
                }
            }
        }
    }

    /// Property test for the expm1 fix: across a log-spaced grid plus
    /// pseudorandom draws of `n_pairs` up to 10^9, the returned `k` must
    /// satisfy its own strict inequality and be minimal. The old
    /// `1.0 − λ.powf(1/N)` form loses up to five decimal digits of the
    /// per-pair budget in this range.
    #[test]
    fn required_k_satisfies_bound_up_to_1e9_pairs() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);
        let mut cases: Vec<usize> = vec![
            1,
            2,
            3,
            10,
            97,
            1_000,
            10_007,
            100_003,
            1_000_000,
            10_000_019,
            100_000_000,
            1_000_000_000,
        ];
        for _ in 0..200 {
            // Log-uniform draw over [1, 10^9].
            let exp: f64 = rng.gen::<f64>() * 9.0;
            cases.push(10f64.powf(exp).round().max(1.0) as usize);
        }
        for &lambda in &[0.9, 0.99, 0.999, 0.999_999] {
            for &n_pairs in &cases {
                let k = required_sampling_times(lambda, n_pairs);
                assert!(
                    all_flips_probability(k, n_pairs) > lambda,
                    "k={k} fails λ={lambda}, N={n_pairs}"
                );
                if k > 1 {
                    assert!(
                        all_flips_probability(k - 1, n_pairs) <= lambda,
                        "k−1={} already satisfies λ={lambda}, N={n_pairs}",
                        k - 1
                    );
                }
            }
        }
    }

    /// Regression for the silently wrapping `as i32` casts: huge `k` and
    /// `n_pairs > i32::MAX` must stay probabilities, not garbage from a
    /// negative `powi` exponent.
    #[test]
    fn huge_arguments_stay_probabilities() {
        // Past the last subnormal (2^−1074) the miss probability is exactly 0.
        assert!(flip_miss_probability(1075) > 0.0);
        assert_eq!(flip_miss_probability(1076), 0.0);
        // Pre-fix, `k as i32 − 1` wrapped negative here and returned ≫ 1.
        assert_eq!(flip_miss_probability(usize::MAX), 0.0);
        assert_eq!(flip_miss_probability(i32::MAX as usize + 2), 0.0);

        // Pre-fix, `n_pairs as i32` wrapped to i32::MIN here, turning the
        // power into (1−f)^(−2^31) ≫ 1.
        let beyond_i32 = i32::MAX as usize + 1;
        let p = all_flips_probability(50, beyond_i32);
        assert!((0.0..=1.0).contains(&p), "not a probability: {p}");
        assert!(p > 0.999, "k=50 leaves ~4e-6 expected misses: {p}");
        let p_small_k = all_flips_probability(20, 5 * beyond_i32);
        assert!((0.0..=1.0).contains(&p_small_k));
        assert!(p_small_k < 1e-300, "~2e4 expected misses ⟹ ≈ 0");
        // Degenerate corners keep their closed-form values.
        assert_eq!(all_flips_probability(1, 7), 0.0);
        assert_eq!(all_flips_probability(1, 0), 1.0);
        assert_eq!(all_flips_probability(7, 0), 1.0);
        assert_eq!(all_flips_probability(usize::MAX, 1_000_000), 1.0);
    }

    /// Monte-Carlo check of `f_N = (1−f)^N`: simulate N independent pairs,
    /// each flipping per-sample with probability 1/2, and count groupings
    /// that saw both orders for every pair.
    #[test]
    fn all_flips_probability_monte_carlo() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        let (k, n_pairs, trials) = (5usize, 6usize, 200_000usize);
        let mut all_seen = 0usize;
        for _ in 0..trials {
            let ok = (0..n_pairs).all(|_| {
                let mut seen_seq = false;
                let mut seen_rev = false;
                for _ in 0..k {
                    if rng.gen::<bool>() {
                        seen_seq = true;
                    } else {
                        seen_rev = true;
                    }
                }
                seen_seq && seen_rev
            });
            if ok {
                all_seen += 1;
            }
        }
        let empirical = all_seen as f64 / trials as f64;
        let theory = all_flips_probability(k, n_pairs);
        assert!(
            (empirical - theory).abs() < 0.005,
            "empirical {empirical} vs theory {theory}"
        );
    }

    /// Monte-Carlo check of `E_N = N·f`: each missed flip contributes one
    /// unit of vector error.
    #[test]
    fn expected_vector_error_monte_carlo() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(22);
        let (k, n_pairs, trials) = (4usize, 8usize, 200_000usize);
        let mut total_err = 0usize;
        for _ in 0..trials {
            for _ in 0..n_pairs {
                let mut seen_seq = false;
                let mut seen_rev = false;
                for _ in 0..k {
                    if rng.gen::<bool>() {
                        seen_seq = true;
                    } else {
                        seen_rev = true;
                    }
                }
                if !(seen_seq && seen_rev) {
                    total_err += 1;
                }
            }
        }
        let empirical = total_err as f64 / trials as f64;
        let theory = expected_vector_error(k, n_pairs);
        assert!(
            (empirical - theory).abs() < 0.01,
            "empirical {empirical} vs theory {theory}"
        );
    }

    #[test]
    fn worst_case_bound_scaling() {
        let xi = 1.0;
        // More samples ⟹ smaller bound, with ratio √2 per extra sample.
        let e5 = worst_case_error_bound(5, 0.002, 40.0, xi);
        let e7 = worst_case_error_bound(7, 0.002, 40.0, xi);
        assert!(
            (e5 / e7 - 2.0).abs() < 1e-9,
            "each sample halves f ⟹ √·=2 over two samples"
        );
        // Denser deployments shrink the bound roughly like 1/ρ.
        let sparse = worst_case_error_bound(5, 0.002, 40.0, xi);
        let dense = worst_case_error_bound(5, 0.004, 40.0, xi);
        assert!(dense < sparse);
        let ratio = sparse / dense;
        assert!(ratio > 1.8 && ratio < 2.2, "density scaling ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "fewer than two nodes")]
    fn bound_needs_two_nodes_in_range() {
        let _ = worst_case_error_bound(5, 1e-6, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "λ must be in")]
    fn bad_lambda_rejected() {
        let _ = required_sampling_times(1.0, 10);
    }
}
