//! Constructing sampling vectors from grouping samplings.
//!
//! [`basic_sampling_vector`] is the paper's Algorithm 1 plus the
//! fault-tolerance rule of eq. (6); [`extended_sampling_vector`] is the
//! Section-6 extension (Definition 10) that keeps the *degree* of flipping
//! instead of collapsing it to `0`.

mod algorithm1;

pub use algorithm1::{basic_sampling_vector, extended_sampling_vector, PairEvidence};
