//! Algorithm 1 (sampling-vector construction), its fault-tolerant fill
//! (eq. 6) and the quantitative extension (Definition 10).

use crate::vector::SamplingVector;
use wsn_network::{pair_count, GroupSampling, PairIter};

/// The order evidence a grouping sampling holds for one node pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PairEvidence {
    /// Instants (with both readings present) where `rss_i > rss_j`.
    pub sequential: usize,
    /// Instants where `rss_i < rss_j`.
    pub reverse: usize,
    /// Instants where the readings tied exactly.
    pub ties: usize,
}

impl PairEvidence {
    /// Instants where both nodes produced a reading.
    #[inline]
    pub fn common(&self) -> usize {
        self.sequential + self.reverse + self.ties
    }

    /// Gathers the evidence for pair `(i, j)` from a sampling matrix.
    pub fn gather(group: &GroupSampling, i: usize, j: usize) -> Self {
        let mut ev = PairEvidence::default();
        for t in 0..group.instants() {
            if let (Some(a), Some(b)) = (group.get(t, i), group.get(t, j)) {
                if a > b {
                    ev.sequential += 1;
                } else if a < b {
                    ev.reverse += 1;
                } else {
                    ev.ties += 1;
                }
            }
        }
        ev
    }
}

/// Computes one pair's value with a caller-supplied rule for the
/// both-responded case; the missing-node cases follow eq. (6):
/// `i` responded, `j` silent → `+1`; the reverse → `−1`; both silent → `*`
/// (`None`).
fn pair_value<F: Fn(PairEvidence) -> f64>(
    group: &GroupSampling,
    i: usize,
    j: usize,
    both: F,
) -> Option<f64> {
    match (group.node_responded(i), group.node_responded(j)) {
        (true, true) => Some(both(PairEvidence::gather(group, i, j))),
        (true, false) => Some(1.0),
        (false, true) => Some(-1.0),
        (false, false) => None,
    }
}

/// Algorithm 1 + eq. (6): the basic ternary sampling vector.
///
/// For each pair, in canonical order:
///
/// * both nodes responded and every co-observed instant agreed on the order
///   → `+1` / `−1` (Definition 4's "ordinal" cases);
/// * both responded but the order flipped (or tied, or the nodes were never
///   observed at the same instant — no consistent-order evidence either
///   way) → `0`;
/// * exactly one responded → `+1`/`−1` toward the responder (eq. 6: silent
///   nodes are treated as strictly weaker);
/// * neither responded → `*`.
///
/// ```
/// use fttt::sampling::basic_sampling_vector;
/// use wsn_network::GroupSampling;
/// use wsn_signal::Rss;
///
/// // Two nodes, two instants: node 0 louder both times ⟹ pair value +1.
/// let group = GroupSampling::from_rows(vec![
///     vec![Some(Rss::new(-50.0)), Some(Rss::new(-60.0))],
///     vec![Some(Rss::new(-51.0)), Some(Rss::new(-59.0))],
/// ]);
/// let v = basic_sampling_vector(&group);
/// assert_eq!(v.component(0), Some(1.0));
/// ```
///
/// # Panics
///
/// Panics if `group` has fewer than two node columns.
pub fn basic_sampling_vector(group: &GroupSampling) -> SamplingVector {
    let n = group.node_count();
    assert!(n >= 2, "need at least two nodes for pair values");
    let mut comps = Vec::with_capacity(pair_count(n));
    for (i, j) in PairIter::new(n) {
        comps.push(pair_value(group, i, j, |ev| {
            if ev.sequential > 0 && ev.reverse == 0 && ev.ties == 0 {
                1.0
            } else if ev.reverse > 0 && ev.sequential == 0 && ev.ties == 0 {
                -1.0
            } else {
                0.0
            }
        }));
    }
    SamplingVector::new(comps)
}

/// Definition 10: the extended (quantitative) sampling vector.
///
/// For a pair where both nodes responded, the value is
/// `P(sequential) − P(reverse) = (N_seq − N_rev) / N_common ∈ [−1, 1]`,
/// retaining *how lopsided* the flipping was. Missing-node cases follow
/// eq. (6) exactly as in the basic vector. Pairs with no co-observed
/// instants get `0.0`.
///
/// # Panics
///
/// Panics if `group` has fewer than two node columns.
pub fn extended_sampling_vector(group: &GroupSampling) -> SamplingVector {
    let n = group.node_count();
    assert!(n >= 2, "need at least two nodes for pair values");
    let mut comps = Vec::with_capacity(pair_count(n));
    for (i, j) in PairIter::new(n) {
        comps.push(pair_value(group, i, j, |ev| {
            let common = ev.common();
            if common == 0 {
                0.0
            } else {
                (ev.sequential as f64 - ev.reverse as f64) / common as f64
            }
        }));
    }
    SamplingVector::new(comps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_signal::Rss;

    /// Rows = instants, columns = nodes; entries in dBm, `None` = missing.
    fn matrix(rows: Vec<Vec<Option<f64>>>) -> GroupSampling {
        GroupSampling::from_rows(
            rows.into_iter()
                .map(|r| r.into_iter().map(|v| v.map(Rss::new)).collect())
                .collect(),
        )
    }

    /// The paper's Fig. 5 example: four nodes, six instants; node 2 loudest
    /// throughout, pair (3,4) (zero-based (2,3)) flips; everything else
    /// ordinal. Expected vector: [-1, 1, 1, 1, 1, 0].
    fn fig5() -> GroupSampling {
        matrix(vec![
            //        n1           n2           n3           n4
            vec![Some(-50.0), Some(-45.0), Some(-60.0), Some(-62.0)],
            vec![Some(-51.0), Some(-44.0), Some(-61.0), Some(-59.0)], // (3,4) flips here
            vec![Some(-49.0), Some(-46.0), Some(-58.0), Some(-63.0)],
            vec![Some(-50.5), Some(-45.5), Some(-62.0), Some(-60.0)], // and here
            vec![Some(-50.2), Some(-44.8), Some(-59.0), Some(-61.0)],
            vec![Some(-49.8), Some(-45.2), Some(-60.5), Some(-62.5)],
        ])
    }

    #[test]
    fn fig5_basic_vector() {
        let v = basic_sampling_vector(&fig5());
        // Pairs: (1,2),(1,3),(1,4),(2,3),(2,4),(3,4).
        assert_eq!(
            v.components(),
            &[
                Some(-1.0),
                Some(1.0),
                Some(1.0),
                Some(1.0),
                Some(1.0),
                Some(0.0)
            ]
        );
    }

    #[test]
    fn fig5_extended_vector() {
        let v = extended_sampling_vector(&fig5());
        // (3,4): 4 sequential, 2 reverse out of 6 ⟹ (4−2)/6 = 1/3.
        assert_eq!(v.component(5), Some(1.0 / 3.0));
        // Ordinal pairs keep ±1.
        assert_eq!(v.component(0), Some(-1.0));
        assert_eq!(v.component(1), Some(1.0));
    }

    /// The paper's Section 4.4.3 fault example: only n1 and n3 respond with
    /// rss1 > rss3. Expected: [1, 1, 1, −1, *, 1].
    #[test]
    fn fault_example_eq6() {
        let g = matrix(vec![
            vec![Some(-50.0), None, Some(-60.0), None],
            vec![Some(-51.0), None, Some(-59.0), None],
        ]);
        let v = basic_sampling_vector(&g);
        assert_eq!(
            v.components(),
            &[Some(1.0), Some(1.0), Some(1.0), Some(-1.0), None, Some(1.0)]
        );
        // The extension treats missing-node pairs identically.
        let e = extended_sampling_vector(&g);
        assert_eq!(e.components(), v.components());
    }

    #[test]
    fn flipped_pair_yields_zero() {
        let g = matrix(vec![
            vec![Some(-50.0), Some(-55.0)],
            vec![Some(-56.0), Some(-51.0)],
        ]);
        assert_eq!(basic_sampling_vector(&g).component(0), Some(0.0));
        // Extended: (1 − 1)/2 = 0 as well, but for k=3 with 2:1 split it
        // differs (checked below).
        assert_eq!(extended_sampling_vector(&g).component(0), Some(0.0));
    }

    #[test]
    fn extended_keeps_flip_degree() {
        let g = matrix(vec![
            vec![Some(-50.0), Some(-55.0)],
            vec![Some(-56.0), Some(-51.0)],
            vec![Some(-50.0), Some(-57.0)],
        ]);
        assert_eq!(basic_sampling_vector(&g).component(0), Some(0.0));
        assert_eq!(extended_sampling_vector(&g).component(0), Some(1.0 / 3.0));
    }

    #[test]
    fn ties_break_ordinality() {
        let g = matrix(vec![
            vec![Some(-50.0), Some(-50.0)],
            vec![Some(-49.0), Some(-51.0)],
        ]);
        // A tie means "not all strictly greater": basic value 0.
        assert_eq!(basic_sampling_vector(&g).component(0), Some(0.0));
        // Extended: 1 sequential out of 2 common ⟹ 1/2.
        assert_eq!(extended_sampling_vector(&g).component(0), Some(0.5));
    }

    #[test]
    fn ragged_columns_with_no_overlap() {
        // Both nodes responded but never at the same instant: no order
        // evidence — value 0 for both variants.
        let g = matrix(vec![vec![Some(-50.0), None], vec![None, Some(-60.0)]]);
        assert_eq!(basic_sampling_vector(&g).component(0), Some(0.0));
        assert_eq!(extended_sampling_vector(&g).component(0), Some(0.0));
    }

    #[test]
    fn partial_overlap_uses_common_instants_only() {
        let g = matrix(vec![
            vec![Some(-50.0), Some(-60.0)],
            vec![Some(-50.0), None],
            vec![None, Some(-40.0)],
        ]);
        // Only instant 0 is common and there n1 > n2.
        assert_eq!(basic_sampling_vector(&g).component(0), Some(1.0));
        assert_eq!(extended_sampling_vector(&g).component(0), Some(1.0));
    }

    #[test]
    fn all_nodes_silent_gives_all_stars() {
        let g = GroupSampling::empty(3, 4);
        let v = basic_sampling_vector(&g);
        assert_eq!(v.unknown_count(), 3);
    }

    #[test]
    fn dimension_is_pair_count() {
        for n in 2..12 {
            let g = GroupSampling::empty(n, 2);
            assert_eq!(basic_sampling_vector(&g).len(), pair_count(n));
        }
    }

    #[test]
    fn evidence_gathering_counts() {
        let g = matrix(vec![
            vec![Some(-1.0), Some(-2.0)],
            vec![Some(-3.0), Some(-2.0)],
            vec![Some(-2.0), Some(-2.0)],
            vec![Some(-1.0), None],
        ]);
        let ev = PairEvidence::gather(&g, 0, 1);
        assert_eq!(ev.sequential, 1);
        assert_eq!(ev.reverse, 1);
        assert_eq!(ev.ties, 1);
        assert_eq!(ev.common(), 3);
    }
}
