//! # FTTT — Fault-Tolerant Target Tracking under unreliable sensing
//!
//! Reproduction of the tracking strategy of *"Rethinking of the
//! Uncertainty: A Fault-Tolerant Target-Tracking Strategy Based on
//! Unreliable Sensing in Wireless Sensor Networks"* (Xie et al., 2012).
//!
//! The strategy turns tracking into vector matching:
//!
//! 1. **Offline** (preprocessing): every node pair's *uncertain area* —
//!    bounded by two Apollonius circles with the radio-derived ratio
//!    constant `C` — slices the monitored field into **faces**; each face
//!    carries a unique ternary **signature vector** over all node pairs
//!    ([`facemap`]).
//! 2. **Online** (per localization): a **grouping sampling** of `k`
//!    quasi-simultaneous RSS readings is reduced, pair by pair, to a
//!    **sampling vector** — `+1`/`-1` when the pair's order was stable
//!    across the group, `0` when it flipped, `*` when readings were missing
//!    ([`sampling`], Algorithm 1 + the fault-tolerance rule eq. 6).
//! 3. The target is placed in the face whose signature maximizes the
//!    similarity `S = 1/‖V_d − V_s‖` ([`matching`]) — either exhaustively
//!    or by hill-climbing over neighbor-face links warm-started from the
//!    previous estimate (Algorithm 2).
//! 4. The **extended** strategy (Section 6) replaces ternary pair values
//!    with the quantitative `P(sequential) − P(reverse) ∈ [−1, 1]`,
//!    breaking similarity ties and smoothing the output trajectory.
//!
//! [`tracker`] wires the steps into a driver; [`theory`] implements the
//! Section-5 analysis (sampling-times bound, expected vector error);
//! [`config`] captures the paper's Table-1 parameter set.
//!
//! ## Quickstart
//!
//! ```
//! use fttt::config::PaperParams;
//! use fttt::tracker::{Tracker, TrackerOptions};
//! use rand::SeedableRng;
//!
//! let params = PaperParams::default().with_nodes(10);
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let field = params.random_field(&mut rng);
//! let map = params.face_map(&field);
//! let sampler = params.sampler();
//! let trace = params.random_trace(10.0, &mut rng);
//!
//! let mut tracker = Tracker::new(map, TrackerOptions::default());
//! let run = tracker.track(&field, &sampler, &trace, &mut rng);
//! let err = run.error_stats();
//! assert!(err.mean < 30.0, "tracking should be far better than blind guessing");
//! ```

// `deny`, not `forbid`: the one sanctioned exception is `vector::simd`,
// which carries an explicit `allow` for the `std::arch` SIMD distance
// kernels (runtime-dispatched, differentially tested against the safe
// scalar loop). Everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod diagnostics;
pub mod error;
pub mod facemap;
pub mod matching;
pub mod postprocess;
pub mod replay;
pub mod sampling;
pub mod session;
pub mod theory;
pub mod tracker;
pub mod vector;

pub use config::{ConstantRule, NoiseModel, PaperParams};
pub use facemap::{Face, FaceId, FaceMap, RepairMode, RepairReport};
pub use matching::{
    match_exhaustive, match_full, match_heuristic, match_indexed, MatchOutcome, MatchStrategy,
};
pub use sampling::{basic_sampling_vector, extended_sampling_vector};
pub use session::{
    status_name, RoundTrace, SessionOptions, SessionRound, SessionRun, TrackStatus, TrackingSession,
};
pub use tracker::{Tracker, TrackerOptions, TrackingRun};
pub use vector::{SamplingVector, SignatureVector};
