//! Tracking-error statistics (the metrics of the paper's Section 7:
//! per-point geographic error, mean and standard deviation).

/// Summary statistics over a sequence of per-localization errors (metres).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ErrorStats {
    /// Number of localizations.
    pub count: usize,
    /// Mean error.
    pub mean: f64,
    /// Population standard deviation of the error.
    pub std: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Smallest error.
    pub min: f64,
    /// Largest error.
    pub max: f64,
}

impl ErrorStats {
    /// Computes the statistics.
    ///
    /// # Panics
    ///
    /// Panics if `errors` is empty or contains non-finite values.
    pub fn from_errors(errors: &[f64]) -> Self {
        assert!(!errors.is_empty(), "no errors to summarize");
        let n = errors.len() as f64;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &e in errors {
            assert!(e.is_finite(), "non-finite error value {e}");
            sum += e;
            sum_sq += e * e;
            min = min.min(e);
            max = max.max(e);
        }
        let mean = sum / n;
        // Clamp: catastrophic cancellation can push the variance a hair
        // below zero for constant inputs.
        let var = (sum_sq / n - mean * mean).max(0.0);
        Self {
            count: errors.len(),
            mean,
            std: var.sqrt(),
            rmse: (sum_sq / n).sqrt(),
            min,
            max,
        }
    }
}

/// The `q`-quantile of `errors` (`q ∈ [0, 1]`), by linear interpolation
/// between order statistics. `q = 0.5` is the median — more robust than
/// the mean when a tracker occasionally teleports.
///
/// # Panics
///
/// Panics if `errors` is empty, contains non-finite values, or `q` is
/// outside `[0, 1]`.
pub fn quantile(errors: &[f64], q: f64) -> f64 {
    assert!(!errors.is_empty(), "no errors to summarize");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile must be in [0, 1], got {q}"
    );
    let mut sorted: Vec<f64> = errors.to_vec();
    for e in &sorted {
        assert!(e.is_finite(), "non-finite error value {e}");
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The median error: [`quantile`]`(errors, 0.5)`.
pub fn median(errors: &[f64]) -> f64 {
    quantile(errors, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_statistics() {
        let s = ErrorStats::from_errors(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std - 1.118033988749895).abs() < 1e-12);
        assert!((s.rmse - (30.0_f64 / 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn constant_errors_have_zero_std() {
        let s = ErrorStats::from_errors(&[2.0; 100]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.rmse, 2.0);
    }

    #[test]
    fn single_sample() {
        let s = ErrorStats::from_errors(&[7.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn quantiles() {
        let errors = [4.0, 1.0, 3.0, 2.0, 5.0];
        assert_eq!(median(&errors), 3.0);
        assert_eq!(quantile(&errors, 0.0), 1.0);
        assert_eq!(quantile(&errors, 1.0), 5.0);
        assert_eq!(quantile(&errors, 0.25), 2.0);
        // Interpolation between order statistics.
        assert_eq!(quantile(&[1.0, 2.0], 0.5), 1.5);
        assert_eq!(quantile(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn median_is_robust_to_outliers() {
        let errors = [1.0, 1.0, 1.0, 1.0, 100.0];
        assert_eq!(median(&errors), 1.0);
        assert!(ErrorStats::from_errors(&errors).mean > 20.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn bad_quantile_rejected() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    #[should_panic(expected = "no errors")]
    fn empty_rejected() {
        let _ = ErrorStats::from_errors(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        let _ = ErrorStats::from_errors(&[1.0, f64::NAN]);
    }
}
