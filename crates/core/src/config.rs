//! The paper's Table-1 parameter set, as one reusable configuration.

use crate::facemap::FaceMap;
use rand::Rng;
use wsn_geometry::Rect;
use wsn_mobility::{RandomWaypoint, Trace};
use wsn_network::{Deployment, GroupSampler, SensorField};
use wsn_signal::PathLossModel;

/// How the face-map uncertainty constant `C` is derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ConstantRule {
    /// The paper's eq. (3): `C` from the expected distance ratio at the
    /// sensing-resolution limit. Faithful default.
    PaperEq3,
    /// `wsn_signal::calibrated_uncertainty_constant`: the ratio where a
    /// k-sample grouping witnesses a flip with probability ½, making the
    /// offline division consistent with the online sampling statistics
    /// (suite extension; see the `fig12b` experiment).
    FlipCalibrated,
}

/// Which sensing-noise model the sampler draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NoiseModel {
    /// Eq. 1's log-normal shadowing (physical default).
    GaussianEq1,
    /// The paper's idealized sensing model: bounded noise whose
    /// flip-possible region is exactly the eq.-3 Apollonius band (flips
    /// never occur outside any pair's uncertain area — the assumption
    /// behind the Section-5 analysis).
    IdealizedBand,
}

/// System parameters and settings (paper Table 1) plus the two
/// implementation knobs the paper leaves implicit (reference path loss and
/// grid cell size).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PaperParams {
    /// Field side, metres (Table 1: 100 × 100 m²).
    pub field_side: f64,
    /// Path-loss exponent β (Table 1: 4).
    pub beta: f64,
    /// Shadowing σ_X, dB (Table 1: 6).
    pub sigma: f64,
    /// Reference path loss at 1 m, dBm (implementation constant; cancels
    /// out of all pairwise comparisons).
    pub pl_d0: f64,
    /// Number of sensor nodes (Table 1: 5–40).
    pub nodes: usize,
    /// Sensing range R, metres (Table 1: 40).
    pub sensing_range: f64,
    /// Sensing resolution ε, dBm (Table 1: 0.5–3).
    pub epsilon: f64,
    /// Sampling rate λ, Hz (Table 1: 10).
    pub sampling_rate_hz: f64,
    /// Target speed range, m/s (Table 1: 1–5).
    pub min_speed: f64,
    /// Maximum target speed, m/s.
    pub max_speed: f64,
    /// Grouping sampling times k (Table 1: 3–9).
    pub samples_k: usize,
    /// Raster cell size for the approximate grid division, metres.
    pub cell_size: f64,
    /// How `C` is derived (default: the paper's eq. 3).
    pub constant_rule: ConstantRule,
    /// Which noise model the sampler uses (default: eq. 1 Gaussian).
    pub noise_model: NoiseModel,
}

impl Default for PaperParams {
    fn default() -> Self {
        Self {
            field_side: 100.0,
            beta: 4.0,
            sigma: 6.0,
            pl_d0: -40.0,
            nodes: 10,
            sensing_range: 40.0,
            epsilon: 1.0,
            sampling_rate_hz: 10.0,
            min_speed: 1.0,
            max_speed: 5.0,
            samples_k: 5,
            cell_size: 1.0,
            constant_rule: ConstantRule::PaperEq3,
            noise_model: NoiseModel::GaussianEq1,
        }
    }
}

impl PaperParams {
    /// Sets the node count.
    pub fn with_nodes(mut self, n: usize) -> Self {
        self.nodes = n;
        self
    }

    /// Sets the sensing resolution ε (dBm).
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the grouping sampling times k.
    pub fn with_samples(mut self, k: usize) -> Self {
        self.samples_k = k;
        self
    }

    /// Sets the raster cell size (metres).
    pub fn with_cell_size(mut self, cell: f64) -> Self {
        self.cell_size = cell;
        self
    }

    /// Sets the shadowing σ (dB).
    pub fn with_sigma(mut self, sigma: f64) -> Self {
        self.sigma = sigma;
        self
    }

    /// The monitored rectangle.
    pub fn rect(&self) -> Rect {
        Rect::square(self.field_side)
    }

    /// The radio model.
    pub fn model(&self) -> PathLossModel {
        PathLossModel::new(self.pl_d0, 0.0, self.beta, self.sigma)
    }

    /// Switches to the flip-calibrated constant rule.
    pub fn with_calibrated_constant(mut self) -> Self {
        self.constant_rule = ConstantRule::FlipCalibrated;
        self
    }

    /// The uncertainty constant `C` for these parameters, per the active
    /// [`ConstantRule`].
    pub fn uncertainty_constant(&self) -> f64 {
        match self.constant_rule {
            ConstantRule::PaperEq3 => self.model().uncertainty_constant(self.epsilon),
            ConstantRule::FlipCalibrated => wsn_signal::calibrated_uncertainty_constant(
                self.epsilon,
                self.beta,
                self.sigma,
                self.samples_k,
            ),
        }
    }

    /// Uniform-random deployment of [`PaperParams::nodes`] sensors.
    pub fn random_field<R: Rng + ?Sized>(&self, rng: &mut R) -> SensorField {
        SensorField::new(
            Deployment::random_uniform(self.nodes, self.rect(), rng),
            self.sensing_range,
        )
    }

    /// Regular-grid deployment of [`PaperParams::nodes`] sensors.
    pub fn grid_field(&self) -> SensorField {
        SensorField::new(
            Deployment::grid(self.nodes, self.rect()),
            self.sensing_range,
        )
    }

    /// Builds the face map for a deployment under these parameters
    /// (parallel rasterization).
    pub fn face_map(&self, field: &SensorField) -> FaceMap {
        FaceMap::build_with_threads(
            &field.deployment().positions(),
            self.rect(),
            self.uncertainty_constant(),
            self.cell_size,
            wsn_parallel::recommended_threads(),
        )
    }

    /// Switches to the idealized bounded-noise sensing model.
    pub fn with_idealized_noise(mut self) -> Self {
        self.noise_model = NoiseModel::IdealizedBand;
        self
    }

    /// The grouping sampler (no faults), under the active [`NoiseModel`].
    pub fn sampler(&self) -> GroupSampler {
        let s = GroupSampler::new(self.model(), self.samples_k);
        match self.noise_model {
            NoiseModel::GaussianEq1 => s,
            NoiseModel::IdealizedBand => {
                // The flip-possible band is the eq.-3 constant regardless
                // of the face-map rule, so the offline division matches
                // the idealized physics exactly.
                s.with_idealized_band(self.model().uncertainty_constant(self.epsilon))
            }
        }
    }

    /// The random-waypoint mobility model.
    pub fn mobility(&self) -> RandomWaypoint {
        RandomWaypoint::new(self.rect(), self.min_speed, self.max_speed, 0.0)
    }

    /// Seconds between localizations: one grouping sampling of `k` samples
    /// at the Table-1 sampling rate.
    pub fn localization_period(&self) -> f64 {
        self.samples_k as f64 / self.sampling_rate_hz
    }

    /// A random-waypoint trace of `duration` seconds sampled at the
    /// localization period.
    pub fn random_trace<R: Rng + ?Sized>(&self, duration: f64, rng: &mut R) -> Trace {
        self.mobility()
            .trace(duration, self.localization_period(), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn defaults_match_table1() {
        let p = PaperParams::default();
        assert_eq!(p.field_side, 100.0);
        assert_eq!(p.beta, 4.0);
        assert_eq!(p.sigma, 6.0);
        assert_eq!(p.sensing_range, 40.0);
        assert_eq!(p.sampling_rate_hz, 10.0);
        assert_eq!(p.min_speed, 1.0);
        assert_eq!(p.max_speed, 5.0);
    }

    #[test]
    fn builders_chain() {
        let p = PaperParams::default()
            .with_nodes(25)
            .with_epsilon(2.0)
            .with_samples(7);
        assert_eq!(p.nodes, 25);
        assert_eq!(p.epsilon, 2.0);
        assert_eq!(p.samples_k, 7);
    }

    #[test]
    fn localization_period_follows_rate() {
        let p = PaperParams::default().with_samples(5);
        assert_eq!(p.localization_period(), 0.5);
    }

    #[test]
    fn constant_matches_signal_crate() {
        let p = PaperParams::default();
        let expected = wsn_signal::uncertainty_constant(p.epsilon, p.beta, p.sigma);
        assert_eq!(p.uncertainty_constant(), expected);
        assert!(p.uncertainty_constant() > 1.0);
    }

    #[test]
    fn calibrated_rule_widens_the_constant() {
        let eq3 = PaperParams::default();
        let cal = PaperParams::default().with_calibrated_constant();
        assert!(cal.uncertainty_constant() > eq3.uncertainty_constant());
        // Calibrated C tracks k; eq. 3's does not.
        let cal9 = cal.with_samples(9);
        assert!(cal9.uncertainty_constant() > cal.uncertainty_constant());
        let eq3_9 = eq3.with_samples(9);
        assert_eq!(eq3_9.uncertainty_constant(), eq3.uncertainty_constant());
    }

    #[test]
    fn end_to_end_assembly() {
        let p = PaperParams::default().with_nodes(6).with_cell_size(4.0);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let field = p.random_field(&mut rng);
        assert_eq!(field.len(), 6);
        let map = p.face_map(&field);
        assert!(map.face_count() > 1);
        assert_eq!(map.pair_dimension(), 15);
        let trace = p.random_trace(5.0, &mut rng);
        assert!(trace.len() >= 10);
    }
}
