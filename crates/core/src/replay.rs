//! Deterministic-replay digests for tracking sessions.
//!
//! The digest primitive ([`Digest`], re-exported from
//! [`wsn_network::replay`]) lives in the network crate so the regime
//! engine can digest its own private state; this module adds the
//! session-side folds: per-round state, whole runs, the face map, and the
//! stable session ids that keep journaled campaigns keyed identically
//! across runs, thread counts and processes.
//!
//! What a per-round digest covers (in canonical fold order): the round
//! index and simulation time, status before/after, the failure cause, the
//! matched face and reported estimate, similarity, missing/zero fractions,
//! the monitor's verdict flags, and the sampling ladder (`k`, `k_after`).
//! Callers fold the *world* state (regime engine + live-node set) next to
//! it via [`wsn_network::replay::digest_world`]; the two together pin a
//! simulation round completely — any divergence in RNG consumption, fault
//! state, matching, or session policy changes the trial digest.
//!
//! What it deliberately does **not** cover: wall-clock time, thread
//! ordinals, journal sequence numbers, and telemetry histograms of
//! durations — scheduling, not simulation.

use crate::facemap::FaceMap;
use crate::session::{status_name, SessionRound, SessionRun};
pub use wsn_network::replay::{
    digest_hex, digest_live_set, digest_world, parse_digest_hex, Digest,
};

/// Folds one session round into `digest` (see the module docs for the
/// field list and order).
pub fn digest_round(digest: &mut Digest, round: &SessionRound) {
    let trace = &round.trace;
    digest.write_u64(trace.round);
    digest.write_f64(round.t);
    digest.write_str(status_name(trace.status_before));
    digest.write_str(status_name(round.status));
    digest.write_str(trace.cause);
    // 1-based face, 0 = blackout hold — the same encoding the journal and
    // the replay diff use.
    digest.write_u64(round.face.map_or(0, |f| f.0 as u64 + 1));
    digest.write_f64(round.estimate.x);
    digest.write_f64(round.estimate.y);
    digest.write_bool(round.similarity.is_some());
    digest.write_f64(round.similarity.unwrap_or(0.0));
    digest.write_f64(round.missing_fraction);
    digest.write_f64(trace.zero_fraction);
    digest.write_bool(trace.blackout);
    digest.write_bool(trace.stranded);
    digest.write_bool(trace.starved);
    digest.write_bool(trace.teleported);
    digest.write_bool(round.held);
    digest.write_bool(round.reacquired);
    digest.write_u64(round.samples as u64);
    digest.write_u64(trace.k_after as u64);
}

/// Folds a completed run: every round in order, then the per-round errors
/// (bit patterns — the ground-truth side of the trial).
pub fn digest_run(digest: &mut Digest, run: &SessionRun) {
    digest.write_u64(run.rounds.len() as u64);
    for round in &run.rounds {
        digest_round(digest, round);
    }
    for &e in &run.errors {
        digest.write_f64(e);
    }
}

/// Digests a face map: the map epoch, face count, then per face (in id
/// order) the signature components, centroid and cell count.
///
/// This is the audit anchor for the map-construction path: face ids are
/// assigned by first encounter in row-major raster order, *not* by
/// `HashMap` iteration — if a refactor ever let hash-map ordering leak
/// into face numbering, signatures, or centroids, every downstream
/// campaign checksum would move. A map digest in the campaign header
/// catches that class of bug at the source instead of as an unexplained
/// round divergence.
///
/// The epoch fold (PR 8) means a churned map can never digest equal to a
/// static one even when the surviving division happens to coincide —
/// "same faces after node 3 died and came back" and "never churned" are
/// different replay histories. The epoch is hex-encoded with
/// [`digest_hex`] wherever it surfaces in journals, like every other u64
/// digest (the PR-7 convention).
pub fn digest_face_map(map: &FaceMap) -> u64 {
    let mut d = Digest::new();
    d.write_u64(map.epoch());
    let faces = map.faces();
    d.write_u64(faces.len() as u64);
    for face in faces {
        d.write_u64(face.id.0 as u64);
        for &c in face.signature.components() {
            d.write_bytes(&[c as u8]);
        }
        d.write_f64(face.centroid.x);
        d.write_f64(face.centroid.y);
        d.write_u64(face.cell_count as u64);
    }
    d.value()
}

/// A stable session id for one campaign trial, derived from the trial's
/// identity rather than a process counter: `(regime label, method label,
/// fault-rate bits, trial index, map epoch)` hashed and truncated to 48
/// bits. The epoch is the face map's epoch *at session start* — a trial
/// replayed against a churned map keys differently from one against the
/// pristine build, so merged journals never alias the two.
///
/// 48 bits keeps ids exactly representable as JSON numbers (f64 is exact
/// below 2⁵³) while leaving the collision probability over a campaign's
/// few hundred sessions at ~10⁻⁹ (birthday bound). The same inputs give
/// the same id in every process, which is what lets a sharded run's
/// journal merge with — and a replay diff key against — a single-process
/// run's.
pub fn stable_session_id(
    regime: &str,
    method: &str,
    fault_rate: Option<f64>,
    trial: u64,
    epoch: u64,
) -> u64 {
    let mut d = Digest::new();
    d.write_str(regime);
    d.write_str(method);
    d.write_bool(fault_rate.is_some());
    d.write_f64(fault_rate.unwrap_or(0.0));
    d.write_u64(trial);
    d.write_u64(epoch);
    d.value() & ((1 << 48) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facemap::FaceId;
    use crate::session::{RoundTrace, TrackStatus};
    use wsn_geometry::Point;

    fn round() -> SessionRound {
        SessionRound {
            t: 1.5,
            estimate: Point { x: 10.0, y: 20.0 },
            status: TrackStatus::Tracking,
            samples: 3,
            face: Some(FaceId(7)),
            similarity: Some(0.875),
            missing_fraction: 0.25,
            reacquired: false,
            held: false,
            trace: RoundTrace {
                round: 4,
                status_before: TrackStatus::Degraded,
                cause: "healthy",
                blackout: false,
                stranded: false,
                starved: false,
                teleported: false,
                zero_fraction: 0.0,
                k_after: 3,
            },
        }
    }

    #[test]
    fn round_digest_sees_every_field_it_claims_to() {
        let base = round();
        let value_of = |r: &SessionRound| {
            let mut d = Digest::new();
            digest_round(&mut d, r);
            d.value()
        };
        let baseline = value_of(&base);
        assert_eq!(value_of(&base), baseline, "digesting is pure");

        type Mutation = Box<dyn Fn(&mut SessionRound)>;
        let mutations: Vec<Mutation> = vec![
            Box::new(|r| r.t = 2.0),
            Box::new(|r| r.estimate.x += 0.001),
            Box::new(|r| r.status = TrackStatus::Lost),
            Box::new(|r| r.samples = 4),
            Box::new(|r| r.face = Some(FaceId(8))),
            Box::new(|r| r.face = None),
            Box::new(|r| r.similarity = Some(0.8750000000000001)),
            Box::new(|r| r.similarity = None),
            Box::new(|r| r.missing_fraction = 0.5),
            Box::new(|r| r.held = true),
            Box::new(|r| r.reacquired = true),
            Box::new(|r| r.trace.round = 5),
            Box::new(|r| r.trace.status_before = TrackStatus::Tracking),
            Box::new(|r| r.trace.cause = "stranded"),
            Box::new(|r| r.trace.stranded = true),
            Box::new(|r| r.trace.zero_fraction = 0.125),
            Box::new(|r| r.trace.k_after = 9),
        ];
        for (i, mutate) in mutations.iter().enumerate() {
            let mut m = round();
            mutate(&mut m);
            assert_ne!(
                value_of(&m),
                baseline,
                "mutation {i} did not change the digest"
            );
        }
    }

    #[test]
    fn face_none_and_face_zero_disambiguate() {
        // face = None encodes as 0, face = FaceId(0) as 1 — a blackout
        // hold and a match on face 0 must not collide.
        let mut none = round();
        none.face = None;
        let mut zero = round();
        zero.face = Some(FaceId(0));
        let (mut a, mut b) = (Digest::new(), Digest::new());
        digest_round(&mut a, &none);
        digest_round(&mut b, &zero);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn stable_ids_are_stable_distinct_and_json_safe() {
        let id = stable_session_id("node-failure", "FTTT-ext", Some(0.3), 2, 0);
        assert_eq!(
            id,
            stable_session_id("node-failure", "FTTT-ext", Some(0.3), 2, 0)
        );
        assert!(id < (1 << 48), "must survive an f64 JSON round-trip");

        let mut seen = std::collections::HashSet::new();
        for regime in ["node-failure", "burst", "blackout", "energy"] {
            for method in ["FTTT-basic", "FTTT-ext"] {
                for rate in [None, Some(0.0), Some(0.1), Some(0.3), Some(0.5)] {
                    for trial in 0..16 {
                        for epoch in [0, 3] {
                            assert!(
                                seen.insert(stable_session_id(regime, method, rate, trial, epoch)),
                                "collision at {regime}/{method}/{rate:?}/{trial}/{epoch}"
                            );
                        }
                    }
                }
            }
        }
        // rate = None and rate = Some(0.0) are distinct identities.
        assert_ne!(
            stable_session_id("r", "m", None, 0, 0),
            stable_session_id("r", "m", Some(0.0), 0, 0)
        );
    }

    #[test]
    fn face_map_digest_is_deterministic_and_shape_sensitive() {
        use crate::config::PaperParams;
        let params = PaperParams::default().with_nodes(8);
        let field = params.grid_field();
        let map_a = params.face_map(&field);
        let map_b = params.face_map(&field);
        assert_eq!(digest_face_map(&map_a), digest_face_map(&map_b));

        let other = PaperParams::default().with_nodes(9);
        let other_map = other.face_map(&other.grid_field());
        assert_ne!(digest_face_map(&map_a), digest_face_map(&other_map));
    }

    #[test]
    fn face_map_digest_is_epoch_sensitive() {
        use crate::config::PaperParams;
        use crate::facemap::RepairMode;
        let params = PaperParams::default().with_nodes(8);
        let field = params.grid_field();
        let pristine = params.face_map(&field);
        let mut churned = params.face_map(&field);
        churned.kill_node(3, RepairMode::Incremental);
        let after_kill = digest_face_map(&churned);
        assert_ne!(digest_face_map(&pristine), after_kill);
        // Reviving restores the identical division, but the epoch keeps
        // counting — the digest must still differ from the pristine map.
        churned.revive_node(3, RepairMode::Incremental);
        assert_eq!(churned.faces(), pristine.faces());
        assert_ne!(
            digest_face_map(&churned),
            digest_face_map(&pristine),
            "a kill+revive history must not alias an unchurned map"
        );
        assert_ne!(digest_face_map(&churned), after_kill);
    }
}
