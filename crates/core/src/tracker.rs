//! The end-to-end tracking driver: grouping sampling → sampling vector →
//! face matching → location estimate, repeated along a trace.

use crate::error::ErrorStats;
use crate::facemap::{FaceId, FaceMap, RepairMode, RepairReport};
use crate::matching::{match_full, match_heuristic, MatchOutcome, MatchStrategy};
use crate::sampling::{basic_sampling_vector, extended_sampling_vector};
use crate::vector::SamplingVector;
use rand::Rng;
use std::sync::Arc;
use wsn_geometry::Point;
use wsn_mobility::Trace;
use wsn_network::{GroupSampler, GroupSampling, SensorField};
use wsn_telemetry as telemetry;

/// Which matcher a tracker uses per localization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Matching {
    /// Scan every face (the `O(n⁴)` maximum-likelihood baseline matcher).
    Exhaustive,
    /// Algorithm 2: hill-climb over neighbor links, warm-started from the
    /// previous localization.
    Heuristic {
        /// Re-run exhaustively when the climb strands below this
        /// similarity (guards against local maxima after target jumps);
        /// `None` trusts the climb unconditionally.
        fallback_below: Option<f64>,
        /// Re-run exhaustively when the climb's similarity falls below
        /// this fraction of the rolling median of recent (finite)
        /// similarities. Unlike an absolute threshold, this tracks the
        /// run's own attainable similarity level — under heavy noise the
        /// median drops with it, so re-acquisition stays rare — while
        /// still catching a climb stranded on a low plateau far from the
        /// target (the warm-start divergence mode of sequential RSS
        /// trackers). `None` disables the check.
        reacquire_ratio: Option<f64>,
    },
}

/// Tracker configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackerOptions {
    /// Use the extended (quantitative) sampling vectors of Section 6.
    pub extended: bool,
    /// Matching strategy.
    pub matching: Matching,
    /// How full-accuracy matches execute — the exhaustive matcher itself,
    /// the heuristic's fallback/re-acquisition scans, everything that
    /// must return the exact maximum-likelihood face. Both strategies are
    /// bit-identical in outcome; [`MatchStrategy::Indexed`] (the default)
    /// prunes whole chunks of faces by an envelope lower bound first.
    pub strategy: MatchStrategy,
    /// On similarity ties, report the mean of the tied faces' centroids
    /// (the paper's tie rule) instead of the first face's centroid.
    pub tie_average: bool,
}

impl Default for TrackerOptions {
    /// Basic FTTT with exhaustive ML matching and tie averaging — the
    /// configuration of the paper's headline simulations.
    fn default() -> Self {
        Self {
            extended: false,
            matching: Matching::Exhaustive,
            strategy: MatchStrategy::default(),
            tie_average: true,
        }
    }
}

impl TrackerOptions {
    /// Extended FTTT (Section 6) with exhaustive matching.
    pub fn extended() -> Self {
        Self {
            extended: true,
            ..Self::default()
        }
    }

    /// Basic FTTT with the heuristic matcher (Algorithm 2).
    ///
    /// An *absolute* fallback threshold is useless under realistic noise
    /// (the best attainable similarity is routinely below any fixed
    /// threshold, so it would re-run the exhaustive scan on nearly every
    /// localization and erase the heuristic's complexity win). Instead the
    /// climb re-acquires exhaustively only when its similarity drops below
    /// half the rolling median of recent matches — the signature of a climb
    /// stranded on a plateau far from the target, which would otherwise
    /// poison the warm start for many localizations in a row.
    pub fn heuristic() -> Self {
        Self {
            matching: Matching::Heuristic {
                fallback_below: None,
                reacquire_ratio: Some(DEFAULT_REACQUIRE_RATIO),
            },
            ..Self::default()
        }
    }
}

/// Default `reacquire_ratio` of [`TrackerOptions::heuristic`]: re-acquire
/// when the climb lands below half the recent rolling-median similarity.
pub const DEFAULT_REACQUIRE_RATIO: f64 = 0.5;

/// Rolling window of recent finite similarities kept for the relative
/// re-acquisition check (long enough to ride out single bad groupings,
/// short enough to track regime changes within a few seconds).
const SIMILARITY_WINDOW: usize = 8;

/// One localization along a tracking run.
#[derive(Debug, Clone, PartialEq)]
pub struct Localization {
    /// Trace timestamp, seconds.
    pub t: f64,
    /// Ground-truth target position.
    pub truth: Point,
    /// FTTT's location estimate.
    pub estimate: Point,
    /// Matched face.
    pub face: FaceId,
    /// Similarity of the match.
    pub similarity: f64,
    /// Geographic error `‖estimate − truth‖`, metres.
    pub error: f64,
    /// Similarity evaluations spent on this localization.
    pub evaluated: usize,
}

/// A completed tracking run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackingRun {
    /// Per-localization records, in trace order.
    pub localizations: Vec<Localization>,
}

impl TrackingRun {
    /// The per-point errors, in trace order.
    pub fn errors(&self) -> Vec<f64> {
        self.localizations.iter().map(|l| l.error).collect()
    }

    /// Summary statistics of the per-point errors.
    ///
    /// # Panics
    ///
    /// Panics if the run is empty.
    pub fn error_stats(&self) -> ErrorStats {
        ErrorStats::from_errors(&self.errors())
    }

    /// Total similarity evaluations across the run (the matching work the
    /// heuristic matcher is meant to shrink).
    pub fn total_evaluated(&self) -> usize {
        self.localizations.iter().map(|l| l.evaluated).sum()
    }
}

/// The FTTT tracker: holds a (possibly shared) face map, remembers the
/// previous face for warm-started matching.
///
/// The map is behind an [`Arc`] so a server hosting tens of thousands of
/// concurrent sessions keeps one copy of the division instead of one per
/// session; [`Tracker::apply_churn`] copies-on-write, so a tracker that
/// repairs its map privately never disturbs its siblings.
#[derive(Debug, Clone)]
pub struct Tracker {
    map: Arc<FaceMap>,
    options: TrackerOptions,
    previous: Option<FaceId>,
    recent_sims: std::collections::VecDeque<f64>,
}

impl Tracker {
    /// Creates a tracker over a prebuilt face map it owns exclusively.
    pub fn new(map: FaceMap, options: TrackerOptions) -> Self {
        Self::shared(Arc::new(map), options)
    }

    /// Creates a tracker over a face map shared with other trackers. No
    /// map data is copied unless this tracker later churns its map.
    pub fn shared(map: Arc<FaceMap>, options: TrackerOptions) -> Self {
        Self {
            map,
            options,
            previous: None,
            recent_sims: std::collections::VecDeque::new(),
        }
    }

    /// The face map.
    pub fn map(&self) -> &FaceMap {
        &self.map
    }

    /// The options.
    pub fn options(&self) -> TrackerOptions {
        self.options
    }

    /// Forgets the previous localization (e.g. when the target was lost).
    pub fn reset(&mut self) {
        self.previous = None;
        self.recent_sims.clear();
    }

    /// Rolling median of the recent finite similarities, `None` before the
    /// first finite match.
    fn rolling_median_similarity(&self) -> Option<f64> {
        if self.recent_sims.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.recent_sims.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite similarities"));
        Some(sorted[sorted.len() / 2])
    }

    fn record_similarity(&mut self, s: f64) {
        // Exact matches (infinite similarity) would poison any relative
        // threshold; the window tracks only the finite noise floor.
        if s.is_finite() {
            if self.recent_sims.len() == SIMILARITY_WINDOW {
                self.recent_sims.pop_front();
            }
            self.recent_sims.push_back(s);
        }
    }

    /// Builds the sampling vector this tracker's options call for,
    /// projected onto the map's live pair set — after churn the grouping
    /// still reports all deployment pairs, but only planes of live pairs
    /// partition the field, so dead pairs' components must not vote.
    pub fn sampling_vector(&self, group: &GroupSampling) -> SamplingVector {
        let v = if self.options.extended {
            extended_sampling_vector(group)
        } else {
            basic_sampling_vector(group)
        };
        self.map.project_sampling_vector(v)
    }

    /// Repairs the tracker's map for one churn event (death when `death`,
    /// birth otherwise) and migrates the warm-start state across the
    /// epoch bump: the previous face is remapped through the repair's
    /// old→new face table, and the rolling similarity window — measured
    /// against the old pair dimension — is restarted. Returns the repair
    /// report and whether the warm-start face survived the repair
    /// *exactly* (same cell set); callers should treat an inexact
    /// survival as a stale warm start and force a full re-acquisition.
    pub fn apply_churn(
        &mut self,
        node: usize,
        death: bool,
        mode: RepairMode,
    ) -> (RepairReport, bool) {
        // Copy-on-write: a shared map is cloned once here and the repair
        // runs on the private copy; an exclusively-owned map is repaired
        // in place with no copy at all.
        let map = Arc::make_mut(&mut self.map);
        let report = if death {
            map.kill_node(node, mode)
        } else {
            map.revive_node(node, mode)
        };
        self.recent_sims.clear();
        let mut warm_exact = true;
        self.previous = self.previous.take().and_then(|f| {
            let (nf, exact) = report.remap_face(f)?;
            warm_exact = exact;
            Some(nf)
        });
        (report, warm_exact)
    }

    /// Localizes one grouping sampling; returns the estimate and the raw
    /// match outcome. Updates the warm-start state.
    pub fn localize(&mut self, group: &GroupSampling) -> (Point, MatchOutcome) {
        let v = self.sampling_vector(group);
        let outcome = match self.options.matching {
            Matching::Exhaustive => match_full(&self.map, &v, self.options.strategy),
            Matching::Heuristic {
                fallback_below,
                reacquire_ratio,
            } => {
                let start = self.previous.unwrap_or_else(|| self.map.center_face());
                let out = match_heuristic(&self.map, &v, start);
                let below_absolute = fallback_below.is_some_and(|th| out.similarity < th);
                let stranded = reacquire_ratio.is_some_and(|r| {
                    self.rolling_median_similarity()
                        .is_some_and(|median| out.similarity < r * median)
                });
                if below_absolute || stranded {
                    if telemetry::journal_enabled() {
                        use telemetry::ArgValue;
                        telemetry::trace_instant(
                            "fttt.tracker.fallback_reacquire",
                            vec![
                                ("similarity", ArgValue::F64(out.similarity)),
                                ("below_absolute", ArgValue::Bool(below_absolute)),
                                ("stranded", ArgValue::Bool(stranded)),
                            ],
                        );
                    }
                    let mut ex = match_full(&self.map, &v, self.options.strategy);
                    ex.evaluated += out.evaluated;
                    ex
                } else {
                    out
                }
            }
        };
        self.record_similarity(outcome.similarity);
        self.previous = Some(outcome.face);
        let estimate = self.resolve_estimate(&outcome);
        (estimate, outcome)
    }

    /// Localizes one grouping sampling with a forced full-accuracy match
    /// (under the configured [`MatchStrategy`]), regardless of the
    /// configured matching mode, and rebases the warm start on the
    /// result. The session layer's recovery ladder uses this when the
    /// heuristic climb is suspected of being stranded.
    pub fn reacquire(&mut self, group: &GroupSampling) -> (Point, MatchOutcome) {
        let v = self.sampling_vector(group);
        let outcome = match_full(&self.map, &v, self.options.strategy);
        self.record_similarity(outcome.similarity);
        self.previous = Some(outcome.face);
        let estimate = self.resolve_estimate(&outcome);
        (estimate, outcome)
    }

    /// Tracks a target along `trace`: one grouping sampling and one
    /// localization per trace point.
    pub fn track<R: Rng + ?Sized>(
        &mut self,
        field: &SensorField,
        sampler: &GroupSampler,
        trace: &Trace,
        rng: &mut R,
    ) -> TrackingRun {
        self.track_with(field, sampler, trace, rng, |g, _| g)
    }

    /// Like [`Tracker::track`], but pipes every grouping sampling through
    /// `transform` before localization — the hook for inserting a
    /// transport layer (e.g. `wsn_network::Uplink::deliver`) or any other
    /// degradation between the sensors and the matcher.
    pub fn track_with<R, F>(
        &mut self,
        field: &SensorField,
        sampler: &GroupSampler,
        trace: &Trace,
        rng: &mut R,
        mut transform: F,
    ) -> TrackingRun
    where
        R: Rng + ?Sized,
        F: FnMut(GroupSampling, &mut R) -> GroupSampling,
    {
        let mut localizations = Vec::with_capacity(trace.len());
        for p in trace.points() {
            let group = transform(sampler.sample(field, p.pos, rng), rng);
            let (estimate, outcome) = self.localize(&group);
            localizations.push(Localization {
                t: p.t,
                truth: p.pos,
                estimate,
                face: outcome.face,
                similarity: outcome.similarity,
                error: estimate.distance(p.pos),
                evaluated: outcome.evaluated,
            });
        }
        TrackingRun { localizations }
    }

    fn resolve_estimate(&self, outcome: &MatchOutcome) -> Point {
        if self.options.tie_average && outcome.ties.len() > 1 {
            let mut x = 0.0;
            let mut y = 0.0;
            for &id in &outcome.ties {
                let c = self.map.face(id).centroid;
                x += c.x;
                y += c.y;
            }
            let n = outcome.ties.len() as f64;
            Point::new(x / n, y / n)
        } else {
            self.map.face(outcome.face).centroid
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wsn_geometry::Rect;
    use wsn_mobility::{TimedPoint, WaypointPath};
    use wsn_network::{Deployment, FaultModel};
    use wsn_signal::PathLossModel;

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    fn setup(n: usize, sigma: f64, k: usize) -> (SensorField, FaceMap, GroupSampler) {
        let field = Rect::square(100.0);
        let deployment = Deployment::grid(n, field);
        let sensor_field = SensorField::new(deployment, 150.0);
        let model = PathLossModel::new(-40.0, 0.0, 4.0, sigma);
        let c = model.uncertainty_constant(1.0);
        let map = FaceMap::build(&sensor_field.deployment().positions(), field, c, 2.0);
        let sampler = GroupSampler::new(model, k);
        (sensor_field, map, sampler)
    }

    fn straight_trace() -> Trace {
        WaypointPath::new(vec![Point::new(20.0, 50.0), Point::new(80.0, 50.0)])
            .walk_constant(3.0, 1.0)
    }

    #[test]
    fn noiseless_tracking_is_tight() {
        // σ = 0 keeps every pair ordinal outside the ε-band; the estimate
        // should stay within a few face diameters of the truth.
        let (field, map, sampler) = setup(9, 0.0, 3);
        let mut tracker = Tracker::new(map, TrackerOptions::default());
        let run = tracker.track(&field, &sampler, &straight_trace(), &mut rng(1));
        let stats = run.error_stats();
        assert!(stats.mean < 8.0, "noiseless mean error {}", stats.mean);
    }

    #[test]
    fn noisy_tracking_beats_field_scale() {
        let (field, map, sampler) = setup(9, 6.0, 5);
        let mut tracker = Tracker::new(map, TrackerOptions::default());
        let run = tracker.track(&field, &sampler, &straight_trace(), &mut rng(2));
        let stats = run.error_stats();
        // A blind guess at the field centre averages ~25 m on this trace.
        assert!(stats.mean < 20.0, "noisy mean error {}", stats.mean);
    }

    #[test]
    fn heuristic_matches_exhaustive_accuracy_with_less_work() {
        let (field, map, sampler) = setup(9, 6.0, 5);
        let trace = straight_trace();
        let mut ex = Tracker::new(map.clone(), TrackerOptions::default());
        let run_ex = ex.track(&field, &sampler, &trace, &mut rng(3));
        let mut he = Tracker::new(map, TrackerOptions::heuristic());
        let run_he = he.track(&field, &sampler, &trace, &mut rng(3));
        // Same RNG stream ⟹ identical samplings; errors must be close on
        // average, and the heuristic must evaluate far fewer faces.
        let (me, mh) = (run_ex.error_stats().mean, run_he.error_stats().mean);
        assert!(mh <= me * 1.5 + 2.0, "heuristic {mh} vs exhaustive {me}");
        assert!(
            run_he.total_evaluated() < run_ex.total_evaluated() / 2,
            "heuristic {} vs exhaustive {} evaluations",
            run_he.total_evaluated(),
            run_ex.total_evaluated()
        );
    }

    #[test]
    fn extended_reduces_error_deviation() {
        let (field, map, sampler) = setup(9, 6.0, 5);
        let trace = straight_trace();
        let mut basic_stds = Vec::new();
        let mut ext_stds = Vec::new();
        for seed in 0..8 {
            let mut basic = Tracker::new(map.clone(), TrackerOptions::default());
            basic_stds.push(
                basic
                    .track(&field, &sampler, &trace, &mut rng(100 + seed))
                    .error_stats()
                    .std,
            );
            let mut ext = Tracker::new(map.clone(), TrackerOptions::extended());
            ext_stds.push(
                ext.track(&field, &sampler, &trace, &mut rng(100 + seed))
                    .error_stats()
                    .std,
            );
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&ext_stds) <= mean(&basic_stds) * 1.1,
            "extended std {} vs basic {}",
            mean(&ext_stds),
            mean(&basic_stds)
        );
    }

    #[test]
    fn tracking_survives_node_failures() {
        let (field, map, sampler) = setup(9, 6.0, 5);
        let faulty = sampler
            .clone()
            .with_fault(FaultModel::with_node_failure(0.3));
        let mut tracker = Tracker::new(map, TrackerOptions::default());
        let run = tracker.track(&field, &faulty, &straight_trace(), &mut rng(5));
        let stats = run.error_stats();
        assert!(stats.mean.is_finite());
        assert!(stats.mean < 30.0, "faulty mean error {}", stats.mean);
    }

    #[test]
    fn localize_warm_start_state() {
        let (field, map, sampler) = setup(9, 6.0, 5);
        let mut tracker = Tracker::new(map, TrackerOptions::heuristic());
        assert!(tracker.previous.is_none());
        let group = sampler.sample(&field, Point::new(50.0, 50.0), &mut rng(6));
        let _ = tracker.localize(&group);
        assert!(tracker.previous.is_some());
        tracker.reset();
        assert!(tracker.previous.is_none());
    }

    #[test]
    fn track_with_applies_the_transform() {
        let (field, map, sampler) = setup(9, 6.0, 5);
        let trace = straight_trace();
        // Identity transform reproduces plain track() exactly.
        let mut a = Tracker::new(map.clone(), TrackerOptions::default());
        let run_a = a.track(&field, &sampler, &trace, &mut rng(41));
        let mut b = Tracker::new(map.clone(), TrackerOptions::default());
        let run_b = b.track_with(&field, &sampler, &trace, &mut rng(41), |g, _| g);
        assert_eq!(run_a, run_b);
        // A censoring transform (drop every reading of node 0) changes the
        // run but keeps it sane.
        let mut c = Tracker::new(map, TrackerOptions::default());
        let run_c = c.track_with(&field, &sampler, &trace, &mut rng(41), |mut g, _| {
            for t in 0..g.instants() {
                g.set(t, 0, None);
            }
            g
        });
        assert_ne!(run_a, run_c);
        assert!(run_c.error_stats().mean.is_finite());
    }

    #[test]
    fn shared_map_churn_is_copy_on_write() {
        let (field, map, sampler) = setup(9, 6.0, 5);
        let shared = Arc::new(map);
        let mut a = Tracker::shared(Arc::clone(&shared), TrackerOptions::default());
        let mut b = Tracker::shared(Arc::clone(&shared), TrackerOptions::default());
        let epoch0 = shared.epoch();
        a.apply_churn(3, true, RepairMode::Incremental);
        // Only `a` sees the repair; the shared original and `b` are
        // untouched.
        assert!(a.map().epoch() > epoch0);
        assert_eq!(shared.epoch(), epoch0);
        assert_eq!(b.map().epoch(), epoch0);
        assert!(!a.map().is_node_live(3));
        assert!(b.map().is_node_live(3));
        let group = sampler.sample(&field, Point::new(50.0, 50.0), &mut rng(9));
        let (estimate, _) = b.localize(&group);
        assert!(estimate.x.is_finite() && estimate.y.is_finite());
    }

    #[test]
    fn run_records_are_consistent() {
        let (field, map, sampler) = setup(4, 6.0, 3);
        let trace = Trace::new(vec![
            TimedPoint::new(0.0, Point::new(30.0, 30.0)),
            TimedPoint::new(1.0, Point::new(32.0, 30.0)),
        ]);
        let mut tracker = Tracker::new(map, TrackerOptions::default());
        let run = tracker.track(&field, &sampler, &trace, &mut rng(7));
        assert_eq!(run.localizations.len(), 2);
        for l in &run.localizations {
            assert!((l.error - l.estimate.distance(l.truth)).abs() < 1e-12);
            assert!(l.similarity > 0.0);
        }
    }
}
