//! Self-healing tracking sessions: health monitoring, a recovery ladder
//! and adaptive sampling on top of [`Tracker`].
//!
//! The paper's fault rule (eq. 6) absorbs *erasure* faults — missing
//! readings become `*` components and drop out of the distance sum. A
//! session defends against what that rule cannot see: climbs stranded far
//! from the target, groupings so sparse the match is meaningless, total
//! blackouts, and lying sensors whose readings are present but wrong.
//! Three behavioral health checks run per round:
//!
//! 1. **Relative similarity** — the match similarity against the rolling
//!    median of recent finite similarities (absolute thresholds are
//!    useless: the attainable similarity depends on noise and geometry).
//! 2. **Missing fraction** — the share of `*` components in the sampling
//!    vector; past a threshold the `*`-rule has eaten so much of the
//!    vector that whatever face wins is weakly supported.
//! 3. **Estimate plausibility** — the jump from the last trusted estimate
//!    against the target's maximum speed; RSS matchers fail by
//!    teleporting, real targets don't.
//!
//! Failing checks walk a recovery ladder: trust the (heuristic) climb →
//! force an exhaustive-quality re-acquisition (executed under the
//! tracker's [`MatchStrategy`](crate::matching::MatchStrategy) — by
//! default the chunk-indexed matcher, which returns the identical face at
//! a fraction of the scan cost) → hold the last trusted estimate and
//! report [`TrackStatus::Lost`]. In parallel the session escalates the
//! sampling times `k` toward the Section-5.1 bound
//! `k > 1 − log₂(1 − λ^{1/N})` ([`crate::theory::required_sampling_times`])
//! evaluated at the *live* pair count — fewer responding nodes mean fewer
//! pairs, so the bound, and the session's sampling effort, adapt to the
//! fault regime — and decays `k` back once rounds run healthy again.

use crate::error::ErrorStats;
use crate::facemap::{FaceId, RepairMode, RepairReport};
use crate::theory::required_sampling_times;
use crate::tracker::Tracker;
use rand::Rng;
use wsn_geometry::Point;
use wsn_mobility::Trace;
use wsn_network::{pair_count, GroupSampling};
use wsn_telemetry as telemetry;

/// The session's judgement of how much to trust the current estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackStatus {
    /// Healthy: the estimate passed every check.
    Tracking,
    /// One or more health checks failed recently; the estimate is reported
    /// but should be treated with suspicion.
    Degraded,
    /// The target is considered lost (persistent check failures or
    /// blackout); the session holds the last trusted estimate and keeps
    /// attempting re-acquisition.
    Lost,
}

/// Session configuration. All thresholds have workable defaults via
/// [`SessionOptions::new`]; fields are public for tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionOptions {
    /// A round is unhealthy when its similarity falls below this fraction
    /// of the rolling median of recent finite similarities.
    pub reacquire_ratio: f64,
    /// A round is unhealthy when more than this fraction of the sampling
    /// vector is `*` (unknown).
    pub max_missing_fraction: f64,
    /// Maximum plausible target speed in m/s; estimates jumping farther
    /// than `max_speed·Δt + jump_slack` from the last trusted estimate are
    /// unhealthy. `f64::INFINITY` disables the check.
    pub max_speed: f64,
    /// Slack added to the plausible-jump radius, metres (covers face
    /// granularity: even a perfect match moves in centroid-sized steps).
    pub jump_slack: f64,
    /// Baseline sampling times `k` per grouping.
    pub base_samples: usize,
    /// Ceiling on escalated sampling times.
    pub max_samples: usize,
    /// Target probability λ for the Section-5.1 sampling-times bound used
    /// when escalating `k` under fault pressure.
    pub lambda: f64,
    /// Consecutive unhealthy rounds before the session declares
    /// [`TrackStatus::Lost`].
    pub lost_after: usize,
    /// Consecutive healthy rounds before a degraded/lost session returns
    /// to [`TrackStatus::Tracking`].
    pub recover_after: usize,
}

impl SessionOptions {
    /// Defaults around a baseline of `base_samples` sampling times.
    ///
    /// # Panics
    ///
    /// Panics if `base_samples == 0`.
    pub fn new(base_samples: usize) -> Self {
        assert!(base_samples > 0, "need at least one sample per grouping");
        Self {
            reacquire_ratio: 0.5,
            max_missing_fraction: 0.5,
            max_speed: f64::INFINITY,
            jump_slack: 15.0,
            base_samples,
            max_samples: base_samples.max(12),
            lambda: 0.95,
            lost_after: 3,
            recover_after: 2,
        }
    }

    /// Sets the plausible-speed check.
    pub fn with_max_speed(mut self, speed: f64) -> Self {
        self.max_speed = speed;
        self
    }
}

/// The per-round causal record: which health checks fired, what the
/// monitor concluded and how the recovery ladder moved.
///
/// Every [`TrackingSession::step`] builds one and attaches it to the
/// returned [`SessionRound`]; when a trace journal is installed
/// ([`wsn_telemetry::install_journal`]) the same record is emitted as a
/// `fttt.session.round` journal event, which `fttt-sim explain` renders
/// into a status-transition timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundTrace {
    /// Zero-based index of this round within the session's lifetime.
    pub round: u64,
    /// Session status *before* this round's checks ran.
    pub status_before: TrackStatus,
    /// Why the round was judged the way it was: `"healthy"`, or the
    /// highest-priority failing check (`"blackout"` > `"stranded"` >
    /// `"starved"` > `"teleported"`).
    pub cause: &'static str,
    /// The sampling vector was empty or all-`*`; the session held.
    pub blackout: bool,
    /// Similarity fell below `reacquire_ratio` × rolling median.
    pub stranded: bool,
    /// Missing fraction exceeded `max_missing_fraction`.
    pub starved: bool,
    /// The estimate jumped farther than the target could travel.
    pub teleported: bool,
    /// Fraction of *known* components that are exactly zero — pairs whose
    /// order was sampled but never observed flipped. A spike alongside a
    /// healthy missing fraction points at lying (stuck/drifting) sensors
    /// rather than erasures.
    pub zero_fraction: f64,
    /// Sampling times `k` in effect after this round's escalation/decay
    /// (the request for the *next* round; `SessionRound::samples` is the
    /// `k` this round was sampled with).
    pub k_after: usize,
}

/// One session round: the estimate plus everything the monitor saw.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRound {
    /// Round timestamp, seconds.
    pub t: f64,
    /// The reported estimate (held from the last trusted round when the
    /// session could not localize).
    pub estimate: Point,
    /// Session status *after* this round's checks.
    pub status: TrackStatus,
    /// Sampling times `k` the session requested for this round.
    pub samples: usize,
    /// The face the round's match landed on, `None` when the round was a
    /// blackout hold (no match ran). On held non-blackout rounds this is
    /// still the *fresh* match's face — the rejected localization — while
    /// `estimate` is the hold; the replay digest folds both.
    pub face: Option<FaceId>,
    /// Similarity of the match, `None` when the round was a blackout hold.
    pub similarity: Option<f64>,
    /// Fraction of `*` components in the sampling vector (1.0 on
    /// blackout).
    pub missing_fraction: f64,
    /// `true` if the session forced an exhaustive re-acquisition.
    pub reacquired: bool,
    /// `true` if the estimate is a hold of the last trusted one rather
    /// than a fresh localization.
    pub held: bool,
    /// The round's causal record (check verdicts, cause, ladder movement).
    pub trace: RoundTrace,
}

/// A completed session run over a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRun {
    /// Per-round records, in trace order.
    pub rounds: Vec<SessionRound>,
    /// Geographic errors against the trace ground truth, parallel to
    /// `rounds`.
    pub errors: Vec<f64>,
}

impl SessionRun {
    /// Summary statistics of the per-round errors.
    ///
    /// # Panics
    ///
    /// Panics if the run is empty.
    pub fn error_stats(&self) -> ErrorStats {
        ErrorStats::from_errors(&self.errors)
    }

    /// Number of rounds that ended in `status`.
    pub fn rounds_in(&self, status: TrackStatus) -> usize {
        self.rounds.iter().filter(|r| r.status == status).count()
    }

    /// `true` if the session declared [`TrackStatus::Lost`] at some round
    /// and returned to [`TrackStatus::Tracking`] at a later one.
    pub fn recovered_from_lost(&self) -> bool {
        match self
            .rounds
            .iter()
            .position(|r| r.status == TrackStatus::Lost)
        {
            None => false,
            Some(i) => self.rounds[i..]
                .iter()
                .any(|r| r.status == TrackStatus::Tracking),
        }
    }

    /// Total sampling times spent across the run (the energy-side cost of
    /// adaptive escalation).
    pub fn total_samples(&self) -> usize {
        self.rounds.iter().map(|r| r.samples).sum()
    }
}

/// Rolling window of recent finite similarities for the health monitor
/// (matches the tracker's internal window length).
const HEALTH_WINDOW: usize = 8;

/// A self-healing tracking session wrapping a [`Tracker`].
#[derive(Debug, Clone)]
pub struct TrackingSession {
    tracker: Tracker,
    options: SessionOptions,
    status: TrackStatus,
    samples: usize,
    unhealthy_streak: usize,
    healthy_streak: usize,
    /// Last trusted (healthy) estimate and its timestamp.
    last_trusted: Option<(f64, Point)>,
    /// Last reported estimate (trusted or not) — the hold value.
    last_reported: Option<Point>,
    recent_sims: std::collections::VecDeque<f64>,
    /// Escalation ladder: force exhaustive re-acquisition next round.
    force_reacquire: bool,
    /// Lifetime round counter, indexing [`RoundTrace::round`].
    round_index: u64,
    /// Process-unique id stamped on journaled round events, so traces
    /// holding many interleaved sessions (campaigns) stay separable.
    /// Clones share the id of the original.
    session_id: u64,
}

/// Source of [`TrackingSession::session_id`] values.
static NEXT_SESSION_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl TrackingSession {
    /// Wraps `tracker` in a session with the given options.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lambda < 1`, `base_samples ≤ max_samples` and
    /// `base_samples > 0`.
    pub fn new(tracker: Tracker, options: SessionOptions) -> Self {
        assert!(
            options.lambda > 0.0 && options.lambda < 1.0,
            "λ must be in (0, 1), got {}",
            options.lambda
        );
        assert!(
            options.base_samples > 0,
            "need at least one sample per grouping"
        );
        assert!(
            options.base_samples <= options.max_samples,
            "base_samples {} exceeds max_samples {}",
            options.base_samples,
            options.max_samples
        );
        Self {
            tracker,
            options,
            status: TrackStatus::Tracking,
            samples: options.base_samples,
            unhealthy_streak: 0,
            healthy_streak: 0,
            last_trusted: None,
            last_reported: None,
            recent_sims: std::collections::VecDeque::new(),
            force_reacquire: false,
            round_index: 0,
            session_id: NEXT_SESSION_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Current status.
    pub fn status(&self) -> TrackStatus {
        self.status
    }

    /// Sampling times `k` the session wants for the next grouping.
    pub fn requested_samples(&self) -> usize {
        self.samples
    }

    /// The session's options.
    pub fn options(&self) -> SessionOptions {
        self.options
    }

    /// The wrapped tracker (read-only) — the seam deterministic harnesses
    /// use to fold the tracker's face-map state into replay digests after
    /// an [`TrackingSession::apply_churn`] repair.
    pub fn tracker(&self) -> &Tracker {
        &self.tracker
    }

    /// Replaces the process-unique session id with a caller-chosen one.
    ///
    /// The default ids come from a process-global counter, so sessions
    /// created on racing worker threads get ids in a nondeterministic
    /// order — and across processes (sharded campaigns) the same trial
    /// gets different ids entirely. Deterministic pipelines (the fault
    /// campaign, replay) derive a *stable* id from the trial's identity
    /// instead and install it here before the first round, so journaled
    /// round events key identically across runs, thread counts and
    /// processes. Keep ids below 2⁵³ if the journal will be re-read
    /// through JSON (numbers are f64 there).
    pub fn with_session_id(mut self, id: u64) -> Self {
        self.session_id = id;
        self
    }

    /// The id stamped on this session's journaled round events.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Processes one grouping sampling taken at time `t`.
    ///
    /// `group` should have been sampled with [`requested_samples`]
    /// columns of `k` readings, but any grouping is accepted — the monitor
    /// judges what arrived, not what was asked for.
    ///
    /// [`requested_samples`]: TrackingSession::requested_samples
    pub fn step(&mut self, t: f64, group: &GroupSampling) -> SessionRound {
        let status_before = self.status;
        let samples_requested = self.samples;
        let round_index = self.round_index;
        self.round_index += 1;
        let v = self.tracker.sampling_vector(group);
        let missing_fraction = if v.is_empty() {
            1.0
        } else {
            v.unknown_count() as f64 / v.len() as f64
        };
        let known = v.len() - v.unknown_count();
        let zero_fraction = if known == 0 {
            0.0
        } else {
            v.components().iter().filter(|c| **c == Some(0.0)).count() as f64 / known as f64
        };
        let blackout = v.is_empty() || v.unknown_count() == v.len();

        if blackout {
            // Nothing to match against: matching an all-`*` vector ties
            // every face and would report the field centre. Hold instead.
            let estimate = self.hold_estimate(group);
            self.record_unhealthy();
            self.escalate_samples(group);
            let round = SessionRound {
                t,
                estimate,
                status: self.status,
                samples: samples_requested,
                face: None,
                similarity: None,
                missing_fraction,
                reacquired: false,
                held: true,
                trace: RoundTrace {
                    round: round_index,
                    status_before,
                    cause: "blackout",
                    blackout: true,
                    stranded: false,
                    starved: false,
                    teleported: false,
                    zero_fraction,
                    k_after: self.samples,
                },
            };
            self.note_round(&round);
            return round;
        }

        let reacquired = self.force_reacquire;
        let (estimate, outcome) = if reacquired {
            self.force_reacquire = false;
            self.tracker.reacquire(group)
        } else {
            self.tracker.localize(group)
        };

        // Health checks.
        let stranded = self
            .rolling_median()
            .is_some_and(|median| outcome.similarity < self.options.reacquire_ratio * median);
        let starved = missing_fraction > self.options.max_missing_fraction;
        let teleported = self.options.max_speed.is_finite()
            && self.last_trusted.is_some_and(|(t0, p0)| {
                let dt = (t - t0).max(0.0);
                estimate.distance(p0) > self.options.max_speed * dt + self.options.jump_slack
            });
        self.record_sim(outcome.similarity);

        let healthy = !(stranded || starved || teleported);
        if healthy {
            self.record_healthy();
            self.last_trusted = Some((t, estimate));
        } else {
            self.record_unhealthy();
            // Ladder rung 2: a stranded or teleporting climb gets one
            // forced exhaustive re-acquisition before the session gives
            // up on the warm start entirely.
            if (stranded || teleported) && !reacquired {
                self.force_reacquire = true;
            }
        }

        // While Lost, keep reporting the hold until re-acquisition proves
        // itself: a Lost session's fresh estimates are exactly the ones
        // the checks just rejected.
        let (reported, held) = if self.status == TrackStatus::Lost && !healthy {
            (self.hold_estimate(group), true)
        } else {
            self.last_reported = Some(estimate);
            (estimate, false)
        };

        if healthy {
            self.decay_samples();
        } else {
            self.escalate_samples(group);
        }
        let cause = if healthy {
            "healthy"
        } else if stranded {
            "stranded"
        } else if starved {
            "starved"
        } else {
            "teleported"
        };
        let round = SessionRound {
            t,
            estimate: reported,
            status: self.status,
            samples: samples_requested,
            face: Some(outcome.face),
            similarity: Some(outcome.similarity),
            missing_fraction,
            reacquired,
            held,
            trace: RoundTrace {
                round: round_index,
                status_before,
                cause,
                blackout: false,
                stranded,
                starved,
                teleported,
                zero_fraction,
                k_after: self.samples,
            },
        };
        self.note_round(&round);
        round
    }

    /// Runs a whole trace, asking `sample` for each grouping. The closure
    /// receives the requested sampling times `k`, the ground-truth target
    /// position, the round time and the RNG, and returns the grouping as
    /// delivered to the base station — the seam where a
    /// `wsn_network::RegimeEngine` and/or `Uplink` slot in.
    pub fn run<R, F>(&mut self, trace: &Trace, rng: &mut R, sample: F) -> SessionRun
    where
        R: Rng + ?Sized,
        F: FnMut(usize, Point, f64, &mut R) -> GroupSampling,
    {
        self.run_with(trace, rng, sample, |_, _| {})
    }

    /// Like [`TrackingSession::run`], but calls `before_round(self, t)`
    /// ahead of each round's sampling — the seam where a churn schedule
    /// applies pending [`TrackingSession::apply_churn`] events at their
    /// simulation times, between rounds, exactly where a deployed base
    /// station would learn of them.
    pub fn run_with<R, F, B>(
        &mut self,
        trace: &Trace,
        rng: &mut R,
        mut sample: F,
        mut before_round: B,
    ) -> SessionRun
    where
        R: Rng + ?Sized,
        F: FnMut(usize, Point, f64, &mut R) -> GroupSampling,
        B: FnMut(&mut Self, f64),
    {
        let mut rounds = Vec::with_capacity(trace.len());
        let mut errors = Vec::with_capacity(trace.len());
        for p in trace.points() {
            before_round(self, p.t);
            let group = sample(self.samples, p.pos, p.t, rng);
            let round = self.step(p.t, &group);
            errors.push(round.estimate.distance(p.pos));
            rounds.push(round);
        }
        SessionRun { rounds, errors }
    }

    /// Applies one churn event (death when `death`, birth otherwise) at
    /// simulation time `t`: repairs the tracker's face map, migrates the
    /// warm start across the epoch bump, restarts the health monitor's
    /// similarity window (its medians were measured against the old pair
    /// dimension), and — when the warm-start face did not survive the
    /// repair exactly — re-enters the recovery ladder at a forced full
    /// re-acquisition, since the remapped face is a merged/split stand-in
    /// rather than the face the climb actually matched.
    ///
    /// Emits one `fttt.map.repair` journal event (the record `fttt-sim
    /// explain` renders) with the post-repair epoch hex-encoded like
    /// every other u64 digest.
    pub fn apply_churn(
        &mut self,
        t: f64,
        node: usize,
        death: bool,
        mode: RepairMode,
    ) -> RepairReport {
        let (report, warm_exact) = self.tracker.apply_churn(node, death, mode);
        self.recent_sims.clear();
        let face_remapped = !warm_exact;
        if face_remapped {
            self.force_reacquire = true;
        }
        if telemetry::enabled() {
            telemetry::counter_add("fttt.session.churn_events", 1);
            if face_remapped {
                telemetry::counter_add("fttt.session.churn_remaps", 1);
            }
        }
        if telemetry::journal_enabled() {
            use telemetry::ArgValue;
            telemetry::trace_instant(
                "fttt.map.repair",
                vec![
                    ("session", ArgValue::U64(self.session_id)),
                    ("t", ArgValue::F64(t)),
                    (
                        "epoch",
                        ArgValue::Str(wsn_network::replay::digest_hex(report.epoch)),
                    ),
                    ("node", ArgValue::U64(report.node as u64)),
                    ("death", ArgValue::Bool(report.death)),
                    (
                        "planes_retired",
                        ArgValue::U64(report.planes_retired as u64),
                    ),
                    ("planes_added", ArgValue::U64(report.planes_added as u64)),
                    ("cells", ArgValue::U64(report.cells_reclassified as u64)),
                    ("faces_before", ArgValue::U64(report.faces_before as u64)),
                    ("faces_after", ArgValue::U64(report.faces_after as u64)),
                    ("repair_us", ArgValue::F64(report.repair_us)),
                    ("face_remapped", ArgValue::Bool(face_remapped)),
                ],
            );
        }
        report
    }

    fn hold_estimate(&self, group: &GroupSampling) -> Point {
        self.last_reported
            .or(self.last_trusted.map(|(_, p)| p))
            // A session born into blackout has nothing to hold; the map
            // centre is the only defensible prior.
            .unwrap_or_else(|| {
                let _ = group;
                self.tracker
                    .map()
                    .face(self.tracker.map().center_face())
                    .centroid
            })
    }

    fn rolling_median(&self) -> Option<f64> {
        if self.recent_sims.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.recent_sims.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite similarities"));
        Some(sorted[sorted.len() / 2])
    }

    fn record_sim(&mut self, s: f64) {
        if s.is_finite() {
            if self.recent_sims.len() == HEALTH_WINDOW {
                self.recent_sims.pop_front();
            }
            self.recent_sims.push_back(s);
        }
    }

    fn record_healthy(&mut self) {
        self.unhealthy_streak = 0;
        self.healthy_streak += 1;
        match self.status {
            TrackStatus::Tracking => {}
            TrackStatus::Degraded | TrackStatus::Lost => {
                if self.healthy_streak >= self.options.recover_after {
                    self.status = TrackStatus::Tracking;
                }
            }
        }
    }

    fn record_unhealthy(&mut self) {
        self.healthy_streak = 0;
        self.unhealthy_streak += 1;
        if self.unhealthy_streak >= self.options.lost_after {
            if self.status != TrackStatus::Lost {
                // Ladder rung 3: give up the warm start and the similarity
                // history — both are poisoned by whatever went wrong.
                self.tracker.reset();
                self.recent_sims.clear();
            }
            self.status = TrackStatus::Lost;
        } else if self.status == TrackStatus::Tracking {
            self.status = TrackStatus::Degraded;
        }
    }

    /// Escalates `k` toward the Section-5.1 bound at the live pair count.
    ///
    /// With fewer than two live nodes there are no pairs, so the bound is
    /// undefined and extra samples buy no localization evidence — the old
    /// `.max(1)` fabricated a phantom pair and escalated against it. Now
    /// the session leaves `k` alone and lets the unhealthy streak walk the
    /// status toward [`TrackStatus::Lost`] instead.
    fn escalate_samples(&mut self, group: &GroupSampling) {
        // A node the map knows is dead cannot contribute pairs even if a
        // stale reading for it arrived; the bound must see the post-churn
        // pair count, not phantom pairs.
        let map = self.tracker.map();
        let live = (0..group.node_count())
            .filter(|&j| group.node_responded(j) && map.is_node_live(j))
            .count();
        let pairs = pair_count(live);
        if pairs == 0 {
            return;
        }
        let needed = required_sampling_times(self.options.lambda, pairs);
        let before = self.samples;
        self.samples = needed
            .clamp(self.options.base_samples, self.options.max_samples)
            .max(self.samples);
        if self.samples > before {
            telemetry::counter_add("fttt.session.escalations", 1);
        }
    }

    /// Decays `k` one step back toward the baseline after a healthy round.
    fn decay_samples(&mut self) {
        if self.samples > self.options.base_samples {
            self.samples -= 1;
        }
    }

    /// Per-round telemetry: round/hold/re-acquisition counters, the
    /// current-`k` gauge and health-ladder transition counts into the
    /// metrics sink, plus one `fttt.session.round` event carrying the
    /// full [`RoundTrace`] into the trace journal. Each half is a no-op
    /// when its sink is not installed.
    fn note_round(&self, round: &SessionRound) {
        let before = round.trace.status_before;
        if telemetry::enabled() {
            telemetry::counter_add("fttt.session.rounds", 1);
            if round.held {
                telemetry::counter_add("fttt.session.holds", 1);
            }
            if round.reacquired {
                telemetry::counter_add("fttt.session.reacquisitions", 1);
            }
            telemetry::gauge_set("fttt.session.samples_k", self.samples as f64);
            if before != self.status {
                telemetry::counter_add("fttt.session.transitions", 1);
                let name = match self.status {
                    TrackStatus::Tracking => "fttt.session.to_tracking",
                    TrackStatus::Degraded => "fttt.session.to_degraded",
                    TrackStatus::Lost => "fttt.session.to_lost",
                };
                telemetry::counter_add(name, 1);
            }
        }
        if telemetry::journal_enabled() {
            use telemetry::ArgValue;
            let trace = &round.trace;
            let mut args = vec![
                ("session", ArgValue::U64(self.session_id)),
                ("t", ArgValue::F64(round.t)),
                ("status_before", ArgValue::Str(status_name(before).into())),
                ("status", ArgValue::Str(status_name(round.status).into())),
                ("cause", ArgValue::Str(trace.cause.into())),
                ("blackout", ArgValue::Bool(trace.blackout)),
                ("stranded", ArgValue::Bool(trace.stranded)),
                ("starved", ArgValue::Bool(trace.starved)),
                ("teleported", ArgValue::Bool(trace.teleported)),
                ("missing", ArgValue::F64(round.missing_fraction)),
                ("zeros", ArgValue::F64(trace.zero_fraction)),
                ("k", ArgValue::U64(round.samples as u64)),
                ("k_after", ArgValue::U64(trace.k_after as u64)),
                ("held", ArgValue::Bool(round.held)),
                ("reacquired", ArgValue::Bool(round.reacquired)),
                ("x", ArgValue::F64(round.estimate.x)),
                ("y", ArgValue::F64(round.estimate.y)),
                // Faces journal 1-based so 0 can mean "no match ran"
                // (blackout hold) without an optional-arg shape change.
                (
                    "face",
                    ArgValue::U64(round.face.map_or(0, |f| f.0 as u64 + 1)),
                ),
            ];
            if let Some(sim) = round.similarity {
                args.push(("similarity", ArgValue::F64(sim)));
            }
            telemetry::trace_round("fttt.session.round", trace.round, args);
        }
    }
}

/// The stable journal/CLI spelling of a [`TrackStatus`].
pub fn status_name(status: TrackStatus) -> &'static str {
    match status {
        TrackStatus::Tracking => "Tracking",
        TrackStatus::Degraded => "Degraded",
        TrackStatus::Lost => "Lost",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facemap::FaceMap;
    use crate::tracker::TrackerOptions;
    use rand::SeedableRng;
    use wsn_geometry::Rect;
    use wsn_mobility::WaypointPath;
    use wsn_network::{Deployment, GroupSampler, SensorField};
    use wsn_signal::PathLossModel;

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    fn setup(sigma: f64) -> (SensorField, FaceMap, GroupSampler) {
        let field = Rect::square(100.0);
        let deployment = Deployment::grid(9, field);
        let sensor_field = SensorField::new(deployment, 150.0);
        let model = PathLossModel::new(-40.0, 0.0, 4.0, sigma);
        let c = model.uncertainty_constant(1.0);
        let map = FaceMap::build(&sensor_field.deployment().positions(), field, c, 2.0);
        let sampler = GroupSampler::new(model, 5);
        (sensor_field, map, sampler)
    }

    fn trace() -> Trace {
        WaypointPath::new(vec![Point::new(20.0, 50.0), Point::new(80.0, 50.0)])
            .walk_constant(3.0, 1.0)
    }

    fn session(map: FaceMap) -> TrackingSession {
        TrackingSession::new(
            Tracker::new(map, TrackerOptions::heuristic()),
            SessionOptions::new(5).with_max_speed(6.0),
        )
    }

    #[test]
    fn clean_run_stays_tracking() {
        let (field, map, sampler) = setup(4.0);
        let mut s = session(map);
        let run = s.run(&trace(), &mut rng(1), |k, pos, _, r| {
            let sampler = GroupSampler {
                samples: k,
                ..sampler.clone()
            };
            sampler.sample(&field, pos, r)
        });
        assert_eq!(run.rounds_in(TrackStatus::Lost), 0);
        assert!(
            run.error_stats().mean < 20.0,
            "mean {}",
            run.error_stats().mean
        );
        // Healthy rounds decay k back to baseline.
        assert_eq!(s.requested_samples(), 5);
    }

    #[test]
    fn blackout_enters_lost_and_holds() {
        let (field, map, sampler) = setup(4.0);
        let mut s = session(map);
        let nodes = field.len();
        // Blackout between t = 6 and t = 12.
        let run = s.run(&trace(), &mut rng(2), |k, pos, t, r| {
            if (6.0..12.0).contains(&t) {
                GroupSampling::empty(nodes, k)
            } else {
                let sampler = GroupSampler {
                    samples: k,
                    ..sampler.clone()
                };
                sampler.sample(&field, pos, r)
            }
        });
        assert!(
            run.rounds_in(TrackStatus::Lost) > 0,
            "blackout must reach Lost"
        );
        assert!(
            run.recovered_from_lost(),
            "session must recover after the blackout"
        );
        // Held rounds report the pre-blackout estimate, not the map centre.
        let held: Vec<_> = run.rounds.iter().filter(|r| r.held).collect();
        assert!(!held.is_empty());
        for r in &held {
            assert!(r.similarity.is_none() || r.status == TrackStatus::Lost);
            assert!(r.estimate.x.is_finite() && r.estimate.y.is_finite());
        }
    }

    #[test]
    fn partial_blackout_escalates_sampling_times() {
        let (field, map, sampler) = setup(4.0);
        let mut s = session(map);
        let nodes = field.len();
        let mut max_k = 0;
        let _ = s.run(&trace(), &mut rng(3), |k, pos, t, r| {
            max_k = max_k.max(k);
            let sampler = GroupSampler {
                samples: k,
                ..sampler.clone()
            };
            let mut g = sampler.sample(&field, pos, r);
            if t >= 6.0 {
                // Six of nine nodes fall silent: three live nodes leave
                // three pairs, a defined Section-5.1 bound to escalate
                // toward (λ = 0.95, N = 3 ⟹ k = 7).
                for node in 3..nodes {
                    for inst in 0..g.instants() {
                        g.set(inst, node, None);
                    }
                }
            }
            g
        });
        assert!(max_k > 5, "fault pressure must escalate k, saw {max_k}");
        assert!(max_k <= s.options().max_samples);
    }

    /// The phantom-pair regression: with fewer than two live nodes there
    /// are no pairs, so the session must hold `k` at baseline and walk
    /// toward Lost — the old `.max(1)` escalated against a fictitious
    /// one-pair bound.
    #[test]
    fn zero_live_nodes_hold_k_and_walk_to_lost() {
        let (_, map, _) = setup(4.0);
        let mut s = session(map);
        let g = GroupSampling::empty(9, 5);
        for i in 0..4 {
            let round = s.step(i as f64, &g);
            assert_eq!(round.samples, 5, "no pairs must not escalate k");
        }
        assert_eq!(s.requested_samples(), 5);
        assert_eq!(s.status(), TrackStatus::Lost);
    }

    #[test]
    fn one_live_node_holds_k_and_walks_to_lost() {
        let (_, map, _) = setup(4.0);
        let mut s = session(map);
        let mut g = GroupSampling::empty(9, 5);
        for inst in 0..g.instants() {
            g.set(inst, 4, Some(wsn_signal::Rss::new(-50.0)));
        }
        assert!(g.node_responded(4));
        for i in 0..4 {
            let round = s.step(i as f64, &g);
            assert_eq!(round.samples, 5, "one live node has no pairs; k must hold");
        }
        assert_eq!(s.requested_samples(), 5);
        assert_eq!(s.status(), TrackStatus::Lost);
    }

    #[test]
    fn session_born_into_blackout_reports_finite_hold() {
        let (_, map, _) = setup(4.0);
        let mut s = session(map);
        let g = GroupSampling::empty(9, 5);
        for i in 0..5 {
            let round = s.step(i as f64, &g);
            assert!(round.held);
            assert!(round.estimate.x.is_finite() && round.estimate.y.is_finite());
        }
        assert_eq!(s.status(), TrackStatus::Lost);
    }

    #[test]
    fn status_degrades_before_lost() {
        let (_, map, _) = setup(4.0);
        let mut s = session(map);
        let g = GroupSampling::empty(9, 5);
        assert_eq!(s.step(0.0, &g).status, TrackStatus::Degraded);
        assert_eq!(s.step(1.0, &g).status, TrackStatus::Degraded);
        assert_eq!(s.step(2.0, &g).status, TrackStatus::Lost);
    }

    #[test]
    fn round_trace_records_cause_and_ladder_movement() {
        let (_, map, _) = setup(4.0);
        let mut s = session(map);
        let g = GroupSampling::empty(9, 5);
        let r0 = s.step(0.0, &g);
        assert_eq!(r0.trace.round, 0);
        assert_eq!(r0.trace.status_before, TrackStatus::Tracking);
        assert_eq!(r0.status, TrackStatus::Degraded);
        assert_eq!(r0.trace.cause, "blackout");
        assert!(r0.trace.blackout);
        assert!(!r0.trace.stranded && !r0.trace.starved && !r0.trace.teleported);
        // No pairs: k must not escalate.
        assert_eq!(r0.trace.k_after, 5);
        let r1 = s.step(1.0, &g);
        assert_eq!(r1.trace.round, 1);
        assert_eq!(r1.trace.status_before, TrackStatus::Degraded);
    }

    #[test]
    fn healthy_rounds_trace_healthy_cause_and_zero_stats() {
        let (field, map, sampler) = setup(4.0);
        let mut s = session(map);
        let run = s.run(&trace(), &mut rng(7), |k, pos, _, r| {
            let sampler = GroupSampler {
                samples: k,
                ..sampler.clone()
            };
            sampler.sample(&field, pos, r)
        });
        let healthy = run
            .rounds
            .iter()
            .filter(|r| r.trace.cause == "healthy")
            .count();
        assert!(healthy > 0, "a clean run must have healthy rounds");
        for (i, r) in run.rounds.iter().enumerate() {
            assert_eq!(r.trace.round, i as u64, "rounds index the session lifetime");
            assert!((0.0..=1.0).contains(&r.trace.zero_fraction));
            assert_eq!(
                r.trace.cause == "healthy",
                !r.trace.blackout && !r.trace.stranded && !r.trace.starved && !r.trace.teleported
            );
        }
    }

    // NOTE: journal-emission coverage for `note_round` lives in
    // `crates/bench/tests/telemetry_spine.rs` — installing the
    // process-global journal from this multi-threaded unit-test binary
    // would race other tests' sessions into the same ring.

    #[test]
    fn invalid_options_rejected() {
        let (_, map, _) = setup(4.0);
        let mut bad = SessionOptions::new(5);
        bad.lambda = 1.5;
        let result = std::panic::catch_unwind(|| {
            TrackingSession::new(Tracker::new(map, TrackerOptions::default()), bad)
        });
        assert!(result.is_err());
    }
}
