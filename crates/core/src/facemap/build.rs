//! Face-map construction by approximate grid division.

use crate::vector::SignatureVector;
use std::collections::HashMap;
use std::fmt;
use wsn_geometry::{Grid, PairRegion, Point, Rect};
use wsn_network::{pair_count, PairIter};
use wsn_parallel::par_map_threads;

/// Dense face identifier (index into [`FaceMap::faces`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaceId(pub u32);

impl FaceId {
    /// Zero-based index into the face list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// One face of the division: a maximal set of grid cells sharing a
/// signature vector.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Face {
    /// Identifier (equals the face's index).
    pub id: FaceId,
    /// The face's signature (Definition 6); unique within the map.
    pub signature: SignatureVector,
    /// Centroid of the face's cell centres (eq. 5) — the location estimate
    /// reported when the target is matched to this face.
    pub centroid: Point,
    /// Number of grid cells in the face (its area is
    /// `cell_count × cell_size²`).
    pub cell_count: usize,
    /// Axis-aligned bounding box of the face's cell centres (used for
    /// conservative geometric reachability tests, e.g. the PM baseline's
    /// max-velocity constraint).
    pub bbox: Rect,
}

impl Face {
    /// `true` if no component of the signature is `0`, i.e. the face lies
    /// outside every pair's uncertain area — a "certain" face in the sense
    /// of the sequence-based baselines (these vanish as `C` grows, paper
    /// Fig. 3(c)).
    pub fn is_certain(&self) -> bool {
        self.signature.components().iter().all(|&v| v != 0)
    }
}

/// Computes the signature vector of point `p` for sensors at `positions`
/// with uncertainty constant `c` (exact, not rasterized).
///
/// # Panics
///
/// Panics if fewer than two positions are given.
pub fn signature_of(p: Point, positions: &[Point], c: f64) -> SignatureVector {
    assert!(positions.len() >= 2, "need at least two sensors");
    let mut comps = Vec::with_capacity(pair_count(positions.len()));
    for (i, j) in PairIter::new(positions.len()) {
        comps.push(PairRegion::classify(p, positions[i], positions[j], c).signature_component());
    }
    SignatureVector::new(comps)
}

/// The offline face division of a monitored field.
#[derive(Debug, Clone)]
pub struct FaceMap {
    grid: Grid,
    positions: Vec<Point>,
    c: f64,
    faces: Vec<Face>,
    cell_to_face: Vec<u32>,
    neighbors: Vec<Vec<FaceId>>,
    by_signature: HashMap<SignatureVector, FaceId>,
}

impl FaceMap {
    /// Builds the face map serially. See [`FaceMap::build_with_threads`].
    pub fn build(positions: &[Point], field: Rect, c: f64, cell_size: f64) -> Self {
        Self::build_with_threads(positions, field, c, cell_size, 1)
    }

    /// Builds the face map, rasterizing rows of cells across `threads`
    /// workers.
    ///
    /// `positions` are the sensor locations (ID order), `field` the
    /// monitored rectangle, `c ≥ 1` the uncertainty constant (`c = 1`
    /// degenerates to the perpendicular-bisector division used by the
    /// certain-sequence baselines) and `cell_size` the raster resolution in
    /// metres.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sensors are given, `c < 1`, or `cell_size`
    /// is not strictly positive.
    pub fn build_with_threads(
        positions: &[Point],
        field: Rect,
        c: f64,
        cell_size: f64,
        threads: usize,
    ) -> Self {
        assert!(positions.len() >= 2, "need at least two sensors");
        assert!(c.is_finite() && c >= 1.0, "uncertainty constant must be ≥ 1, got {c}");
        let grid = Grid::cover(field, cell_size);

        // Rasterize: one signature per cell, row-parallel.
        let rows: Vec<u32> = (0..grid.ny()).collect();
        let row_sigs: Vec<Vec<SignatureVector>> = par_map_threads(threads, &rows, |_, &iy| {
            (0..grid.nx())
                .map(|ix| {
                    let center = grid.center(wsn_geometry::CellIndex::new(ix, iy));
                    signature_of(center, positions, c)
                })
                .collect()
        });
        Self::from_row_signatures(grid, positions, c, row_sigs)
    }

    /// Builds the map with the **adaptive double-level grid division** of
    /// the authors' companion work ([29], referenced in Section 4.3):
    /// classify a coarse lattice first, then refine only the coarse cells
    /// that sit on a face boundary (a 4-neighbor with a different
    /// signature), letting interior fine cells inherit the coarse label
    /// without touching the `O(pairs)` classifier.
    ///
    /// With `B` boundary cells out of `N` coarse cells, classification
    /// work drops from `N·r²` to `N + B·r²` (`r` = `refine` factor) —
    /// typically 3–10× on the paper's field (see the `facemap_build`
    /// Criterion bench). The price is approximation: a face thinner than a
    /// coarse cell can be missed entirely if it never crosses a coarse
    /// centre; the `adaptive` tests bound how often that happens at the
    /// paper's parameters.
    ///
    /// The resulting map's resolution equals `coarse_cell / refine`.
    ///
    /// # Panics
    ///
    /// Panics on the same inputs as [`FaceMap::build_with_threads`], or if
    /// `refine < 2`.
    pub fn build_adaptive(
        positions: &[Point],
        field: Rect,
        c: f64,
        coarse_cell: f64,
        refine: u32,
        threads: usize,
    ) -> Self {
        assert!(positions.len() >= 2, "need at least two sensors");
        assert!(c.is_finite() && c >= 1.0, "uncertainty constant must be ≥ 1, got {c}");
        assert!(refine >= 2, "refinement factor must be at least 2, got {refine}");
        let coarse = Grid::cover(field, coarse_cell);
        let fine = Grid::cover(field, coarse_cell / refine as f64);

        // Pass 1: classify the coarse lattice.
        let rows: Vec<u32> = (0..coarse.ny()).collect();
        let coarse_rows: Vec<Vec<SignatureVector>> = par_map_threads(threads, &rows, |_, &iy| {
            (0..coarse.nx())
                .map(|ix| {
                    let center = coarse.center(wsn_geometry::CellIndex::new(ix, iy));
                    signature_of(center, positions, c)
                })
                .collect()
        });
        let coarse_sig = |ix: u32, iy: u32| &coarse_rows[iy as usize][ix as usize];

        // Pass 2: mark coarse cells on a signature boundary.
        let boundary: Vec<bool> = (0..coarse.cell_count())
            .map(|lin| {
                let idx = coarse.from_linear(lin);
                coarse
                    .neighbors4(idx)
                    .any(|nb| coarse_sig(nb.ix, nb.iy) != coarse_sig(idx.ix, idx.iy))
            })
            .collect();

        // Pass 3: emit fine-cell signatures — classified inside boundary
        // cells, inherited elsewhere.
        let fine_rows_idx: Vec<u32> = (0..fine.ny()).collect();
        let fine_rows: Vec<Vec<SignatureVector>> =
            par_map_threads(threads, &fine_rows_idx, |_, &iy| {
                (0..fine.nx())
                    .map(|ix| {
                        let center = fine.center(wsn_geometry::CellIndex::new(ix, iy));
                        // The owning coarse cell (fine lattices can extend
                        // one partial column/row past the coarse one).
                        let cx = (ix / refine).min(coarse.nx() - 1);
                        let cy = (iy / refine).min(coarse.ny() - 1);
                        if boundary[coarse.linear(wsn_geometry::CellIndex::new(cx, cy))] {
                            signature_of(center, positions, c)
                        } else {
                            coarse_sig(cx, cy).clone()
                        }
                    })
                    .collect()
            });
        Self::from_row_signatures(fine, positions, c, fine_rows)
    }

    /// Groups per-cell signatures (row-major) into faces, centroids,
    /// neighbor links and the signature index.
    fn from_row_signatures(
        grid: Grid,
        positions: &[Point],
        c: f64,
        row_sigs: Vec<Vec<SignatureVector>>,
    ) -> Self {
        // Group cells by signature into faces, accumulating centroids.
        let mut by_signature: HashMap<SignatureVector, FaceId> = HashMap::new();
        let mut cell_to_face = vec![0u32; grid.cell_count()];
        let mut sums: Vec<(f64, f64, usize)> = Vec::new();
        let mut boxes: Vec<Rect> = Vec::new();
        let mut signatures: Vec<SignatureVector> = Vec::new();
        for (iy, row) in row_sigs.into_iter().enumerate() {
            for (ix, sig) in row.into_iter().enumerate() {
                let idx = wsn_geometry::CellIndex::new(ix as u32, iy as u32);
                let center = grid.center(idx);
                let next_id = FaceId(sums.len() as u32);
                let id = *by_signature.entry(sig.clone()).or_insert_with(|| {
                    sums.push((0.0, 0.0, 0));
                    boxes.push(Rect::point(center));
                    signatures.push(sig);
                    next_id
                });
                let s = &mut sums[id.index()];
                s.0 += center.x;
                s.1 += center.y;
                s.2 += 1;
                boxes[id.index()] = boxes[id.index()].union_point(center);
                cell_to_face[grid.linear(idx)] = id.0;
            }
        }
        let faces: Vec<Face> = signatures
            .into_iter()
            .enumerate()
            .map(|(i, signature)| {
                let (sx, sy, count) = sums[i];
                Face {
                    id: FaceId(i as u32),
                    signature,
                    centroid: Point::new(sx / count as f64, sy / count as f64),
                    cell_count: count,
                    bbox: boxes[i],
                }
            })
            .collect();

        // Neighbor-face links from 4-adjacency across face boundaries.
        let mut neighbor_sets: Vec<Vec<FaceId>> = vec![Vec::new(); faces.len()];
        for lin in 0..grid.cell_count() {
            let idx = grid.from_linear(lin);
            let here = cell_to_face[lin];
            // Right and up suffice: every boundary is seen from one side.
            for nb in grid.neighbors4(idx) {
                if nb.ix <= idx.ix && nb.iy <= idx.iy {
                    continue;
                }
                let there = cell_to_face[grid.linear(nb)];
                if there != here {
                    neighbor_sets[here as usize].push(FaceId(there));
                    neighbor_sets[there as usize].push(FaceId(here));
                }
            }
        }
        for set in &mut neighbor_sets {
            set.sort_unstable();
            set.dedup();
        }

        Self { grid, positions: positions.to_vec(), c, faces, cell_to_face, neighbors: neighbor_sets, by_signature }
    }

    /// The raster grid.
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Sensor positions the map was built from (ID order).
    #[inline]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// The uncertainty constant used.
    #[inline]
    pub fn uncertainty_constant(&self) -> f64 {
        self.c
    }

    /// All faces, indexed by [`FaceId`].
    #[inline]
    pub fn faces(&self) -> &[Face] {
        &self.faces
    }

    /// Number of faces.
    #[inline]
    pub fn face_count(&self) -> usize {
        self.faces.len()
    }

    /// Dimension of every signature vector in the map (`C(n,2)`).
    #[inline]
    pub fn pair_dimension(&self) -> usize {
        pair_count(self.positions.len())
    }

    /// Looks up a face.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this map.
    #[inline]
    pub fn face(&self, id: FaceId) -> &Face {
        &self.faces[id.index()]
    }

    /// The face whose raster cell contains `p`, or `None` outside the
    /// field.
    pub fn face_at(&self, p: Point) -> Option<FaceId> {
        let idx = self.grid.index_of(p)?;
        Some(FaceId(self.cell_to_face[self.grid.linear(idx)]))
    }

    /// The face with exactly this signature, if any cell produced it.
    pub fn find_by_signature(&self, sig: &SignatureVector) -> Option<FaceId> {
        self.by_signature.get(sig).copied()
    }

    /// Neighbor faces of `id` (Definition 8), sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this map.
    #[inline]
    pub fn neighbors(&self, id: FaceId) -> &[FaceId] {
        &self.neighbors[id.index()]
    }

    /// Total number of directed neighbor links (twice the undirected count).
    pub fn neighbor_link_count(&self) -> usize {
        self.neighbors.iter().map(|n| n.len()).sum()
    }

    /// The face at the centre of the field — the cold-start face for the
    /// heuristic matcher when no previous localization exists.
    pub fn center_face(&self) -> FaceId {
        self.face_at(self.grid.rect().center()).expect("field centre is always in the grid")
    }

    /// Number of *certain* faces (no `0` signature component) — the faces
    /// the certain-sequence baselines rely on; the paper's Fig. 3 shows
    /// them disappearing as `C` or node spacing grows.
    pub fn certain_face_count(&self) -> usize {
        self.faces.iter().filter(|f| f.is_certain()).count()
    }

    /// Exact signature of an arbitrary point under this map's sensors and
    /// constant (not rasterized).
    pub fn signature_at(&self, p: Point) -> SignatureVector {
        signature_of(p, &self.positions, self.c)
    }

    /// Approximate resident size of the map in bytes: signature storage
    /// (`faces × pairs`), the cell→face index, and the neighbor links —
    /// the quantities behind the paper's `O(n⁴)` storage claim
    /// (Section 4.4.2). Excludes allocator overhead and small fixed
    /// fields.
    pub fn memory_bytes(&self) -> usize {
        let signatures = self.faces.len() * self.pair_dimension() * std::mem::size_of::<i8>();
        let faces = self.faces.len() * std::mem::size_of::<Face>();
        let cells = self.cell_to_face.len() * std::mem::size_of::<u32>();
        let links = self.neighbor_link_count() * std::mem::size_of::<FaceId>();
        // The signature index holds a second copy of every signature key.
        signatures * 2 + faces + cells + links
    }
}

/// Errors from the face-map binary codec.
#[derive(Debug)]
pub enum CodecError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The bytes are not a face-map file (bad magic or version).
    BadMagic,
    /// Structurally invalid contents (truncated, inconsistent counts,
    /// out-of-range values).
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "face-map codec I/O error: {e}"),
            CodecError::BadMagic => write!(f, "not a face-map file (bad magic)"),
            CodecError::Corrupt(what) => write!(f, "corrupt face-map file: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

const CODEC_MAGIC: &[u8; 8] = b"FTTTMAP1";

fn write_u32<W: std::io::Write>(w: &mut W, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64<W: std::io::Write>(w: &mut W, v: f64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: std::io::Read>(r: &mut R) -> Result<u32, CodecError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_f64<R: std::io::Read>(r: &mut R) -> Result<f64, CodecError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_le_bytes(buf))
}

impl FaceMap {
    /// Serializes the map into a compact little-endian binary stream.
    ///
    /// This is the paper's deployment split made concrete: the face
    /// division is computed once offline (Section 4.3) and shipped to the
    /// base station / cluster heads, which only run the cheap online
    /// matching. The format is self-contained (magic + version header) and
    /// round-trips exactly — see [`FaceMap::read_from`].
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from `w`.
    pub fn write_to<W: std::io::Write>(&self, w: &mut W) -> Result<(), CodecError> {
        w.write_all(CODEC_MAGIC)?;
        // Grid as its defining parameters.
        let rect = self.grid.rect();
        for v in [rect.min.x, rect.min.y, rect.max.x, rect.max.y, self.grid.cell_size(), self.c] {
            write_f64(w, v)?;
        }
        write_u32(w, self.positions.len() as u32)?;
        for p in &self.positions {
            write_f64(w, p.x)?;
            write_f64(w, p.y)?;
        }
        write_u32(w, self.faces.len() as u32)?;
        let dim = self.pair_dimension();
        for f in &self.faces {
            debug_assert_eq!(f.signature.len(), dim);
            // Signatures as raw bytes (two's complement i8).
            let bytes: Vec<u8> =
                f.signature.components().iter().map(|&v| v as u8).collect();
            w.write_all(&bytes)?;
            for v in [f.centroid.x, f.centroid.y, f.bbox.min.x, f.bbox.min.y, f.bbox.max.x, f.bbox.max.y] {
                write_f64(w, v)?;
            }
            write_u32(w, f.cell_count as u32)?;
        }
        write_u32(w, self.cell_to_face.len() as u32)?;
        for &c in &self.cell_to_face {
            write_u32(w, c)?;
        }
        for nbs in &self.neighbors {
            write_u32(w, nbs.len() as u32)?;
            for nb in nbs {
                write_u32(w, nb.0)?;
            }
        }
        Ok(())
    }

    /// Deserializes a map written by [`FaceMap::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on I/O failure, a foreign byte stream, or a
    /// structurally inconsistent file.
    pub fn read_from<R: std::io::Read>(r: &mut R) -> Result<Self, CodecError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != CODEC_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let min_x = read_f64(r)?;
        let min_y = read_f64(r)?;
        let max_x = read_f64(r)?;
        let max_y = read_f64(r)?;
        let cell = read_f64(r)?;
        let c = read_f64(r)?;
        if !(cell > 0.0 && cell.is_finite()) || !(c >= 1.0 && c.is_finite()) {
            return Err(CodecError::Corrupt("invalid grid cell or constant"));
        }
        if !(min_x < max_x && min_y < max_y)
            || ![min_x, min_y, max_x, max_y].iter().all(|v| v.is_finite())
        {
            return Err(CodecError::Corrupt("invalid field rectangle"));
        }
        let grid = Grid::cover(Rect::new(Point::new(min_x, min_y), Point::new(max_x, max_y)), cell);

        let n_pos = read_u32(r)? as usize;
        if n_pos < 2 || n_pos > 100_000 {
            return Err(CodecError::Corrupt("implausible sensor count"));
        }
        let mut positions = Vec::with_capacity(n_pos);
        for _ in 0..n_pos {
            let x = read_f64(r)?;
            let y = read_f64(r)?;
            positions.push(Point::new(x, y));
        }
        let dim = pair_count(n_pos);

        let n_faces = read_u32(r)? as usize;
        if n_faces == 0 || n_faces > grid.cell_count() {
            return Err(CodecError::Corrupt("face count out of range"));
        }
        let mut faces = Vec::with_capacity(n_faces);
        let mut by_signature = HashMap::with_capacity(n_faces);
        for i in 0..n_faces {
            let mut sig_bytes = vec![0u8; dim];
            r.read_exact(&mut sig_bytes)?;
            let comps: Vec<i8> = sig_bytes.into_iter().map(|b| b as i8).collect();
            if comps.iter().any(|&v| !(-1..=1).contains(&v)) {
                return Err(CodecError::Corrupt("signature component out of range"));
            }
            let signature = SignatureVector::new(comps);
            let cx = read_f64(r)?;
            let cy = read_f64(r)?;
            let bx0 = read_f64(r)?;
            let by0 = read_f64(r)?;
            let bx1 = read_f64(r)?;
            let by1 = read_f64(r)?;
            if !(bx0 <= bx1 && by0 <= by1) {
                return Err(CodecError::Corrupt("invalid face bbox"));
            }
            let cell_count = read_u32(r)? as usize;
            if cell_count == 0 {
                return Err(CodecError::Corrupt("empty face"));
            }
            let id = FaceId(i as u32);
            if by_signature.insert(signature.clone(), id).is_some() {
                return Err(CodecError::Corrupt("duplicate signature"));
            }
            faces.push(Face {
                id,
                signature,
                centroid: Point::new(cx, cy),
                cell_count,
                bbox: Rect::new(Point::new(bx0, by0), Point::new(bx1, by1)),
            });
        }

        let n_cells = read_u32(r)? as usize;
        if n_cells != grid.cell_count() {
            return Err(CodecError::Corrupt("cell count does not match grid"));
        }
        let mut cell_to_face = Vec::with_capacity(n_cells);
        for _ in 0..n_cells {
            let v = read_u32(r)?;
            if v as usize >= n_faces {
                return Err(CodecError::Corrupt("cell maps to missing face"));
            }
            cell_to_face.push(v);
        }

        let mut neighbors = Vec::with_capacity(n_faces);
        for _ in 0..n_faces {
            let cnt = read_u32(r)? as usize;
            if cnt > n_faces {
                return Err(CodecError::Corrupt("neighbor count out of range"));
            }
            let mut nbs = Vec::with_capacity(cnt);
            for _ in 0..cnt {
                let v = read_u32(r)?;
                if v as usize >= n_faces {
                    return Err(CodecError::Corrupt("neighbor id out of range"));
                }
                nbs.push(FaceId(v));
            }
            neighbors.push(nbs);
        }

        Ok(Self { grid, positions, c, faces, cell_to_face, neighbors, by_signature })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Four sensors in a unit-spaced square grid, like the paper's Fig. 3.
    fn square4() -> Vec<Point> {
        vec![
            Point::new(30.0, 30.0),
            Point::new(70.0, 30.0),
            Point::new(30.0, 70.0),
            Point::new(70.0, 70.0),
        ]
    }

    fn field() -> Rect {
        Rect::square(100.0)
    }

    #[test]
    fn every_cell_is_assigned_and_faces_partition_cells() {
        let map = FaceMap::build(&square4(), field(), 1.15, 2.0);
        let total: usize = map.faces().iter().map(|f| f.cell_count).sum();
        assert_eq!(total, map.grid().cell_count());
        assert!(map.face_count() > 1);
    }

    #[test]
    fn signatures_are_unique_per_face() {
        let map = FaceMap::build(&square4(), field(), 1.15, 2.0);
        let mut seen = std::collections::HashSet::new();
        for f in map.faces() {
            assert!(seen.insert(f.signature.clone()), "duplicate signature {}", f.signature);
            assert_eq!(map.find_by_signature(&f.signature), Some(f.id));
        }
    }

    #[test]
    fn face_at_matches_cell_signature() {
        let map = FaceMap::build(&square4(), field(), 1.15, 2.0);
        for (idx, center) in map.grid().iter_centers() {
            let _ = idx;
            let id = map.face_at(center).unwrap();
            assert_eq!(map.face(id).signature, map.signature_at(center));
        }
    }

    #[test]
    fn centroids_lie_in_field() {
        let map = FaceMap::build(&square4(), field(), 1.2, 1.0);
        for f in map.faces() {
            assert!(field().contains(f.centroid), "centroid {} escapes", f.centroid);
            assert!(f.cell_count > 0);
        }
    }

    #[test]
    fn bisector_division_with_c1_gives_classic_faces() {
        // With C = 1 and 4 square-grid sensors, the four distinct bisector
        // lines through the centre divide the field into the paper's
        // Fig. 3(a) arrangement: 8 *certain* sectors. Cell centres that
        // fall exactly on the two diagonal bisectors produce a handful of
        // extra hairline "boundary" faces with a 0 component — an artifact
        // of the exact symmetric layout, not of the division.
        let map = FaceMap::build(&square4(), field(), 1.0, 0.5);
        assert_eq!(map.certain_face_count(), 8, "classic 4-node grid division");
        let boundary_cells: usize = map
            .faces()
            .iter()
            .filter(|f| !f.is_certain())
            .map(|f| f.cell_count)
            .sum();
        // Hairline faces cover a vanishing fraction of the field.
        assert!(
            (boundary_cells as f64) < 0.02 * map.grid().cell_count() as f64,
            "boundary faces too fat: {boundary_cells} cells"
        );
    }

    #[test]
    fn growing_c_kills_certain_faces() {
        let small = FaceMap::build(&square4(), field(), 1.05, 1.0);
        let large = FaceMap::build(&square4(), field(), 2.5, 1.0);
        assert!(small.certain_face_count() > 0);
        assert_eq!(large.certain_face_count(), 0, "huge C swallows all certain faces (Fig. 3c)");
        assert!(small.certain_face_count() >= large.certain_face_count());
    }

    #[test]
    fn neighbor_relation_is_symmetric_irreflexive() {
        let map = FaceMap::build(&square4(), field(), 1.15, 2.0);
        for f in map.faces() {
            for &nb in map.neighbors(f.id) {
                assert_ne!(nb, f.id, "face neighbors itself");
                assert!(map.neighbors(nb).contains(&f.id), "asymmetric link {} → {nb}", f.id);
            }
        }
    }

    /// Theorem 1: with a raster fine enough, most neighbor faces differ by
    /// exactly one signature component by one step. Raster adjacency can
    /// jump two boundaries inside one cell, so we assert the typical case
    /// dominates rather than universality.
    #[test]
    fn neighbor_faces_differ_by_about_one_component() {
        let map = FaceMap::build(&square4(), field(), 1.15, 0.5);
        let mut one_step = 0usize;
        let mut links = 0usize;
        for f in map.faces() {
            for &nb in map.neighbors(f.id) {
                let d2 = f.signature.distance_squared(&map.face(nb).signature);
                links += 1;
                if d2 <= 1.0 + 1e-12 {
                    one_step += 1;
                }
            }
        }
        assert!(links > 0);
        let frac = one_step as f64 / links as f64;
        assert!(frac > 0.7, "only {frac:.2} of links are single-step");
    }

    #[test]
    fn parallel_build_matches_serial() {
        let serial = FaceMap::build(&square4(), field(), 1.15, 1.0);
        let parallel = FaceMap::build_with_threads(&square4(), field(), 1.15, 1.0, 4);
        assert_eq!(serial.face_count(), parallel.face_count());
        for (a, b) in serial.faces().iter().zip(parallel.faces()) {
            assert_eq!(a.signature, b.signature);
            assert_eq!(a.cell_count, b.cell_count);
            assert!((a.centroid.x - b.centroid.x).abs() < 1e-12);
            assert!((a.centroid.y - b.centroid.y).abs() < 1e-12);
        }
    }

    #[test]
    fn center_face_is_valid() {
        let map = FaceMap::build(&square4(), field(), 1.15, 2.0);
        let cf = map.center_face();
        assert!(cf.index() < map.face_count());
    }

    #[test]
    fn finer_raster_refines_centroids_not_structure() {
        let coarse = FaceMap::build(&square4(), field(), 1.15, 4.0);
        let fine = FaceMap::build(&square4(), field(), 1.15, 1.0);
        // Every coarse signature still exists in the fine map.
        let mut found = 0;
        for f in coarse.faces() {
            if fine.find_by_signature(&f.signature).is_some() {
                found += 1;
            }
        }
        assert!(found as f64 >= 0.9 * coarse.face_count() as f64);
        // Fine map sees at least as many faces.
        assert!(fine.face_count() >= coarse.face_count());
    }

    #[test]
    fn codec_round_trips_exactly() {
        let map = FaceMap::build(&square4(), field(), 1.15, 2.0);
        let mut bytes = Vec::new();
        map.write_to(&mut bytes).unwrap();
        let back = FaceMap::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.face_count(), map.face_count());
        assert_eq!(back.uncertainty_constant(), map.uncertainty_constant());
        assert_eq!(back.positions(), map.positions());
        for (a, b) in map.faces().iter().zip(back.faces()) {
            assert_eq!(a.signature, b.signature);
            assert_eq!(a.cell_count, b.cell_count);
            assert_eq!(a.centroid, b.centroid);
            assert_eq!(a.bbox, b.bbox);
        }
        for f in map.faces() {
            assert_eq!(back.neighbors(f.id), map.neighbors(f.id));
            assert_eq!(back.find_by_signature(&f.signature), Some(f.id));
        }
        // And it matches identically.
        for (_, center) in map.grid().iter_centers().step_by(13) {
            assert_eq!(back.face_at(center), map.face_at(center));
        }
    }

    #[test]
    fn codec_rejects_garbage() {
        assert!(matches!(
            FaceMap::read_from(&mut &b"NOTAMAP0rest"[..]),
            Err(CodecError::BadMagic)
        ));
        // Truncated file.
        let map = FaceMap::build(&square4(), field(), 1.15, 4.0);
        let mut bytes = Vec::new();
        map.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(FaceMap::read_from(&mut bytes.as_slice()).is_err());
        // Corrupt a signature byte into an out-of-range value.
        let mut bytes = Vec::new();
        map.write_to(&mut bytes).unwrap();
        // The first signature byte sits right after the fixed header.
        let header = 8 + 6 * 8 + 4 + 4 * 16 + 4;
        bytes[header] = 7;
        assert!(matches!(
            FaceMap::read_from(&mut bytes.as_slice()),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn memory_accounting_scales_with_structure() {
        let small = FaceMap::build(&square4(), field(), 1.15, 4.0);
        let large = FaceMap::build(&square4(), field(), 1.15, 1.0);
        assert!(small.memory_bytes() > 0);
        assert!(
            large.memory_bytes() > small.memory_bytes(),
            "finer raster ⟹ more faces ⟹ more memory"
        );
        // Sanity scale: a 4-node map at 1 m cells stays well under 10 MB.
        assert!(large.memory_bytes() < 10 << 20);
    }

    #[test]
    fn adaptive_matches_full_build_structure() {
        let pos = square4();
        let full = FaceMap::build(&pos, field(), 1.15, 1.0);
        let adaptive = FaceMap::build_adaptive(&pos, field(), 1.15, 4.0, 4, 1);
        assert_eq!(adaptive.grid().cell_size(), 1.0);
        // Every full-build face of meaningful size must exist in the
        // adaptive map (hairline faces inside unrefined cells may be
        // missed — that is the documented approximation).
        let mut found = 0usize;
        let mut meaningful = 0usize;
        for f in full.faces() {
            if f.cell_count >= 4 {
                meaningful += 1;
                if adaptive.find_by_signature(&f.signature).is_some() {
                    found += 1;
                }
            }
        }
        assert!(
            found as f64 >= 0.95 * meaningful as f64,
            "adaptive found {found}/{meaningful} meaningful faces"
        );
    }

    #[test]
    fn adaptive_cells_agree_with_full_build() {
        let pos = square4();
        let full = FaceMap::build(&pos, field(), 1.15, 1.0);
        let adaptive = FaceMap::build_adaptive(&pos, field(), 1.15, 4.0, 4, 2);
        let mut agree = 0usize;
        for (_, center) in full.grid().iter_centers() {
            let a = full.face(full.face_at(center).unwrap()).signature.clone();
            let b = adaptive.face(adaptive.face_at(center).unwrap()).signature.clone();
            if a == b {
                agree += 1;
            }
        }
        let frac = agree as f64 / full.grid().cell_count() as f64;
        assert!(frac > 0.97, "only {frac:.3} of cells agree");
    }

    #[test]
    fn adaptive_partitions_all_cells() {
        let pos = square4();
        let adaptive = FaceMap::build_adaptive(&pos, field(), 1.15, 8.0, 4, 2);
        let total: usize = adaptive.faces().iter().map(|f| f.cell_count).sum();
        assert_eq!(total, adaptive.grid().cell_count());
        // Neighbor symmetry holds for the adaptive map too.
        for f in adaptive.faces() {
            for &nb in adaptive.neighbors(f.id) {
                assert!(adaptive.neighbors(nb).contains(&f.id));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn adaptive_needs_refinement() {
        let _ = FaceMap::build_adaptive(&square4(), field(), 1.15, 4.0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "at least two sensors")]
    fn single_sensor_rejected() {
        let _ = FaceMap::build(&[Point::ORIGIN], field(), 1.1, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be ≥ 1")]
    fn sub_unity_constant_rejected() {
        let _ = FaceMap::build(&square4(), field(), 0.5, 1.0);
    }
}
