//! Face-map construction by approximate grid division.
//!
//! Rasterization writes packed signature planes directly: each grid row
//! becomes a [`PackedRow`] arena (two `u64` bit-plane words per 64 pairs
//! per cell, in-place bit writes — no per-cell `Vec<i8>`), and grouping
//! into faces compares and hashes those words instead of rehashing a full
//! signature vector per cell. The per-pair Apollonius classifier state
//! (`c²`, flat node coordinates, the canonical pair list) is precomputed
//! once per build by [`RowRasterizer`]; the classifying comparisons
//! themselves are kept verbatim from [`PairRegion::classify`]
//! (`da²·c² < db²`, `da² > c²·db²`) so rasterized signatures stay
//! bit-identical to [`signature_of`] — an algebraically expanded quadratic
//! form would round differently on boundary cells.

use crate::vector::{words_for, SamplingVector, SignaturePlanes, SignatureVector};
use std::collections::HashMap;
use std::fmt;
use wsn_geometry::{CellIndex, Grid, PairRegion, Point, Rect};
use wsn_network::{pair_count, PairIter};
use wsn_parallel::par_map_threads;
use wsn_telemetry as telemetry;

/// Dense face identifier (index into [`FaceMap::faces`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaceId(pub u32);

impl FaceId {
    /// Zero-based index into the face list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// One face of the division: a maximal set of grid cells sharing a
/// signature vector.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Face {
    /// Identifier (equals the face's index).
    pub id: FaceId,
    /// The face's signature (Definition 6); unique within the map.
    pub signature: SignatureVector,
    /// Centroid of the face's cell centres (eq. 5) — the location estimate
    /// reported when the target is matched to this face.
    pub centroid: Point,
    /// Number of grid cells in the face (its area is
    /// `cell_count × cell_size²`).
    pub cell_count: usize,
    /// Axis-aligned bounding box of the face's cell centres (used for
    /// conservative geometric reachability tests, e.g. the PM baseline's
    /// max-velocity constraint).
    pub bbox: Rect,
}

impl Face {
    /// `true` if no component of the signature is `0`, i.e. the face lies
    /// outside every pair's uncertain area — a "certain" face in the sense
    /// of the sequence-based baselines (these vanish as `C` grows, paper
    /// Fig. 3(c)).
    pub fn is_certain(&self) -> bool {
        self.signature.components().iter().all(|&v| v != 0)
    }
}

/// Computes the signature vector of point `p` for sensors at `positions`
/// with uncertainty constant `c` (exact, not rasterized).
///
/// # Panics
///
/// Panics if fewer than two positions are given.
pub fn signature_of(p: Point, positions: &[Point], c: f64) -> SignatureVector {
    assert!(positions.len() >= 2, "need at least two sensors");
    let mut comps = Vec::with_capacity(pair_count(positions.len()));
    for (i, j) in PairIter::new(positions.len()) {
        comps.push(PairRegion::classify(p, positions[i], positions[j], c).signature_component());
    }
    SignatureVector::new(comps)
}

/// One rasterized grid row: per-cell signature planes stored contiguously
/// (cell `ix`'s planes occupy words `ix·W .. (ix+1)·W` of each arena).
pub(super) struct PackedRow {
    words: usize,
    plus: Vec<u64>,
    minus: Vec<u64>,
}

impl PackedRow {
    fn zeroed(nx: usize, words: usize) -> Self {
        Self {
            words,
            plus: vec![0; nx * words],
            minus: vec![0; nx * words],
        }
    }

    #[inline]
    pub(super) fn cell(&self, ix: usize) -> (&[u64], &[u64]) {
        let r = ix * self.words..(ix + 1) * self.words;
        (&self.plus[r.clone()], &self.minus[r])
    }

    #[inline]
    fn cell_mut(&mut self, ix: usize) -> (&mut [u64], &mut [u64]) {
        let r = ix * self.words..(ix + 1) * self.words;
        (&mut self.plus[r.clone()], &mut self.minus[r])
    }
}

/// Per-build classifier state hoisted out of the cells × pairs loop:
/// `c²` and flat node coordinates — everything [`PairRegion::classify`]
/// re-derives per call. Per row the `dy²` per node is fixed once; per cell
/// the `n` node distances (and their `c²` multiples) are computed once and
/// every pair classification is two branch-free comparisons. The compare
/// results go to one-byte lanes first (a pure vectorizable compare sweep
/// per node — a direct bit accumulator would serialize the whole pair loop
/// on one shift/or chain) and are packed to plane words afterwards.
pub(super) struct RowRasterizer {
    xs: Vec<f64>,
    ys: Vec<f64>,
    c2: f64,
    words: usize,
}

/// Reusable per-cell scratch: `dy²` per node (fixed along a grid row),
/// node squared distances, their `c²` multiples, and the one-byte compare
/// lanes (`words × 64` long so packing sees whole words; the tail past the
/// pair dimension is written once at allocation and never touched again).
pub(super) struct ClassifyScratch {
    dy2: Vec<f64>,
    nd2: Vec<f64>,
    nc2: Vec<f64>,
    pb: Vec<u8>,
    mb: Vec<u8>,
}

/// Packs 64 compare bytes (each `0` or `1`) into a word, least-significant
/// bit first. The multiply gathers each byte's low bit into the top byte:
/// the coefficient puts term `bᵢ·2^(56+i)` at a distinct bit position for
/// every byte (no carries), so the high byte of the product reads out the
/// eight flags at once.
#[inline]
fn pack_compare_bytes(chunk: &[u8]) -> u64 {
    const GATHER: u64 = 0x0102_0408_1020_4080;
    let mut word = 0u64;
    for (g, group) in chunk.chunks_exact(8).enumerate() {
        let lanes = u64::from_le_bytes(group.try_into().expect("chunks_exact(8)"));
        word |= (lanes.wrapping_mul(GATHER) >> 56) << (8 * g);
    }
    word
}

impl RowRasterizer {
    pub(super) fn new(positions: &[Point], c: f64) -> Self {
        Self {
            xs: positions.iter().map(|p| p.x).collect(),
            ys: positions.iter().map(|p| p.y).collect(),
            c2: c * c,
            words: words_for(pair_count(positions.len())),
        }
    }

    pub(super) fn scratch(&self) -> ClassifyScratch {
        let n = self.xs.len();
        ClassifyScratch {
            dy2: vec![0.0; n],
            nd2: vec![0.0; n],
            nc2: vec![0.0; n],
            pb: vec![0; self.words * 64],
            mb: vec![0; self.words * 64],
        }
    }

    /// Fixes the row ordinate: every cell centre of a grid row shares `y`,
    /// so `dy²` per node is computed once per row.
    pub(super) fn begin_row(&self, cy: f64, s: &mut ClassifyScratch) {
        for (k, d) in s.dy2.iter_mut().enumerate() {
            let dy = cy - self.ys[k];
            *d = dy * dy;
        }
    }

    /// Classifies the cell centre at abscissa `cx` of the current row
    /// (see [`RowRasterizer::begin_row`]) into packed plane words.
    ///
    /// Bit-identical to [`signature_of`]: `dy²` is the same product scalar
    /// classification computes, `dx² + dy²` matches
    /// `Point::distance_squared`'s operand order, and the comparisons are
    /// those of [`PairRegion::classify`] with the products `da²·c²` hoisted
    /// per node (multiplying the same two values rounds the same way
    /// wherever the expression sits).
    #[inline]
    fn classify_into(&self, cx: f64, s: &mut ClassifyScratch, plus: &mut [u64], minus: &mut [u64]) {
        let n = self.xs.len();
        for k in 0..n {
            let dx = cx - self.xs[k];
            let d2 = dx * dx + s.dy2[k];
            s.nd2[k] = d2;
            s.nc2[k] = self.c2 * d2;
        }
        let mut off = 0usize;
        for i in 0..n - 1 {
            let da2 = s.nd2[i];
            let pa = da2 * self.c2;
            let m = n - 1 - i;
            let db = &s.nd2[i + 1..n];
            let cb = &s.nc2[i + 1..n];
            let pb = &mut s.pb[off..off + m];
            for k in 0..m {
                pb[k] = u8::from(pa < db[k]);
            }
            let mb = &mut s.mb[off..off + m];
            for k in 0..m {
                mb[k] = u8::from(da2 > cb[k]);
            }
            off += m;
        }
        for (w, chunk) in s.pb.chunks_exact(64).enumerate() {
            plus[w] = pack_compare_bytes(chunk);
        }
        for (w, chunk) in s.mb.chunks_exact(64).enumerate() {
            minus[w] = pack_compare_bytes(chunk);
        }
    }

    /// Classifies only the pairs that involve the sensor at list index
    /// `p` for the cell centre at abscissa `cx` of the current row,
    /// returning the compare bits packed ascending in the canonical pair
    /// enumeration's order of those pairs — `(0,p) … (p−1,p)`, then
    /// `(p,p+1) … (p,n−1)` — bit 0 first. Only valid for `n ≤ 65` (at
    /// most 64 such pairs). Every floating-point operation matches
    /// [`RowRasterizer::classify_into`] operand for operand, so the bits
    /// equal the corresponding bits of a full classification.
    pub(super) fn classify_node(&self, cx: f64, p: usize, s: &mut ClassifyScratch) -> (u64, u64) {
        let n = self.xs.len();
        debug_assert!(n <= 65, "classify_node packs at most 64 pair bits");
        for k in 0..n {
            let dx = cx - self.xs[k];
            let d2 = dx * dx + s.dy2[k];
            s.nd2[k] = d2;
            s.nc2[k] = self.c2 * d2;
        }
        let dp2 = s.nd2[p];
        let pp = dp2 * self.c2;
        let mut fp = 0u64;
        let mut fm = 0u64;
        let mut bit = 0u32;
        for i in 0..p {
            let da2 = s.nd2[i];
            let pa = da2 * self.c2;
            fp |= u64::from(pa < dp2) << bit;
            fm |= u64::from(da2 > s.nc2[p]) << bit;
            bit += 1;
        }
        for j in p + 1..n {
            fp |= u64::from(pp < s.nd2[j]) << bit;
            fm |= u64::from(dp2 > s.nc2[j]) << bit;
            bit += 1;
        }
        (fp, fm)
    }

    /// Rasterizes grid row `iy` into a fresh packed arena.
    pub(super) fn rasterize_row(&self, grid: &Grid, iy: u32) -> PackedRow {
        let nx = grid.nx() as usize;
        let mut row = PackedRow::zeroed(nx, self.words);
        let mut s = self.scratch();
        self.begin_row(grid.center(CellIndex::new(0, iy)).y, &mut s);
        for ix in 0..nx {
            let cx = grid.center(CellIndex::new(ix as u32, iy)).x;
            let (pw, mw) = row.cell_mut(ix);
            self.classify_into(cx, &mut s, pw, mw);
        }
        row
    }
}

/// Assigns every face to a `(chunk, super-chunk)` pair of the
/// coarse-to-fine index by the grid cell of its centroid.
///
/// The grid is tiled twice with square tiles of raster cells: fine tiles
/// of `side × side` cells become chunks, coarse tiles of `4·side` become
/// super-chunks (so each super-chunk covers a 4×4 block of chunks).
/// Nearby faces have similar signatures (they differ only in the pairs
/// whose boundary separates them), so spatial tiles give the envelope
/// summaries their tightness. The fine side targets ~16 faces per chunk
/// — small enough that a surviving chunk costs only a handful of exact
/// distance evaluations — while the matcher's full bound sweep happens
/// at the ~256-face super level, keeping it a fraction of the map.
///
/// Deterministic in the map alone: centroids are exact f64 averages that
/// round-trip bit-for-bit through the codec, so an encoded/decoded map
/// reproduces the identical assignment.
fn chunk_assignment(grid: &Grid, faces: &[Face]) -> (Vec<u32>, Vec<u32>) {
    let cells = grid.cell_count() as f64;
    let per_cell = faces.len().max(1) as f64 / cells;
    let side = ((16.0 / per_cell).sqrt().round()).clamp(1.0, 4096.0) as u32;
    let super_side = side * 4;
    let cx = grid.nx().div_ceil(side);
    let sx = grid.nx().div_ceil(super_side);
    let keys = |tile: u32, stride: u32| {
        faces
            .iter()
            .map(|f| {
                // A centroid is an average of in-field cell centers, so it
                // lies in the field; `map_or` keeps this total regardless.
                grid.index_of(f.centroid)
                    .map_or(0, |cell| (cell.iy / tile) * stride + cell.ix / tile)
            })
            .collect::<Vec<u32>>()
    };
    (keys(side, cx), keys(super_side, sx))
}

/// Word mixer keying the grouping table; full planes are compared on the
/// rare collisions, so this only needs to spread well.
pub(super) fn hash_planes(plus: &[u64], minus: &[u64]) -> u64 {
    const K: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut h = 0u64;
    for &w in plus.iter().chain(minus.iter()) {
        h = (h.rotate_left(5) ^ w).wrapping_mul(K);
    }
    h
}

/// Pass-through hasher for keys already mixed by [`hash_planes`]: running
/// them through SipHash again would only cost time on the hottest grouping
/// path.
#[derive(Default)]
pub(super) struct PlaneKeyHasher(u64);

impl std::hash::Hasher for PlaneKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _: &[u8]) {
        unreachable!("plane keys hash via write_u64");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

pub(super) type PlaneKeyState = std::hash::BuildHasherDefault<PlaneKeyHasher>;

/// Signature → face index over the packed planes: a word-hash bucket map
/// (first face per hash) plus an overflow list for the astronomically rare
/// 64-bit collisions; lookups always confirm by full component comparison.
#[derive(Debug, Clone, Default)]
pub(super) struct SignatureIndex {
    pub(super) first: HashMap<u64, u32, PlaneKeyState>,
    pub(super) overflow: Vec<u32>,
}

/// Per-cell accumulators of a grouping pass: centroid sums, bounding
/// boxes, the cell→face index and boundary crossings, fed resolved face
/// ids in raster order.
///
/// Shared between the fresh build ([`Grouper`]) and the churn-repair fast
/// paths, which resolve ids without per-cell plane comparisons but must
/// reproduce the exact same accumulation — in particular the f64 centroid
/// sums, whose rounding depends on raster order.
pub(super) struct CellAccum {
    nx: usize,
    iy: usize,
    prev: Option<u32>,
    cell_to_face: Vec<u32>,
    sums: Vec<(f64, f64, usize)>,
    boxes: Vec<Rect>,
    crossings: Vec<(u32, u32)>,
}

impl CellAccum {
    pub(super) fn new(grid: &Grid, hint: usize) -> Self {
        Self {
            nx: grid.nx() as usize,
            iy: 0,
            prev: None,
            cell_to_face: vec![0u32; grid.cell_count()],
            sums: Vec::with_capacity(hint),
            boxes: Vec::with_capacity(hint),
            crossings: Vec::new(),
        }
    }

    pub(super) fn begin_row(&mut self, iy: usize) {
        self.prev = None;
        self.iy = iy;
    }

    /// Face id of the cell directly above the current one, if any.
    #[inline]
    fn above(&self, ix: usize) -> Option<u32> {
        if self.iy > 0 {
            Some(self.cell_to_face[(self.iy - 1) * self.nx + ix])
        } else {
            None
        }
    }

    /// Folds one resolved cell into the accumulators. Face ids must be
    /// numbered by first raster encounter: a brand-new id equals the
    /// current face count and allocates its accumulator slots here, which
    /// is what lets repair paths pre-resolve ids and still share this
    /// code verbatim.
    pub(super) fn record(&mut self, grid: &Grid, ix: usize, id: u32) {
        let idx = CellIndex::new(ix as u32, self.iy as u32);
        let center = grid.center(idx);
        let above = self.above(ix);
        if id as usize == self.sums.len() {
            self.sums.push((0.0, 0.0, 0));
            self.boxes.push(Rect::point(center));
        }
        debug_assert!(
            (id as usize) < self.sums.len(),
            "face ids must be dense first-encounter numbers"
        );
        let s = &mut self.sums[id as usize];
        s.0 += center.x;
        s.1 += center.y;
        s.2 += 1;
        self.boxes[id as usize] = self.boxes[id as usize].union_point(center);
        self.cell_to_face[grid.linear(idx)] = id;
        // Skip a crossing identical to the last one recorded: a straight
        // boundary repeats the same pair every cell, and the post-pass
        // dedups the rest.
        if let Some(p) = self.prev {
            if p != id && self.crossings.last() != Some(&(p, id)) {
                self.crossings.push((p, id));
            }
        }
        if let Some(a) = above {
            if a != id && self.crossings.last() != Some(&(a, id)) {
                self.crossings.push((a, id));
            }
        }
        self.prev = Some(id);
    }
}

/// Incremental face grouping over per-cell packed signatures fed in
/// raster order: resolves each cell's planes to a face id — run-length
/// fast paths against the previous cell and the cell above, then the
/// word-hash [`SignatureIndex`] with full plane comparison on collision —
/// and accumulates via [`CellAccum`]. Faces keep their first-encounter,
/// row-major numbering.
pub(super) struct Grouper {
    planes: SignaturePlanes,
    sig_index: SignatureIndex,
    accum: CellAccum,
}

impl Grouper {
    pub(super) fn new(grid: &Grid, dim: usize, hint: usize) -> Self {
        let mut planes = SignaturePlanes::new(dim);
        planes.reserve(hint);
        let mut sig_index = SignatureIndex::default();
        sig_index.first.reserve(hint);
        Self {
            planes,
            sig_index,
            accum: CellAccum::new(grid, hint),
        }
    }

    pub(super) fn begin_row(&mut self, iy: usize) {
        self.accum.begin_row(iy);
    }

    /// Resolves one cell's packed planes to a face id (creating the face
    /// on first sight) and folds the cell into the accumulators.
    pub(super) fn cell(&mut self, grid: &Grid, ix: usize, cp: &[u64], cm: &[u64]) -> u32 {
        let matches = |planes: &SignaturePlanes, f: u32| {
            planes.plus(f as usize) == cp && planes.minus(f as usize) == cm
        };
        let mut id = self.accum.prev.filter(|&f| matches(&self.planes, f));
        if id.is_none() {
            id = self.accum.above(ix).filter(|&f| matches(&self.planes, f));
        }
        let id = match id {
            Some(f) => f,
            None => match self.sig_index.first.entry(hash_planes(cp, cm)) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    let f = self.planes.push_packed(cp, cm) as u32;
                    e.insert(f);
                    f
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    let first = *e.get();
                    if matches(&self.planes, first) {
                        first
                    } else if let Some(&f) = self
                        .sig_index
                        .overflow
                        .iter()
                        .find(|&&f| matches(&self.planes, f))
                    {
                        f
                    } else {
                        let f = self.planes.push_packed(cp, cm) as u32;
                        self.sig_index.overflow.push(f);
                        f
                    }
                }
            },
        };
        self.accum.record(grid, ix, id);
        id
    }

    /// Finalizes into a [`FaceMap`] via [`assemble`].
    pub(super) fn finish(
        self,
        grid: Grid,
        positions: Vec<Point>,
        c: f64,
        prov: Provenance,
    ) -> FaceMap {
        assemble(
            self.planes,
            self.sig_index,
            self.accum,
            grid,
            positions,
            c,
            prov,
        )
    }
}

/// Provenance bookkeeping a grouped map carries: how its live sensor list
/// relates to the original deployment, and the repair epoch.
pub(super) struct Provenance {
    pub(super) deployment: Vec<Point>,
    pub(super) live: Vec<u32>,
    pub(super) pair_gather: Vec<u32>,
    pub(super) epoch: u64,
}

/// Finalizes a grouping pass into a [`FaceMap`]: shrinks the arenas,
/// materializes faces and neighbor links from the accumulated sums and
/// crossings, and builds the chunk summaries. Every construction *and*
/// repair path funnels through here, so face, centroid, neighbor and
/// chunk layout cannot drift between them.
pub(super) fn assemble(
    mut planes: SignaturePlanes,
    mut sig_index: SignatureIndex,
    accum: CellAccum,
    grid: Grid,
    positions: Vec<Point>,
    c: f64,
    prov: Provenance,
) -> FaceMap {
    let CellAccum {
        cell_to_face,
        sums,
        boxes,
        crossings,
        ..
    } = accum;
    // Return the worst-case reservation headroom: coarse maps (faces ≪
    // cells) would otherwise retain it for their whole lifetime.
    planes.shrink_to_fit();
    sig_index.first.shrink_to_fit();
    let faces: Vec<Face> = (0..planes.face_count())
        .map(|i| {
            let (sx, sy, count) = sums[i];
            Face {
                id: FaceId(i as u32),
                signature: planes.signature(i),
                centroid: Point::new(sx / count as f64, sy / count as f64),
                cell_count: count,
                bbox: boxes[i],
            }
        })
        .collect();

    // Invariant the matchers lean on (`ties[0]`, heuristic seeds): a
    // grid always has ≥ 1 cell (Grid rejects empty extents) and every
    // cell is assigned to exactly one face, so a built map carries
    // ≥ 1 face. Fail here with a clear message rather than as an
    // index-out-of-bounds deep inside a matcher.
    assert!(
        !faces.is_empty(),
        "FaceMap invariant violated: rasterization of {} cells produced zero faces",
        grid.cell_count()
    );

    // Neighbor-face links from the recorded boundary crossings. A
    // counting pass sizes each face's set exactly up front: at fine
    // resolutions nearly every cell border is a crossing, and letting
    // thousands of tiny vectors grow by doubling is measurable on the
    // churn-repair path (which re-runs this per event).
    let mut degree = vec![0u32; faces.len()];
    for &(a, b) in &crossings {
        degree[a as usize] += 1;
        degree[b as usize] += 1;
    }
    let mut neighbor_sets: Vec<Vec<FaceId>> = degree
        .into_iter()
        .map(|d| Vec::with_capacity(d as usize))
        .collect();
    for (a, b) in crossings {
        neighbor_sets[a as usize].push(FaceId(b));
        neighbor_sets[b as usize].push(FaceId(a));
    }
    for set in &mut neighbor_sets {
        set.sort_unstable();
        set.dedup();
    }

    let (chunk_of, super_of) = chunk_assignment(&grid, &faces);
    planes.build_chunks(&chunk_of, &super_of);

    FaceMap {
        grid,
        positions,
        c,
        faces,
        cell_to_face,
        neighbors: neighbor_sets,
        sig_index,
        planes,
        epoch: prov.epoch,
        deployment: prov.deployment,
        live: prov.live,
        pair_gather: prov.pair_gather,
    }
}

/// The offline face division of a monitored field.
///
/// Built once from a deployment, then kept **alive** under topology
/// churn: [`FaceMap::kill_node`] / [`FaceMap::revive_node`] (see the
/// [`repair`](super::repair) module) patch the division in place when a
/// sensor dies or comes back, bumping [`FaceMap::epoch`]. `positions`
/// always holds the *live* sensors; `deployment` remembers the original
/// roster so a node can return, and `pair_gather` maps the deployment's
/// pair enumeration onto the live one.
#[derive(Debug, Clone)]
pub struct FaceMap {
    pub(super) grid: Grid,
    pub(super) positions: Vec<Point>,
    pub(super) c: f64,
    pub(super) faces: Vec<Face>,
    pub(super) cell_to_face: Vec<u32>,
    pub(super) neighbors: Vec<Vec<FaceId>>,
    pub(super) sig_index: SignatureIndex,
    pub(super) planes: SignaturePlanes,
    /// Repair generation: 0 at build, +1 per churn repair.
    pub(super) epoch: u64,
    /// The full original deployment (ID order), dead sensors included.
    pub(super) deployment: Vec<Point>,
    /// Sorted deployment indices of the live sensors (`positions[i]` is
    /// `deployment[live[i]]`).
    pub(super) live: Vec<u32>,
    /// Deployment pair index per live pair index; empty ⇔ identity (all
    /// deployment nodes live).
    pub(super) pair_gather: Vec<u32>,
}

impl FaceMap {
    /// Builds the face map serially. See [`FaceMap::build_with_threads`].
    pub fn build(positions: &[Point], field: Rect, c: f64, cell_size: f64) -> Self {
        Self::build_with_threads(positions, field, c, cell_size, 1)
    }

    /// Builds the face map, rasterizing rows of cells across `threads`
    /// workers.
    ///
    /// `positions` are the sensor locations (ID order), `field` the
    /// monitored rectangle, `c ≥ 1` the uncertainty constant (`c = 1`
    /// degenerates to the perpendicular-bisector division used by the
    /// certain-sequence baselines) and `cell_size` the raster resolution in
    /// metres.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sensors are given, `c < 1`, or `cell_size`
    /// is not strictly positive.
    pub fn build_with_threads(
        positions: &[Point],
        field: Rect,
        c: f64,
        cell_size: f64,
        threads: usize,
    ) -> Self {
        assert!(positions.len() >= 2, "need at least two sensors");
        assert!(
            c.is_finite() && c >= 1.0,
            "uncertainty constant must be ≥ 1, got {c}"
        );
        let _total = telemetry::span("fttt.build.total");
        let grid = Grid::cover(field, cell_size);

        // Rasterize: one packed signature per cell, row-parallel.
        let raster = RowRasterizer::new(positions, c);
        let rows: Vec<u32> = (0..grid.ny()).collect();
        let packed: Vec<PackedRow> = {
            let _span = telemetry::span("fttt.build.rasterize");
            par_map_threads(threads, &rows, |_, &iy| raster.rasterize_row(&grid, iy))
        };
        Self::from_packed_rows(grid, positions, c, packed)
    }

    /// Builds the map with the **adaptive double-level grid division** of
    /// the authors' companion work ([29], referenced in Section 4.3):
    /// classify a coarse lattice first, then refine only the coarse cells
    /// that sit on a face boundary (a 4-neighbor with a different
    /// signature), letting interior fine cells inherit the coarse label
    /// without touching the `O(pairs)` classifier.
    ///
    /// With `B` boundary cells out of `N` coarse cells, classification
    /// work drops from `N·r²` to `N + B·r²` (`r` = `refine` factor) —
    /// typically 3–10× on the paper's field (see the `facemap_build`
    /// Criterion bench). The price is approximation: a face thinner than a
    /// coarse cell can be missed entirely if it never crosses a coarse
    /// centre; the `adaptive` tests bound how often that happens at the
    /// paper's parameters.
    ///
    /// The resulting map's resolution equals `coarse_cell / refine`.
    ///
    /// # Panics
    ///
    /// Panics on the same inputs as [`FaceMap::build_with_threads`], or if
    /// `refine < 2`.
    pub fn build_adaptive(
        positions: &[Point],
        field: Rect,
        c: f64,
        coarse_cell: f64,
        refine: u32,
        threads: usize,
    ) -> Self {
        assert!(positions.len() >= 2, "need at least two sensors");
        assert!(
            c.is_finite() && c >= 1.0,
            "uncertainty constant must be ≥ 1, got {c}"
        );
        assert!(
            refine >= 2,
            "refinement factor must be at least 2, got {refine}"
        );
        let _total = telemetry::span("fttt.build.total");
        let coarse = Grid::cover(field, coarse_cell);
        let fine = Grid::cover(field, coarse_cell / refine as f64);
        let raster = RowRasterizer::new(positions, c);

        // Pass 1: classify the coarse lattice.
        let rasterize_span = telemetry::span("fttt.build.rasterize");
        let rows: Vec<u32> = (0..coarse.ny()).collect();
        let coarse_rows: Vec<PackedRow> =
            par_map_threads(threads, &rows, |_, &iy| raster.rasterize_row(&coarse, iy));

        // Pass 2: mark coarse cells on a signature boundary (packed word
        // comparison — plane equality is signature equality).
        let boundary: Vec<bool> = (0..coarse.cell_count())
            .map(|lin| {
                let idx = coarse.from_linear(lin);
                let here = coarse_rows[idx.iy as usize].cell(idx.ix as usize);
                coarse
                    .neighbors4(idx)
                    .any(|nb| coarse_rows[nb.iy as usize].cell(nb.ix as usize) != here)
            })
            .collect();

        // Pass 3: emit fine-cell signatures — classified inside boundary
        // cells, inherited (a word copy) elsewhere.
        let fine_rows_idx: Vec<u32> = (0..fine.ny()).collect();
        let fine_rows: Vec<PackedRow> = par_map_threads(threads, &fine_rows_idx, |_, &iy| {
            let nx = fine.nx() as usize;
            let mut row = PackedRow::zeroed(nx, raster.words);
            let mut s = raster.scratch();
            raster.begin_row(fine.center(CellIndex::new(0, iy)).y, &mut s);
            // The owning coarse cell (fine lattices can extend one partial
            // column/row past the coarse one).
            let cy = (iy / refine).min(coarse.ny() - 1);
            for ix in 0..nx {
                let cx = (ix as u32 / refine).min(coarse.nx() - 1);
                let (pw, mw) = row.cell_mut(ix);
                if boundary[coarse.linear(CellIndex::new(cx, cy))] {
                    let center_x = fine.center(CellIndex::new(ix as u32, iy)).x;
                    raster.classify_into(center_x, &mut s, pw, mw);
                } else {
                    let (cp, cm) = coarse_rows[cy as usize].cell(cx as usize);
                    pw.copy_from_slice(cp);
                    mw.copy_from_slice(cm);
                }
            }
            row
        });
        drop(rasterize_span);
        Self::from_packed_rows(fine, positions, c, fine_rows)
    }

    /// Groups per-cell packed signatures (row-major) into faces,
    /// centroids, neighbor links, the signature index and the plane arena
    /// — a thin raster loop over the shared [`Grouper`].
    fn from_packed_rows(grid: Grid, positions: &[Point], c: f64, rows: Vec<PackedRow>) -> Self {
        let _span = telemetry::span("fttt.build.group");
        let dim = pair_count(positions.len());
        let nx = grid.nx() as usize;
        // At the paper's densities most cells found a new face, so size
        // for the worst case once instead of paying growth reallocations.
        let mut grouper = Grouper::new(&grid, dim, grid.cell_count());
        for (iy, row) in rows.iter().enumerate() {
            grouper.begin_row(iy);
            for ix in 0..nx {
                let (cp, cm) = row.cell(ix);
                grouper.cell(&grid, ix, cp, cm);
            }
        }
        let live = (0..positions.len() as u32).collect();
        let prov = Provenance {
            deployment: positions.to_vec(),
            live,
            pair_gather: Vec::new(),
            epoch: 0,
        };
        let map = grouper.finish(grid, positions.to_vec(), c, prov);
        if telemetry::enabled() {
            telemetry::counter_add("fttt.build.calls", 1);
            telemetry::counter_add("fttt.build.faces", map.faces.len() as u64);
            telemetry::counter_add("fttt.build.cells", map.grid.cell_count() as u64);
        }
        map
    }

    /// The raster grid.
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Positions of the currently *live* sensors (ascending deployment
    /// order). Equal to [`FaceMap::deployment`] until a repair removes a
    /// node.
    #[inline]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// The full original deployment (ID order), dead sensors included.
    #[inline]
    pub fn deployment(&self) -> &[Point] {
        &self.deployment
    }

    /// Repair epoch: `0` for a freshly built (or decoded) map, bumped by
    /// one on every churn repair — death, birth, or full rebuild alike —
    /// so sessions and replay digests can tell map generations apart.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sorted deployment indices of the currently live sensors.
    #[inline]
    pub fn live_nodes(&self) -> &[u32] {
        &self.live
    }

    /// `true` if deployment node `node` is alive in this map. A map that
    /// never lost a node reports every index live.
    #[inline]
    pub fn is_node_live(&self, node: usize) -> bool {
        self.pair_gather.is_empty() || self.live.binary_search(&(node as u32)).is_ok()
    }

    /// Projects a sampling vector indexed by the *deployment's* pair
    /// enumeration down to this map's live-pair space, dropping the
    /// components that mention a dead sensor. A move when every
    /// deployment node is live, and a pass-through when the vector
    /// already has the map's own dimension.
    ///
    /// # Panics
    ///
    /// Panics if `v` matches neither the deployment's pair count nor the
    /// map's pair dimension.
    pub fn project_sampling_vector(&self, v: SamplingVector) -> SamplingVector {
        if self.pair_gather.is_empty() || v.len() == self.pair_dimension() {
            return v;
        }
        assert_eq!(
            v.len(),
            pair_count(self.deployment.len()),
            "sampling vector matches neither the deployment nor the map pairs"
        );
        let comps = v.components();
        SamplingVector::new(
            self.pair_gather
                .iter()
                .map(|&i| comps[i as usize])
                .collect(),
        )
    }

    /// The uncertainty constant used.
    #[inline]
    pub fn uncertainty_constant(&self) -> f64 {
        self.c
    }

    /// All faces, indexed by [`FaceId`].
    #[inline]
    pub fn faces(&self) -> &[Face] {
        &self.faces
    }

    /// Number of faces.
    #[inline]
    pub fn face_count(&self) -> usize {
        self.faces.len()
    }

    /// Dimension of every signature vector in the map (`C(n,2)`).
    #[inline]
    pub fn pair_dimension(&self) -> usize {
        pair_count(self.positions.len())
    }

    /// Looks up a face.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this map.
    #[inline]
    pub fn face(&self, id: FaceId) -> &Face {
        &self.faces[id.index()]
    }

    /// The face whose raster cell contains `p`, or `None` outside the
    /// field.
    pub fn face_at(&self, p: Point) -> Option<FaceId> {
        let idx = self.grid.index_of(p)?;
        Some(FaceId(self.cell_to_face[self.grid.linear(idx)]))
    }

    /// The face with exactly this signature, if any cell produced it.
    pub fn find_by_signature(&self, sig: &SignatureVector) -> Option<FaceId> {
        if sig.len() != self.pair_dimension() {
            return None;
        }
        let words = words_for(sig.len());
        let mut plus = vec![0u64; words];
        let mut minus = vec![0u64; words];
        for (i, &c) in sig.components().iter().enumerate() {
            let (w, b) = (i / 64, i % 64);
            plus[w] |= u64::from(c > 0) << b;
            minus[w] |= u64::from(c < 0) << b;
        }
        // Full-component comparison, not just plane words: out-of-range
        // components in a foreign signature pack to the same planes as 0.
        let matches = |f: u32| self.planes.components(f as usize) == sig.components();
        let first = *self.sig_index.first.get(&hash_planes(&plus, &minus))?;
        if matches(first) {
            return Some(FaceId(first));
        }
        self.sig_index
            .overflow
            .iter()
            .copied()
            .find(|&f| matches(f))
            .map(FaceId)
    }

    /// Neighbor faces of `id` (Definition 8), sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this map.
    #[inline]
    pub fn neighbors(&self, id: FaceId) -> &[FaceId] {
        &self.neighbors[id.index()]
    }

    /// Total number of directed neighbor links (twice the undirected count).
    pub fn neighbor_link_count(&self) -> usize {
        self.neighbors.iter().map(|n| n.len()).sum()
    }

    /// The face at the centre of the field — the cold-start face for the
    /// heuristic matcher when no previous localization exists.
    pub fn center_face(&self) -> FaceId {
        self.face_at(self.grid.rect().center())
            .expect("field centre is always in the grid")
    }

    /// Number of *certain* faces (no `0` signature component) — the faces
    /// the certain-sequence baselines rely on; the paper's Fig. 3 shows
    /// them disappearing as `C` or node spacing grows.
    pub fn certain_face_count(&self) -> usize {
        self.faces.iter().filter(|f| f.is_certain()).count()
    }

    /// Exact signature of an arbitrary point under this map's sensors and
    /// constant (not rasterized).
    pub fn signature_at(&self, p: Point) -> SignatureVector {
        signature_of(p, &self.positions, self.c)
    }

    /// Packed signature planes of every face, indexed by [`FaceId`] — the
    /// data structure behind the branch-free matching kernels.
    #[inline]
    pub fn planes(&self) -> &SignaturePlanes {
        &self.planes
    }

    /// Approximate resident size of the map in bytes: signature storage
    /// (`faces × pairs`), the packed plane arena, the cell→face index,
    /// the neighbor links and the churn bookkeeping (deployment roster,
    /// live list, pair gather) — the quantities behind the paper's
    /// `O(n⁴)` storage claim (Section 4.4.2). Excludes allocator overhead
    /// and small fixed fields.
    ///
    /// The accounting is length-based (plus the plane arena, which every
    /// construction and repair path shrinks to fit before handing the map
    /// back), so the reported bytes stay exact across repairs: killing
    /// and reviving the same node returns the map to the original value.
    pub fn memory_bytes(&self) -> usize {
        let signatures = self.faces.len() * self.pair_dimension() * std::mem::size_of::<i8>();
        let faces = self.faces.len() * std::mem::size_of::<Face>();
        let cells = self.cell_to_face.len() * std::mem::size_of::<u32>();
        let links = self.neighbor_link_count() * std::mem::size_of::<FaceId>();
        // The signature index stores one hash + id per face, not a second
        // copy of the signatures.
        let index = self.faces.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>());
        let topology = self.deployment.len() * std::mem::size_of::<Point>()
            + (self.live.len() + self.pair_gather.len()) * std::mem::size_of::<u32>();
        signatures + index + faces + cells + links + topology + self.planes.memory_bytes()
    }

    /// Drops any slack capacity left by construction or repair. Both
    /// paths already hand back shrunk arenas, so this is normally a
    /// no-op; it exists so callers holding a long-lived map across many
    /// repairs can enforce the [`FaceMap::memory_bytes`] accounting
    /// invariant explicitly.
    pub fn shrink_to_fit(&mut self) {
        self.positions.shrink_to_fit();
        self.deployment.shrink_to_fit();
        self.live.shrink_to_fit();
        self.pair_gather.shrink_to_fit();
        self.faces.shrink_to_fit();
        self.cell_to_face.shrink_to_fit();
        for set in &mut self.neighbors {
            set.shrink_to_fit();
        }
        self.neighbors.shrink_to_fit();
        self.sig_index.first.shrink_to_fit();
        self.sig_index.overflow.shrink_to_fit();
        self.planes.shrink_to_fit();
    }
}

/// Errors from the face-map binary codec.
#[derive(Debug)]
pub enum CodecError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The bytes are not a face-map file (bad magic or version).
    BadMagic,
    /// Structurally invalid contents (truncated, inconsistent counts,
    /// out-of-range values).
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "face-map codec I/O error: {e}"),
            CodecError::BadMagic => write!(f, "not a face-map file (bad magic)"),
            CodecError::Corrupt(what) => write!(f, "corrupt face-map file: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

const CODEC_MAGIC: &[u8; 8] = b"FTTTMAP1";

fn write_u32<W: std::io::Write>(w: &mut W, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64<W: std::io::Write>(w: &mut W, v: f64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: std::io::Read>(r: &mut R) -> Result<u32, CodecError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_f64<R: std::io::Read>(r: &mut R) -> Result<f64, CodecError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_le_bytes(buf))
}

impl FaceMap {
    /// Serializes the map into a compact little-endian binary stream.
    ///
    /// This is the paper's deployment split made concrete: the face
    /// division is computed once offline (Section 4.3) and shipped to the
    /// base station / cluster heads, which only run the cheap online
    /// matching. The format is self-contained (magic + version header) and
    /// round-trips exactly — see [`FaceMap::read_from`].
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from `w`.
    pub fn write_to<W: std::io::Write>(&self, w: &mut W) -> Result<(), CodecError> {
        w.write_all(CODEC_MAGIC)?;
        // Grid as its defining parameters.
        let rect = self.grid.rect();
        for v in [
            rect.min.x,
            rect.min.y,
            rect.max.x,
            rect.max.y,
            self.grid.cell_size(),
            self.c,
        ] {
            write_f64(w, v)?;
        }
        write_u32(w, self.positions.len() as u32)?;
        for p in &self.positions {
            write_f64(w, p.x)?;
            write_f64(w, p.y)?;
        }
        write_u32(w, self.faces.len() as u32)?;
        let dim = self.pair_dimension();
        for f in &self.faces {
            debug_assert_eq!(f.signature.len(), dim);
            // Signatures as raw bytes (two's complement i8).
            let bytes: Vec<u8> = f.signature.components().iter().map(|&v| v as u8).collect();
            w.write_all(&bytes)?;
            for v in [
                f.centroid.x,
                f.centroid.y,
                f.bbox.min.x,
                f.bbox.min.y,
                f.bbox.max.x,
                f.bbox.max.y,
            ] {
                write_f64(w, v)?;
            }
            write_u32(w, f.cell_count as u32)?;
        }
        write_u32(w, self.cell_to_face.len() as u32)?;
        for &c in &self.cell_to_face {
            write_u32(w, c)?;
        }
        for nbs in &self.neighbors {
            write_u32(w, nbs.len() as u32)?;
            for nb in nbs {
                write_u32(w, nb.0)?;
            }
        }
        Ok(())
    }

    /// Deserializes a map written by [`FaceMap::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on I/O failure, a foreign byte stream, or a
    /// structurally inconsistent file.
    pub fn read_from<R: std::io::Read>(r: &mut R) -> Result<Self, CodecError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != CODEC_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let min_x = read_f64(r)?;
        let min_y = read_f64(r)?;
        let max_x = read_f64(r)?;
        let max_y = read_f64(r)?;
        let cell = read_f64(r)?;
        let c = read_f64(r)?;
        if !(cell > 0.0 && cell.is_finite() && c >= 1.0 && c.is_finite()) {
            return Err(CodecError::Corrupt("invalid grid cell or constant"));
        }
        if !(min_x < max_x
            && min_y < max_y
            && [min_x, min_y, max_x, max_y].iter().all(|v| v.is_finite()))
        {
            return Err(CodecError::Corrupt("invalid field rectangle"));
        }
        let grid = Grid::cover(
            Rect::new(Point::new(min_x, min_y), Point::new(max_x, max_y)),
            cell,
        );

        let n_pos = read_u32(r)? as usize;
        if !(2..=100_000).contains(&n_pos) {
            return Err(CodecError::Corrupt("implausible sensor count"));
        }
        let mut positions = Vec::with_capacity(n_pos);
        for _ in 0..n_pos {
            let x = read_f64(r)?;
            let y = read_f64(r)?;
            positions.push(Point::new(x, y));
        }
        let dim = pair_count(n_pos);

        let n_faces = read_u32(r)? as usize;
        if n_faces == 0 || n_faces > grid.cell_count() {
            return Err(CodecError::Corrupt("face count out of range"));
        }
        let mut faces = Vec::with_capacity(n_faces);
        for i in 0..n_faces {
            let mut sig_bytes = vec![0u8; dim];
            r.read_exact(&mut sig_bytes)?;
            let comps: Vec<i8> = sig_bytes.into_iter().map(|b| b as i8).collect();
            if comps.iter().any(|&v| !(-1..=1).contains(&v)) {
                return Err(CodecError::Corrupt("signature component out of range"));
            }
            let signature = SignatureVector::new(comps);
            let cx = read_f64(r)?;
            let cy = read_f64(r)?;
            let bx0 = read_f64(r)?;
            let by0 = read_f64(r)?;
            let bx1 = read_f64(r)?;
            let by1 = read_f64(r)?;
            if !(bx0 <= bx1 && by0 <= by1) {
                return Err(CodecError::Corrupt("invalid face bbox"));
            }
            let cell_count = read_u32(r)? as usize;
            if cell_count == 0 {
                return Err(CodecError::Corrupt("empty face"));
            }
            faces.push(Face {
                id: FaceId(i as u32),
                signature,
                centroid: Point::new(cx, cy),
                cell_count,
                bbox: Rect::new(Point::new(bx0, by0), Point::new(bx1, by1)),
            });
        }

        let n_cells = read_u32(r)? as usize;
        if n_cells != grid.cell_count() {
            return Err(CodecError::Corrupt("cell count does not match grid"));
        }
        let mut cell_to_face = Vec::with_capacity(n_cells);
        for _ in 0..n_cells {
            let v = read_u32(r)?;
            if v as usize >= n_faces {
                return Err(CodecError::Corrupt("cell maps to missing face"));
            }
            cell_to_face.push(v);
        }

        let mut neighbors = Vec::with_capacity(n_faces);
        for _ in 0..n_faces {
            let cnt = read_u32(r)? as usize;
            if cnt > n_faces {
                return Err(CodecError::Corrupt("neighbor count out of range"));
            }
            let mut nbs = Vec::with_capacity(cnt);
            for _ in 0..cnt {
                let v = read_u32(r)?;
                if v as usize >= n_faces {
                    return Err(CodecError::Corrupt("neighbor id out of range"));
                }
                nbs.push(FaceId(v));
            }
            neighbors.push(nbs);
        }

        let mut planes = SignaturePlanes::from_signatures(dim, faces.iter().map(|f| &f.signature));
        let mut sig_index = SignatureIndex::default();
        for f in 0..n_faces as u32 {
            let same = |g: u32| planes.components(g as usize) == planes.components(f as usize);
            match sig_index.first.entry(hash_planes(
                planes.plus(f as usize),
                planes.minus(f as usize),
            )) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(f);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    if same(*e.get()) || sig_index.overflow.iter().any(|&g| same(g)) {
                        return Err(CodecError::Corrupt("duplicate signature"));
                    }
                    sig_index.overflow.push(f);
                }
            }
        }
        // Centroids round-trip exactly through the codec (written as raw
        // f64 bits), so a decoded map rebuilds the *same* chunk layout as
        // the one it was encoded from — `SignaturePlanes` stays `Eq`.
        let (chunk_of, super_of) = chunk_assignment(&grid, &faces);
        planes.build_chunks(&chunk_of, &super_of);
        let live = (0..positions.len() as u32).collect();
        Ok(Self {
            grid,
            deployment: positions.clone(),
            positions,
            c,
            faces,
            cell_to_face,
            neighbors,
            sig_index,
            planes,
            epoch: 0,
            live,
            pair_gather: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Four sensors in a unit-spaced square grid, like the paper's Fig. 3.
    fn square4() -> Vec<Point> {
        vec![
            Point::new(30.0, 30.0),
            Point::new(70.0, 30.0),
            Point::new(30.0, 70.0),
            Point::new(70.0, 70.0),
        ]
    }

    fn field() -> Rect {
        Rect::square(100.0)
    }

    #[test]
    fn every_cell_is_assigned_and_faces_partition_cells() {
        let map = FaceMap::build(&square4(), field(), 1.15, 2.0);
        let total: usize = map.faces().iter().map(|f| f.cell_count).sum();
        assert_eq!(total, map.grid().cell_count());
        assert!(map.face_count() > 1);
    }

    #[test]
    fn signatures_are_unique_per_face() {
        let map = FaceMap::build(&square4(), field(), 1.15, 2.0);
        let mut seen = std::collections::HashSet::new();
        for f in map.faces() {
            assert!(
                seen.insert(f.signature.clone()),
                "duplicate signature {}",
                f.signature
            );
            assert_eq!(map.find_by_signature(&f.signature), Some(f.id));
        }
    }

    #[test]
    fn face_at_matches_cell_signature() {
        let map = FaceMap::build(&square4(), field(), 1.15, 2.0);
        for (idx, center) in map.grid().iter_centers() {
            let _ = idx;
            let id = map.face_at(center).unwrap();
            assert_eq!(map.face(id).signature, map.signature_at(center));
        }
    }

    #[test]
    fn centroids_lie_in_field() {
        let map = FaceMap::build(&square4(), field(), 1.2, 1.0);
        for f in map.faces() {
            assert!(
                field().contains(f.centroid),
                "centroid {} escapes",
                f.centroid
            );
            assert!(f.cell_count > 0);
        }
    }

    #[test]
    fn bisector_division_with_c1_gives_classic_faces() {
        // With C = 1 and 4 square-grid sensors, the four distinct bisector
        // lines through the centre divide the field into the paper's
        // Fig. 3(a) arrangement: 8 *certain* sectors. Cell centres that
        // fall exactly on the two diagonal bisectors produce a handful of
        // extra hairline "boundary" faces with a 0 component — an artifact
        // of the exact symmetric layout, not of the division.
        let map = FaceMap::build(&square4(), field(), 1.0, 0.5);
        assert_eq!(map.certain_face_count(), 8, "classic 4-node grid division");
        let boundary_cells: usize = map
            .faces()
            .iter()
            .filter(|f| !f.is_certain())
            .map(|f| f.cell_count)
            .sum();
        // Hairline faces cover a vanishing fraction of the field.
        assert!(
            (boundary_cells as f64) < 0.02 * map.grid().cell_count() as f64,
            "boundary faces too fat: {boundary_cells} cells"
        );
    }

    #[test]
    fn growing_c_kills_certain_faces() {
        let small = FaceMap::build(&square4(), field(), 1.05, 1.0);
        let large = FaceMap::build(&square4(), field(), 2.5, 1.0);
        assert!(small.certain_face_count() > 0);
        assert_eq!(
            large.certain_face_count(),
            0,
            "huge C swallows all certain faces (Fig. 3c)"
        );
        assert!(small.certain_face_count() >= large.certain_face_count());
    }

    #[test]
    fn neighbor_relation_is_symmetric_irreflexive() {
        let map = FaceMap::build(&square4(), field(), 1.15, 2.0);
        for f in map.faces() {
            for &nb in map.neighbors(f.id) {
                assert_ne!(nb, f.id, "face neighbors itself");
                assert!(
                    map.neighbors(nb).contains(&f.id),
                    "asymmetric link {} → {nb}",
                    f.id
                );
            }
        }
    }

    /// Theorem 1: with a raster fine enough, most neighbor faces differ by
    /// exactly one signature component by one step. Raster adjacency can
    /// jump two boundaries inside one cell, so we assert the typical case
    /// dominates rather than universality.
    #[test]
    fn neighbor_faces_differ_by_about_one_component() {
        let map = FaceMap::build(&square4(), field(), 1.15, 0.5);
        let mut one_step = 0usize;
        let mut links = 0usize;
        for f in map.faces() {
            for &nb in map.neighbors(f.id) {
                let d2 = f.signature.distance_squared(&map.face(nb).signature);
                links += 1;
                if d2 <= 1.0 + 1e-12 {
                    one_step += 1;
                }
            }
        }
        assert!(links > 0);
        let frac = one_step as f64 / links as f64;
        assert!(frac > 0.7, "only {frac:.2} of links are single-step");
    }

    #[test]
    fn parallel_build_matches_serial() {
        let serial = FaceMap::build(&square4(), field(), 1.15, 1.0);
        let parallel = FaceMap::build_with_threads(&square4(), field(), 1.15, 1.0, 4);
        assert_eq!(serial.face_count(), parallel.face_count());
        for (a, b) in serial.faces().iter().zip(parallel.faces()) {
            assert_eq!(a.signature, b.signature);
            assert_eq!(a.cell_count, b.cell_count);
            assert!((a.centroid.x - b.centroid.x).abs() < 1e-12);
            assert!((a.centroid.y - b.centroid.y).abs() < 1e-12);
        }
    }

    #[test]
    fn center_face_is_valid() {
        let map = FaceMap::build(&square4(), field(), 1.15, 2.0);
        let cf = map.center_face();
        assert!(cf.index() < map.face_count());
    }

    #[test]
    fn finer_raster_refines_centroids_not_structure() {
        let coarse = FaceMap::build(&square4(), field(), 1.15, 4.0);
        let fine = FaceMap::build(&square4(), field(), 1.15, 1.0);
        // Every coarse signature still exists in the fine map.
        let mut found = 0;
        for f in coarse.faces() {
            if fine.find_by_signature(&f.signature).is_some() {
                found += 1;
            }
        }
        assert!(found as f64 >= 0.9 * coarse.face_count() as f64);
        // Fine map sees at least as many faces.
        assert!(fine.face_count() >= coarse.face_count());
    }

    #[test]
    fn codec_round_trips_exactly() {
        let map = FaceMap::build(&square4(), field(), 1.15, 2.0);
        let mut bytes = Vec::new();
        map.write_to(&mut bytes).unwrap();
        let back = FaceMap::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.face_count(), map.face_count());
        assert_eq!(back.uncertainty_constant(), map.uncertainty_constant());
        assert_eq!(back.positions(), map.positions());
        for (a, b) in map.faces().iter().zip(back.faces()) {
            assert_eq!(a.signature, b.signature);
            assert_eq!(a.cell_count, b.cell_count);
            assert_eq!(a.centroid, b.centroid);
            assert_eq!(a.bbox, b.bbox);
        }
        for f in map.faces() {
            assert_eq!(back.neighbors(f.id), map.neighbors(f.id));
            assert_eq!(back.find_by_signature(&f.signature), Some(f.id));
        }
        // And it matches identically.
        for (_, center) in map.grid().iter_centers().step_by(13) {
            assert_eq!(back.face_at(center), map.face_at(center));
        }
    }

    #[test]
    fn codec_rejects_garbage() {
        assert!(matches!(
            FaceMap::read_from(&mut &b"NOTAMAP0rest"[..]),
            Err(CodecError::BadMagic)
        ));
        // Truncated file.
        let map = FaceMap::build(&square4(), field(), 1.15, 4.0);
        let mut bytes = Vec::new();
        map.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(FaceMap::read_from(&mut bytes.as_slice()).is_err());
        // Corrupt a signature byte into an out-of-range value.
        let mut bytes = Vec::new();
        map.write_to(&mut bytes).unwrap();
        // The first signature byte sits right after the fixed header.
        let header = 8 + 6 * 8 + 4 + 4 * 16 + 4;
        bytes[header] = 7;
        assert!(matches!(
            FaceMap::read_from(&mut bytes.as_slice()),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn memory_accounting_scales_with_structure() {
        let small = FaceMap::build(&square4(), field(), 1.15, 4.0);
        let large = FaceMap::build(&square4(), field(), 1.15, 1.0);
        assert!(small.memory_bytes() > 0);
        assert!(
            large.memory_bytes() > small.memory_bytes(),
            "finer raster ⟹ more faces ⟹ more memory"
        );
        // Sanity scale: a 4-node map at 1 m cells stays well under 10 MB.
        assert!(large.memory_bytes() < 10 << 20);
    }

    #[test]
    fn adaptive_matches_full_build_structure() {
        let pos = square4();
        let full = FaceMap::build(&pos, field(), 1.15, 1.0);
        let adaptive = FaceMap::build_adaptive(&pos, field(), 1.15, 4.0, 4, 1);
        assert_eq!(adaptive.grid().cell_size(), 1.0);
        // Every full-build face of meaningful size must exist in the
        // adaptive map (hairline faces inside unrefined cells may be
        // missed — that is the documented approximation).
        let mut found = 0usize;
        let mut meaningful = 0usize;
        for f in full.faces() {
            if f.cell_count >= 4 {
                meaningful += 1;
                if adaptive.find_by_signature(&f.signature).is_some() {
                    found += 1;
                }
            }
        }
        assert!(
            found as f64 >= 0.95 * meaningful as f64,
            "adaptive found {found}/{meaningful} meaningful faces"
        );
    }

    #[test]
    fn adaptive_cells_agree_with_full_build() {
        let pos = square4();
        let full = FaceMap::build(&pos, field(), 1.15, 1.0);
        let adaptive = FaceMap::build_adaptive(&pos, field(), 1.15, 4.0, 4, 2);
        let mut agree = 0usize;
        for (_, center) in full.grid().iter_centers() {
            let a = full.face(full.face_at(center).unwrap()).signature.clone();
            let b = adaptive
                .face(adaptive.face_at(center).unwrap())
                .signature
                .clone();
            if a == b {
                agree += 1;
            }
        }
        let frac = agree as f64 / full.grid().cell_count() as f64;
        assert!(frac > 0.97, "only {frac:.3} of cells agree");
    }

    #[test]
    fn adaptive_partitions_all_cells() {
        let pos = square4();
        let adaptive = FaceMap::build_adaptive(&pos, field(), 1.15, 8.0, 4, 2);
        let total: usize = adaptive.faces().iter().map(|f| f.cell_count).sum();
        assert_eq!(total, adaptive.grid().cell_count());
        // Neighbor symmetry holds for the adaptive map too.
        for f in adaptive.faces() {
            for &nb in adaptive.neighbors(f.id) {
                assert!(adaptive.neighbors(nb).contains(&f.id));
            }
        }
    }

    #[test]
    fn planes_mirror_face_signatures() {
        let map = FaceMap::build(&square4(), field(), 1.15, 2.0);
        assert_eq!(map.planes().face_count(), map.face_count());
        assert_eq!(map.planes().dim(), map.pair_dimension());
        for f in map.faces() {
            assert_eq!(map.planes().signature(f.id.index()), f.signature);
        }
        // The codec rebuilds an identical plane arena.
        let mut bytes = Vec::new();
        map.write_to(&mut bytes).unwrap();
        let back = FaceMap::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.planes(), map.planes());
        // And the adaptive builder fills it the same way.
        let adaptive = FaceMap::build_adaptive(&square4(), field(), 1.15, 4.0, 4, 2);
        for f in adaptive.faces() {
            assert_eq!(adaptive.planes().signature(f.id.index()), f.signature);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn adaptive_needs_refinement() {
        let _ = FaceMap::build_adaptive(&square4(), field(), 1.15, 4.0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "at least two sensors")]
    fn single_sensor_rejected() {
        let _ = FaceMap::build(&[Point::ORIGIN], field(), 1.1, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be ≥ 1")]
    fn sub_unity_constant_rejected() {
        let _ = FaceMap::build(&square4(), field(), 0.5, 1.0);
    }
}
