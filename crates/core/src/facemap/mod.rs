//! Face maps: the offline division of the monitored field (Section 4.3).
//!
//! Every node pair's uncertain boundary (two Apollonius circles with the
//! radio-derived constant `C`) slices the field; the cells of the resulting
//! arrangement are **faces**, each with a unique ternary signature vector
//! (Lemma 1). Following the paper's *approximate grid division* (Fig. 6),
//! the field is rasterized into square cells; cells are labelled with the
//! signature of their centre and grouped by label. A face's location
//! estimate is the centroid of its cells (eq. 5).
//!
//! Neighbor-face links (Definition 8) are derived from 4-adjacency of
//! cells with different labels; they drive the heuristic matcher
//! (Algorithm 2).

mod build;
mod repair;

pub use build::{signature_of, CodecError, Face, FaceId, FaceMap};
pub use repair::{RepairMode, RepairReport};
