//! Incremental face-map repair under topology churn.
//!
//! When a sensor dies, every pair plane that mentions it must be retired;
//! when it comes back, its pair planes must be re-rasterized. Both are
//! *local* in pair space — the other `C(n−1, 2)` pairs' classifications
//! are untouched, because a pair's Apollonius region depends only on its
//! own two sensors and `c²` — so the repair never re-runs the full
//! `cells × pairs` classifier:
//!
//! * **Death** (`kill_node`): the survivor planes of each *face* are the
//!   face's old planes with the dead node's pair bits squeezed out (a
//!   precompiled word-blit). Faces whose squeezed planes coincide merge;
//!   everything else survives verbatim. No cell is reclassified at all.
//! * **Birth** (`revive_node`): the old planes are scattered into the
//!   wider pair space (zeroes at the newcomer's pair positions) and only
//!   the newcomer's `n−1` pairs are classified per cell — `O(n)` work per
//!   cell instead of `O(n²)`. Cells group by `(old face, fresh bits)`,
//!   which is exactly grouping by the full new planes.
//!
//! Both paths feed the **same** accumulation and finalization code as a
//! fresh build ([`CellAccum`] / [`assemble`]): face numbering stays
//! first-encounter raster order (old face ids are themselves in
//! first-cell order, and merging/splitting preserves that order), the f64
//! centroid sums accumulate in the identical raster sequence, and the
//! chunk summaries are rebuilt from scratch. The result is **bit-identical
//! to a from-scratch build over the survivors** — the
//! `churn_differential` proptest holds every repaired map to that
//! standard, and [`RepairMode::Rebuild`] keeps the reference path (same
//! epoch bump, same provenance) one enum variant away.
//!
//! Every repair bumps [`FaceMap::epoch`], which sessions use to detect
//! that their warm-start face ids went stale and replay digests fold so a
//! churned run can never collide with a static one.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use super::build::{
    assemble, hash_planes, CellAccum, Grouper, Provenance, RowRasterizer, SignatureIndex,
};
use super::{FaceId, FaceMap};
use crate::vector::{words_for, SignaturePlanes};
use wsn_geometry::{CellIndex, Point};
use wsn_network::{pair_count, pair_index};
use wsn_telemetry as telemetry;

/// How a churn repair recomputes the map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairMode {
    /// Patch only what the churned node touches (the default; sub-ms at
    /// campaign scale). Falls back to a full rebuild for births into
    /// rosters larger than 65 sensors, where the packed fresh-bit path
    /// runs out of bits.
    Incremental,
    /// Re-rasterize the whole field from the survivor set — the
    /// reference/control path. Produces a bit-identical map (including
    /// the epoch bump), only slower.
    Rebuild,
}

/// What one repair did: sizes, timings, and the old→new face mapping
/// sessions use to migrate their warm-start state across the epoch bump.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// The map's epoch *after* this repair.
    pub epoch: u64,
    /// Deployment index of the churned node.
    pub node: usize,
    /// `true` for a death, `false` for a birth.
    pub death: bool,
    /// Pair planes removed from the map (death: `old − new` dimension).
    pub planes_retired: usize,
    /// Pair planes added to the map (birth: `new − old` dimension).
    pub planes_added: usize,
    /// Cells whose signature was recomputed by the classifier (0 for an
    /// incremental death — retirement is pure bit moving; the whole grid
    /// for births and rebuilds).
    pub cells_reclassified: usize,
    /// Face count before the repair.
    pub faces_before: usize,
    /// Face count after the repair.
    pub faces_after: usize,
    /// Wall-clock repair latency in microseconds (telemetry only — never
    /// folded into replay digests).
    pub repair_us: f64,
    /// Old face id → (new face id, survived exactly).
    remap: Vec<(u32, bool)>,
}

impl RepairReport {
    /// Where old face `f` went: its new id, plus whether the face
    /// survived *exactly* (same cell set). A death merge reports the
    /// merged face with `false`; a birth split reports the new face of
    /// the old face's first raster cell with `false`. `None` only for ids
    /// outside the old map.
    pub fn remap_face(&self, f: FaceId) -> Option<(FaceId, bool)> {
        self.remap
            .get(f.index())
            .map(|&(nf, exact)| (FaceId(nf), exact))
    }

    /// Number of old faces (the domain of [`RepairReport::remap_face`]).
    pub fn remap_len(&self) -> usize {
        self.remap.len()
    }
}

/// One precompiled bit-blit: OR `mask`-selected bits of source word `sw`
/// (shifted down by `sb`) into destination word `dw` at offset `db`.
struct BitOp {
    sw: u32,
    dw: u32,
    sb: u8,
    db: u8,
    mask: u64,
}

/// Compiles bit-range copies `(src_bit, dst_bit, len)` into word-level
/// [`BitOp`]s. Compiled once per repair and applied to every face's
/// planes, so the per-face inner loop is branch-light.
fn compile_copy(segs: &[(usize, usize, usize)]) -> Vec<BitOp> {
    let mut ops = Vec::new();
    for &(seg_s, seg_d, seg_len) in segs {
        let (mut s, mut d, mut len) = (seg_s, seg_d, seg_len);
        while len > 0 {
            let (sw, sb) = (s / 64, s % 64);
            let (dw, db) = (d / 64, d % 64);
            let take = len.min(64 - sb).min(64 - db);
            let mask = if take == 64 {
                u64::MAX
            } else {
                (1u64 << take) - 1
            };
            ops.push(BitOp {
                sw: sw as u32,
                dw: dw as u32,
                sb: sb as u8,
                db: db as u8,
                mask,
            });
            s += take;
            d += take;
            len -= take;
        }
    }
    ops
}

/// Applies a compiled copy; `dst` bits under the ops must be zero.
#[inline]
fn apply_copy(ops: &[BitOp], src: &[u64], dst: &mut [u64]) {
    for op in ops {
        dst[op.dw as usize] |= ((src[op.sw as usize] >> op.sb) & op.mask) << op.db;
    }
}

/// Byte-range copies for the component rows (same segments as the bit
/// planes, applied to `i8` instead of bits).
fn copy_comps(segs: &[(usize, usize, usize)], src: &[i8], dst: &mut [i8]) {
    for &(s, d, len) in segs {
        dst[d..d + len].copy_from_slice(&src[s..s + len]);
    }
}

/// Ascending pair indices (canonical enumeration over `n` list slots)
/// that involve list slot `r`: `(0,r) … (r−1,r)`, then `(r,r+1) …
/// (r,n−1)`. Both sub-sequences are increasing and the second starts
/// above the first, so the result is sorted without a sort.
fn node_pairs(r: usize, n: usize) -> Vec<usize> {
    let mut out: Vec<usize> = (0..r).map(|i| pair_index(i, r, n)).collect();
    out.extend((r + 1..n).map(|j| pair_index(r, j, n)));
    debug_assert!(out.windows(2).all(|w| w[0] < w[1]), "pair indices sorted");
    out
}

/// Copy segments between the full pair space (with `skips` excluded) and
/// the dense pair space (skips squeezed out). Removing one list slot is a
/// *monotone* map on the remaining pairs — the canonical enumeration of
/// the survivors in the full space and the dense space visit them in the
/// same order — so the correspondence is exactly these contiguous runs.
/// `skips_in_src` picks the direction: `true` compacts (death), `false`
/// scatters (birth).
fn copy_segments(
    skips: &[usize],
    full_dim: usize,
    skips_in_src: bool,
) -> Vec<(usize, usize, usize)> {
    let mut segs = Vec::with_capacity(skips.len() + 1);
    let mut full = 0usize;
    let mut dense = 0usize;
    for &k in skips {
        if k > full {
            let len = k - full;
            segs.push(if skips_in_src {
                (full, dense, len)
            } else {
                (dense, full, len)
            });
            dense += len;
        }
        full = k + 1;
    }
    if full_dim > full {
        let len = full_dim - full;
        segs.push(if skips_in_src {
            (full, dense, len)
        } else {
            (dense, full, len)
        });
    }
    segs
}

/// Deployment pair index per live pair index (the map's `pair_gather`).
fn deployment_pair_gather(n: usize, live: &[u32]) -> Vec<u32> {
    let mut is_live = vec![false; n];
    for &k in live {
        is_live[k as usize] = true;
    }
    let mut gather = Vec::with_capacity(pair_count(live.len()));
    let mut d = 0u32;
    for i in 0..n {
        for j in i + 1..n {
            if is_live[i] && is_live[j] {
                gather.push(d);
            }
            d += 1;
        }
    }
    gather
}

impl FaceMap {
    /// Retires deployment node `node` from the map: removes its pair
    /// planes, merges faces its boundaries separated, patches the
    /// neighbor graph and chunk envelopes, and bumps the epoch. The
    /// resulting map is bit-identical to building from the survivors.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the deployment, already dead, or if
    /// fewer than two sensors would remain.
    pub fn kill_node(&mut self, node: usize, mode: RepairMode) -> RepairReport {
        self.repair(node, true, mode)
    }

    /// Returns deployment node `node` to the map: re-rasterizes its pair
    /// planes (and only those), splits the faces its boundaries cut,
    /// patches the neighbor graph and chunk envelopes, and bumps the
    /// epoch. Bit-identical to building from the enlarged live set.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the deployment or already live.
    pub fn revive_node(&mut self, node: usize, mode: RepairMode) -> RepairReport {
        self.repair(node, false, mode)
    }

    fn repair(&mut self, node: usize, death: bool, mode: RepairMode) -> RepairReport {
        let _span = telemetry::span("fttt.map.repair.total");
        let start = std::time::Instant::now();
        assert!(
            node < self.deployment.len(),
            "node {node} outside the deployment"
        );
        let old_dim = pair_count(self.live.len());
        let faces_before = self.faces.len();

        let found = self.live.binary_search(&(node as u32));
        let mut live = self.live.clone();
        let list_pos = if death {
            let r = found.unwrap_or_else(|_| panic!("node {node} is already dead"));
            assert!(
                live.len() > 2,
                "cannot retire node {node}: a face map needs at least two live sensors"
            );
            live.remove(r);
            r
        } else {
            match found {
                Err(p) => {
                    live.insert(p, node as u32);
                    p
                }
                Ok(_) => panic!("node {node} is already live"),
            }
        };
        let positions: Vec<Point> = live.iter().map(|&i| self.deployment[i as usize]).collect();
        let new_dim = pair_count(live.len());
        let pair_gather = if live.len() == self.deployment.len() {
            Vec::new()
        } else {
            deployment_pair_gather(self.deployment.len(), &live)
        };
        let prov = Provenance {
            deployment: self.deployment.clone(),
            live,
            pair_gather,
            epoch: self.epoch + 1,
        };

        let (map, raw_remap, cells_reclassified) = match (mode, death) {
            (RepairMode::Rebuild, _) => self.rebuild_with(positions, prov),
            (RepairMode::Incremental, true) => self.repair_death(list_pos, positions, prov),
            (RepairMode::Incremental, false) if positions.len() <= 65 => {
                self.repair_birth(list_pos, positions, prov)
            }
            // > 64 fresh pair bits do not fit the packed birth path; the
            // rebuild is the same map, just slower.
            (RepairMode::Incremental, false) => self.rebuild_with(positions, prov),
        };

        // Exactness: a repair only merges (death) or splits (birth)
        // faces, so an old face survived exactly iff its cell count is
        // unchanged.
        let remap: Vec<(u32, bool)> = raw_remap
            .iter()
            .zip(&self.faces)
            .map(|(&nf, of)| {
                debug_assert_ne!(nf, u32::MAX, "old face never re-encountered");
                (nf, map.faces[nf as usize].cell_count == of.cell_count)
            })
            .collect();
        let faces_after = map.faces.len();
        let epoch = map.epoch;
        *self = map;

        let report = RepairReport {
            epoch,
            node,
            death,
            planes_retired: old_dim.saturating_sub(new_dim),
            planes_added: new_dim.saturating_sub(old_dim),
            cells_reclassified,
            faces_before,
            faces_after,
            repair_us: start.elapsed().as_secs_f64() * 1e6,
            remap,
        };
        if telemetry::enabled() {
            telemetry::counter_add("fttt.map.repair.count", 1);
            telemetry::counter_add(
                "fttt.map.repair.planes_retired",
                report.planes_retired as u64,
            );
            telemetry::counter_add("fttt.map.repair.planes_added", report.planes_added as u64);
            telemetry::counter_add("fttt.map.repair.cells", report.cells_reclassified as u64);
            telemetry::counter_add("fttt.map.repair.us", report.repair_us.round() as u64);
        }
        report
    }

    /// Reference repair: re-rasterize everything from the survivor set
    /// through the shared grouping path.
    fn rebuild_with(&self, positions: Vec<Point>, prov: Provenance) -> (FaceMap, Vec<u32>, usize) {
        let grid = self.grid.clone();
        let raster = RowRasterizer::new(&positions, self.c);
        let nx = grid.nx() as usize;
        let mut grouper = Grouper::new(&grid, pair_count(positions.len()), grid.cell_count());
        let mut remap = vec![u32::MAX; self.faces.len()];
        for iy in 0..grid.ny() {
            let row = raster.rasterize_row(&grid, iy);
            grouper.begin_row(iy as usize);
            for ix in 0..nx {
                let (cp, cm) = row.cell(ix);
                let id = grouper.cell(&grid, ix, cp, cm);
                let old = self.cell_to_face[iy as usize * nx + ix] as usize;
                if remap[old] == u32::MAX {
                    remap[old] = id;
                }
            }
        }
        let cells = grid.cell_count();
        (grouper.finish(grid, positions, self.c, prov), remap, cells)
    }

    /// Incremental death: squeeze the dead node's pair bits out of every
    /// face's planes (faces whose squeezed planes coincide merge), then
    /// re-accumulate cells by table lookup — zero classifier work.
    fn repair_death(
        &self,
        removed: usize,
        positions: Vec<Point>,
        prov: Provenance,
    ) -> (FaceMap, Vec<u32>, usize) {
        let old_n = positions.len() + 1;
        let old_dim = pair_count(old_n);
        let new_dim = pair_count(old_n - 1);
        let new_words = words_for(new_dim);
        let segs = copy_segments(&node_pairs(removed, old_n), old_dim, true);
        let ops = compile_copy(&segs);

        // Phase 1: transform and group the faces. New ids numbered by
        // ascending lowest old member id — which *is* first-encounter
        // raster order, because old ids are themselves in first-cell
        // order and a merged face's first cell is its lowest member's.
        let nf = self.faces.len();
        let mut planes = SignaturePlanes::new(new_dim);
        planes.reserve(nf);
        let mut sig_index = SignatureIndex::default();
        sig_index.first.reserve(nf);
        let mut face_remap: Vec<u32> = Vec::with_capacity(nf);
        let mut pbuf = vec![0u64; new_words];
        let mut mbuf = vec![0u64; new_words];
        let mut cbuf = vec![0i8; new_dim];
        for f in 0..nf {
            pbuf.fill(0);
            mbuf.fill(0);
            apply_copy(&ops, self.planes.plus(f), &mut pbuf);
            apply_copy(&ops, self.planes.minus(f), &mut mbuf);
            let same = |planes: &SignaturePlanes, g: u32| {
                planes.plus(g as usize) == pbuf.as_slice()
                    && planes.minus(g as usize) == mbuf.as_slice()
            };
            let id = match sig_index.first.entry(hash_planes(&pbuf, &mbuf)) {
                Entry::Vacant(e) => {
                    copy_comps(&segs, self.planes.components(f), &mut cbuf);
                    let id = planes.push_raw(&pbuf, &mbuf, &cbuf) as u32;
                    e.insert(id);
                    id
                }
                Entry::Occupied(e) => {
                    let first = *e.get();
                    if same(&planes, first) {
                        first
                    } else if let Some(&g) = sig_index.overflow.iter().find(|&&g| same(&planes, g))
                    {
                        g
                    } else {
                        copy_comps(&segs, self.planes.components(f), &mut cbuf);
                        let id = planes.push_raw(&pbuf, &mbuf, &cbuf) as u32;
                        sig_index.overflow.push(id);
                        id
                    }
                }
            };
            face_remap.push(id);
        }

        // Phase 2: re-accumulate every cell through the shared path —
        // pure table lookups, but the identical raster-order f64 sums.
        let grid = self.grid.clone();
        let nx = grid.nx() as usize;
        let ny = grid.ny() as usize;
        let mut accum = CellAccum::new(&grid, planes.face_count());
        for iy in 0..ny {
            accum.begin_row(iy);
            for ix in 0..nx {
                let id = face_remap[self.cell_to_face[iy * nx + ix] as usize];
                accum.record(&grid, ix, id);
            }
        }
        let map = assemble(planes, sig_index, accum, grid, positions, self.c, prov);
        (map, face_remap, 0)
    }

    /// Incremental birth: scatter the old planes into the wider pair
    /// space and classify only the newcomer's pairs per cell. Cells key
    /// by `(old face, fresh bits)` — equivalent to keying by the full new
    /// planes, since the fresh bit positions are disjoint from the
    /// scattered ones.
    fn repair_birth(
        &self,
        inserted: usize,
        positions: Vec<Point>,
        prov: Provenance,
    ) -> (FaceMap, Vec<u32>, usize) {
        let new_n = positions.len();
        let new_dim = pair_count(new_n);
        let new_words = words_for(new_dim);
        let fresh = node_pairs(inserted, new_n);
        let segs = copy_segments(&fresh, new_dim, false);
        let ops = compile_copy(&segs);

        // Phase 1: per-cell fresh bits; group by (old face, fresh bits).
        let grid = self.grid.clone();
        let nx = grid.nx() as usize;
        let ny = grid.ny() as usize;
        let nf = self.faces.len();
        let raster = RowRasterizer::new(&positions, self.c);
        let mut scratch = raster.scratch();
        let mut key_to_id: HashMap<(u32, u64, u64), u32> = HashMap::with_capacity(2 * nf);
        let mut reps: Vec<(u32, u64, u64)> = Vec::with_capacity(2 * nf);
        let mut face_remap = vec![u32::MAX; nf];
        let mut accum = CellAccum::new(&grid, 2 * nf);
        for iy in 0..ny {
            raster.begin_row(grid.center(CellIndex::new(0, iy as u32)).y, &mut scratch);
            accum.begin_row(iy);
            for ix in 0..nx {
                let old = self.cell_to_face[iy * nx + ix];
                let cx = grid.center(CellIndex::new(ix as u32, iy as u32)).x;
                let (fp, fm) = raster.classify_node(cx, inserted, &mut scratch);
                let id = match key_to_id.entry((old, fp, fm)) {
                    Entry::Vacant(e) => {
                        let id = reps.len() as u32;
                        reps.push((old, fp, fm));
                        e.insert(id);
                        id
                    }
                    Entry::Occupied(e) => *e.get(),
                };
                if face_remap[old as usize] == u32::MAX {
                    face_remap[old as usize] = id;
                }
                accum.record(&grid, ix, id);
            }
        }

        // Phase 2: materialize the new faces' planes in id order —
        // scattered old bits plus the fresh bits recorded in the key.
        let mut planes = SignaturePlanes::new(new_dim);
        planes.reserve(reps.len());
        let mut sig_index = SignatureIndex::default();
        sig_index.first.reserve(reps.len());
        let mut pbuf = vec![0u64; new_words];
        let mut mbuf = vec![0u64; new_words];
        let mut cbuf = vec![0i8; new_dim];
        for &(of, fp, fm) in &reps {
            pbuf.fill(0);
            mbuf.fill(0);
            apply_copy(&ops, self.planes.plus(of as usize), &mut pbuf);
            apply_copy(&ops, self.planes.minus(of as usize), &mut mbuf);
            copy_comps(&segs, self.planes.components(of as usize), &mut cbuf);
            for (k, &bit) in fresh.iter().enumerate() {
                let pb = (fp >> k & 1) as i8;
                let mb = (fm >> k & 1) as i8;
                pbuf[bit / 64] |= (fp >> k & 1) << (bit % 64);
                mbuf[bit / 64] |= (fm >> k & 1) << (bit % 64);
                cbuf[bit] = pb - mb;
            }
            let id = planes.push_raw(&pbuf, &mbuf, &cbuf) as u32;
            // Distinct keys materialize distinct planes (old planes are
            // unique per face, fresh bits live at disjoint positions), so
            // an occupied bucket is a pure hash collision.
            match sig_index.first.entry(hash_planes(&pbuf, &mbuf)) {
                Entry::Vacant(e) => {
                    e.insert(id);
                }
                Entry::Occupied(_) => sig_index.overflow.push(id),
            }
        }

        let cells = grid.cell_count();
        let map = assemble(planes, sig_index, accum, grid, positions, self.c, prov);
        (map, face_remap, cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geometry::Rect;

    fn deployment() -> Vec<Point> {
        vec![
            Point::new(18.0, 22.0),
            Point::new(71.0, 29.0),
            Point::new(34.0, 67.0),
            Point::new(80.0, 75.0),
            Point::new(52.0, 45.0),
            Point::new(12.0, 81.0),
        ]
    }

    fn field() -> Rect {
        Rect::square(100.0)
    }

    fn build() -> FaceMap {
        FaceMap::build(&deployment(), field(), 1.15, 2.5)
    }

    fn survivors(dead: &[usize]) -> Vec<Point> {
        deployment()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !dead.contains(i))
            .map(|(_, p)| p)
            .collect()
    }

    /// Structural equality against a freshly built reference (everything
    /// except provenance bookkeeping, which a fresh build cannot know).
    fn assert_same_division(a: &FaceMap, b: &FaceMap) {
        assert_eq!(a.faces(), b.faces(), "faces differ");
        assert_eq!(a.planes(), b.planes(), "plane arenas differ");
        assert_eq!(a.positions(), b.positions(), "positions differ");
        for (idx, _) in a.grid().iter_centers() {
            let lin = a.grid().linear(idx);
            assert_eq!(a.cell_to_face[lin], b.cell_to_face[lin], "cell {lin}");
        }
        for f in a.faces() {
            assert_eq!(
                a.neighbors(f.id),
                b.neighbors(f.id),
                "neighbors of {}",
                f.id
            );
        }
    }

    #[test]
    fn death_matches_fresh_build_of_survivors() {
        let mut map = build();
        let report = map.kill_node(2, RepairMode::Incremental);
        assert_eq!(report.epoch, 1);
        assert_eq!(report.planes_retired, 5);
        assert_eq!(report.planes_added, 0);
        assert_eq!(report.cells_reclassified, 0);
        let reference = FaceMap::build(&survivors(&[2]), field(), 1.15, 2.5);
        assert_same_division(&map, &reference);
    }

    #[test]
    fn rebuild_mode_is_identical_to_incremental() {
        let mut inc = build();
        let mut reb = build();
        inc.kill_node(4, RepairMode::Incremental);
        reb.kill_node(4, RepairMode::Rebuild);
        assert_same_division(&inc, &reb);
        assert_eq!(inc.epoch(), reb.epoch());
        assert_eq!(inc.live_nodes(), reb.live_nodes());
        inc.revive_node(4, RepairMode::Incremental);
        reb.revive_node(4, RepairMode::Rebuild);
        assert_same_division(&inc, &reb);
        assert_eq!(inc.epoch(), reb.epoch());
    }

    #[test]
    fn kill_then_revive_restores_the_original_division() {
        let original = build();
        let mut map = build();
        map.kill_node(1, RepairMode::Incremental);
        let report = map.revive_node(1, RepairMode::Incremental);
        assert_eq!(report.epoch, 2);
        assert_eq!(report.planes_added, 5);
        assert_same_division(&map, &original);
        assert_eq!(map.epoch(), 2, "epochs keep counting across restores");
        assert!(map.is_node_live(1));
        assert_eq!(
            map.memory_bytes(),
            original.memory_bytes(),
            "memory accounting must return to the original exactly"
        );
    }

    #[test]
    fn memory_accounting_is_idempotent_across_repair_cycles() {
        let mut map = build();
        map.kill_node(0, RepairMode::Incremental);
        map.kill_node(3, RepairMode::Incremental);
        let churned = map.memory_bytes();
        map.revive_node(0, RepairMode::Incremental);
        map.revive_node(3, RepairMode::Incremental);
        let restored = map.memory_bytes();
        map.kill_node(0, RepairMode::Incremental);
        map.kill_node(3, RepairMode::Incremental);
        assert_eq!(map.memory_bytes(), churned, "cycle drifted the bytes");
        map.revive_node(3, RepairMode::Incremental);
        map.revive_node(0, RepairMode::Incremental);
        assert_eq!(map.memory_bytes(), restored, "restore drifted the bytes");
        map.shrink_to_fit();
        assert_eq!(map.memory_bytes(), restored, "shrink changed the report");
    }

    #[test]
    fn remap_is_total_and_flags_merges() {
        let mut map = build();
        let faces_before = map.face_count();
        let report = map.kill_node(5, RepairMode::Incremental);
        assert_eq!(report.remap_len(), faces_before);
        let mut inexact = 0usize;
        for f in 0..faces_before {
            let (nf, exact) = report.remap_face(FaceId(f as u32)).expect("total remap");
            assert!(nf.index() < map.face_count());
            if !exact {
                inexact += 1;
            }
        }
        assert!(
            inexact > 0,
            "killing a node must merge at least one face pair"
        );
        assert!(report.remap_face(FaceId(faces_before as u32)).is_none());
    }

    #[test]
    fn projection_drops_dead_pair_components() {
        use crate::vector::SamplingVector;
        let mut map = build();
        map.kill_node(2, RepairMode::Incremental);
        let full_dim = pair_count(map.deployment().len());
        let v = SamplingVector::new((0..full_dim).map(|i| Some(i as f64 / 100.0)).collect());
        let projected = map.project_sampling_vector(v);
        assert_eq!(projected.len(), map.pair_dimension());
        // Surviving components keep their values; dropped ones mention 2.
        let mut k = 0usize;
        for i in 0..map.deployment().len() {
            for j in i + 1..map.deployment().len() {
                let d = pair_index(i, j, map.deployment().len());
                if i != 2 && j != 2 {
                    assert_eq!(projected.component(k), Some(d as f64 / 100.0));
                    k += 1;
                }
            }
        }
        assert!(!map.is_node_live(2));
        assert!(map.is_node_live(0));
    }

    #[test]
    fn copy_segments_round_trip() {
        let n = 7;
        let dim = pair_count(n);
        for r in 0..n {
            let skips = node_pairs(r, n);
            let squeeze = copy_segments(&skips, dim, true);
            let total: usize = squeeze.iter().map(|&(_, _, l)| l).sum();
            assert_eq!(total, dim - skips.len());
            // Squeeze then scatter restores every kept position.
            let scatter = copy_segments(&skips, dim, false);
            let src: Vec<i8> = (0..dim as i64).map(|v| (v % 3 - 1) as i8).collect();
            let mut dense = vec![0i8; dim - skips.len()];
            copy_comps(&squeeze, &src, &mut dense);
            let mut back = vec![0i8; dim];
            copy_comps(&scatter, &dense, &mut back);
            for (i, (&a, &b)) in src.iter().zip(&back).enumerate() {
                if skips.contains(&i) {
                    assert_eq!(b, 0);
                } else {
                    assert_eq!(a, b, "position {i} lost in round trip");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "already dead")]
    fn double_kill_rejected() {
        let mut map = build();
        map.kill_node(1, RepairMode::Incremental);
        map.kill_node(1, RepairMode::Incremental);
    }

    #[test]
    #[should_panic(expected = "already live")]
    fn revive_of_live_node_rejected() {
        let mut map = build();
        map.revive_node(1, RepairMode::Incremental);
    }

    #[test]
    #[should_panic(expected = "at least two live sensors")]
    fn cannot_shrink_below_two_sensors() {
        let positions = vec![
            Point::new(30.0, 30.0),
            Point::new(70.0, 30.0),
            Point::new(50.0, 70.0),
        ];
        let mut map = FaceMap::build(&positions, field(), 1.15, 5.0);
        map.kill_node(0, RepairMode::Incremental);
        map.kill_node(1, RepairMode::Incremental);
    }
}
