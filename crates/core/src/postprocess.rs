//! Post-processing of tracking runs: trajectory smoothing and velocity
//! estimation.
//!
//! The paper motivates the extension (Section 6) with trajectory
//! smoothness — "the returning results change back and forth instead of
//! being smooth". These helpers quantify and improve that property
//! independently of the matcher: a centred moving-average smoother over
//! the estimate sequence, a roughness metric, and finite-difference
//! velocity estimates.

use crate::tracker::{Localization, TrackingRun};
use wsn_geometry::{Point, Vector};

/// Centred moving average over the estimates of a run (window of
/// `2·radius + 1` localizations, truncated at the ends). Ground truth,
/// faces and similarities are preserved; estimates and errors are
/// recomputed.
///
/// # Panics
///
/// Panics if the run is empty.
pub fn smooth_estimates(run: &TrackingRun, radius: usize) -> TrackingRun {
    assert!(!run.localizations.is_empty(), "cannot smooth an empty run");
    let n = run.localizations.len();
    let localizations = (0..n)
        .map(|i| {
            let lo = i.saturating_sub(radius);
            let hi = (i + radius + 1).min(n);
            let mut x = 0.0;
            let mut y = 0.0;
            for l in &run.localizations[lo..hi] {
                x += l.estimate.x;
                y += l.estimate.y;
            }
            let m = (hi - lo) as f64;
            let estimate = Point::new(x / m, y / m);
            let src = &run.localizations[i];
            Localization {
                estimate,
                error: estimate.distance(src.truth),
                ..src.clone()
            }
        })
        .collect();
    TrackingRun { localizations }
}

/// Trajectory roughness: mean turn magnitude per localization, i.e. the
/// average norm of the second difference of the estimate sequence. Zero
/// for a uniformly-sampled straight line; large for a flapping estimate.
///
/// Returns 0 for runs shorter than 3 localizations.
pub fn roughness(run: &TrackingRun) -> f64 {
    let pts: Vec<Point> = run.localizations.iter().map(|l| l.estimate).collect();
    if pts.len() < 3 {
        return 0.0;
    }
    let total: f64 = pts
        .windows(3)
        .map(|w| {
            let a = w[1] - w[0];
            let b = w[2] - w[1];
            (b - a).norm()
        })
        .sum();
    total / (pts.len() - 2) as f64
}

/// Finite-difference velocity estimates between consecutive
/// localizations: `(t_mid, velocity)` pairs, length `run.len() − 1`.
///
/// Degenerate (non-increasing) timestamps yield no entry rather than an
/// infinite velocity.
pub fn velocities(run: &TrackingRun) -> Vec<(f64, Vector)> {
    run.localizations
        .windows(2)
        .filter(|w| w[1].t > w[0].t)
        .map(|w| {
            let dt = w[1].t - w[0].t;
            (
                (w[0].t + w[1].t) / 2.0,
                (w[1].estimate - w[0].estimate) / dt,
            )
        })
        .collect()
}

/// Mean speed of the estimated trajectory, m/s (0 for single-point runs).
pub fn mean_speed(run: &TrackingRun) -> f64 {
    let v = velocities(run);
    if v.is_empty() {
        0.0
    } else {
        v.iter().map(|(_, vel)| vel.norm()).sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facemap::FaceId;

    fn run_from(points: &[(f64, f64, f64)]) -> TrackingRun {
        // (t, x, y); truth equals a straight line y = 0 moving 1 m/s.
        TrackingRun {
            localizations: points
                .iter()
                .map(|&(t, x, y)| {
                    let estimate = Point::new(x, y);
                    let truth = Point::new(t, 0.0);
                    Localization {
                        t,
                        truth,
                        estimate,
                        face: FaceId(0),
                        similarity: 1.0,
                        error: estimate.distance(truth),
                        evaluated: 1,
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn smoothing_reduces_flapping() {
        // Alternating ±2 m cross-track flapping around the true line.
        let pts: Vec<(f64, f64, f64)> = (0..20)
            .map(|i| (i as f64, i as f64, if i % 2 == 0 { 2.0 } else { -2.0 }))
            .collect();
        let run = run_from(&pts);
        let smoothed = smooth_estimates(&run, 2);
        assert!(roughness(&smoothed) < roughness(&run) / 2.0);
        assert!(smoothed.error_stats().mean < run.error_stats().mean);
        assert_eq!(smoothed.localizations.len(), run.localizations.len());
    }

    #[test]
    fn smoothing_preserves_straight_lines() {
        let pts: Vec<(f64, f64, f64)> = (0..10).map(|i| (i as f64, i as f64, 0.0)).collect();
        let run = run_from(&pts);
        let smoothed = smooth_estimates(&run, 3);
        // Interior points of a uniform straight line are fixed points of
        // the centred average.
        for (a, b) in run.localizations[3..7]
            .iter()
            .zip(&smoothed.localizations[3..7])
        {
            assert!((a.estimate.x - b.estimate.x).abs() < 1e-12);
            assert!((a.estimate.y - b.estimate.y).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_radius_is_identity() {
        let pts: Vec<(f64, f64, f64)> = (0..5).map(|i| (i as f64, i as f64, 1.0)).collect();
        let run = run_from(&pts);
        assert_eq!(smooth_estimates(&run, 0), run);
    }

    #[test]
    fn roughness_of_line_is_zero() {
        let pts: Vec<(f64, f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64, 0.0)).collect();
        assert_eq!(roughness(&run_from(&pts)), 0.0);
        // Too-short runs do not panic.
        assert_eq!(
            roughness(&run_from(&[(0.0, 0.0, 0.0), (1.0, 1.0, 0.0)])),
            0.0
        );
    }

    #[test]
    fn velocities_and_speed() {
        let pts: Vec<(f64, f64, f64)> = (0..6).map(|i| (i as f64 * 0.5, i as f64, 0.0)).collect();
        let run = run_from(&pts);
        let v = velocities(&run);
        assert_eq!(v.len(), 5);
        for (_, vel) in &v {
            assert!((vel.x - 2.0).abs() < 1e-12);
            assert_eq!(vel.y, 0.0);
        }
        assert!((mean_speed(&run) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty run")]
    fn empty_run_rejected() {
        let _ = smooth_estimates(
            &TrackingRun {
                localizations: vec![],
            },
            1,
        );
    }
}
