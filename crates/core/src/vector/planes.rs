//! Packed signature planes: branch-free `*`-aware distance kernels.
//!
//! A face signature is ternary (Definition 6), so a set of `F` signatures
//! over `P` pairs packs into two bit-planes of `⌈P/64⌉` words per face:
//! bit `i` of `plus` is set where component `i` is `+1`, bit `i` of
//! `minus` where it is `−1`, and both clear where it is `0`. A basic
//! sampling vector (Definition 4 with the `*` of eq. 6) packs the same
//! way plus a `present` mask that clears `*` pairs.
//!
//! With that layout the `*`-aware squared distance of Definitions 8/9
//! reduces to a handful of bitwise ops per 64 pairs. For a present pair
//! the component difference is one of three magnitudes:
//!
//! * opposite signs (`+1` vs `−1`) — contributes 4,
//! * exactly one of the two components nonzero — contributes 1,
//! * otherwise — contributes 0.
//!
//! so `d² = 4·popcount((vp & gm) | (vm & gp))
//!        + popcount(((vp | vm) ^ (gp | gm)) & present)`
//! summed over words. The result is an exact small integer, hence
//! bit-identical to the scalar [`difference_norm_squared`] sum (which
//! adds the same integers in f64, exactly).
//!
//! Extended vectors (Definition 10) carry arbitrary values in `[−1, 1]`
//! and fall back to a flat structure-of-arrays kernel: a contiguous
//! per-face component row and a `{0.0, 1.0}` presence mask replace the
//! `Option<f64>` branching, and terms are accumulated in pair order so
//! the result stays bit-identical to the scalar reference.
//!
//! [`difference_norm_squared`]: crate::vector::difference_norm_squared

use crate::vector::{hugepages, simd, SamplingVector, SignatureVector};

/// Bit-plane arena holding the signatures of every face of a map.
///
/// Face `f`'s planes live at word range `f·W .. (f+1)·W` of [`plus`] and
/// [`minus`] (`W` = [`words_per_face`]); its raw components additionally
/// live at `f·P .. (f+1)·P` of a flat `i8` row used by the extended-vector
/// fallback kernel (and to reconstruct [`SignatureVector`]s).
///
/// [`plus`]: SignaturePlanes::plus
/// [`minus`]: SignaturePlanes::minus
/// [`words_per_face`]: SignaturePlanes::words_per_face
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignaturePlanes {
    dim: usize,
    words: usize,
    faces: usize,
    plus: Vec<u64>,
    minus: Vec<u64>,
    comps: Vec<i8>,
    chunks: PlaneChunks,
}

/// Coarse-to-fine chunk summaries over the face arena: the data behind
/// [`SignaturePlanes::chunk_lower_bound`] and
/// [`SignaturePlanes::super_lower_bound`].
///
/// A *chunk* is a caller-chosen group of faces and a *super-chunk* a
/// caller-chosen group of chunks (the face map groups by grid locality at
/// both granularities, so grouped faces have similar signatures). Each
/// node at either level stores five per-word envelopes over its faces'
/// planes (an [`EnvelopeArena`] block):
///
/// * `union_plus` / `union_minus` — OR of the faces' plus/minus planes
///   (bit set ⟺ *some* face has that component `+1`/`−1`),
/// * `inter_plus` / `inter_minus` — AND of the planes (bit set ⟺ *every*
///   face has it),
/// * `inter_known` — AND of `plus | minus` (bit set ⟺ *no* face has a
///   `0` there).
///
/// Together they bound each component's distance contribution from below
/// for every face of the node at once, which is what lets the indexed
/// matcher discard whole regions without scanning a single face: a cheap
/// sweep over the few super-chunk envelopes prunes most of the map, and
/// fine per-chunk bounds are only ever computed inside the survivors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct PlaneChunks {
    /// Face ids grouped by chunk: chunk `c` owns
    /// `face_order[starts[c] .. starts[c+1]]`, ascending within a chunk.
    face_order: Vec<u32>,
    /// Chunk boundaries into `face_order`; `len = chunk_count + 1`, empty
    /// when no chunks are built.
    starts: Vec<u32>,
    /// Super-chunk boundaries into the *chunk* sequence: super `s` owns
    /// chunks `super_starts[s] .. super_starts[s+1]`.
    super_starts: Vec<u32>,
    /// Per-chunk envelopes, block `c` of the arena.
    env: EnvelopeArena,
    /// Per-super-chunk envelopes, block `s` of the arena.
    super_env: EnvelopeArena,
    /// Chunk-ordered copy of the face planes: the face at `face_order`
    /// position `p` stores its plus plane at `lanes[2pw .. 2pw+w]` and
    /// its minus plane at `lanes[2pw+w .. 2pw+2w]` (`w` = words). Leaf
    /// scans stream this sequentially instead of hopping through the
    /// main arena in face-id order — trading one extra copy of the
    /// planes for hardware-prefetchable candidate evaluation.
    lanes: Vec<u64>,
}

impl PlaneChunks {
    fn count(&self) -> usize {
        self.starts.len().saturating_sub(1)
    }

    fn super_count(&self) -> usize {
        self.super_starts.len().saturating_sub(1)
    }

    fn memory_bytes(&self) -> usize {
        (self.face_order.capacity() + self.starts.capacity() + self.super_starts.capacity())
            * std::mem::size_of::<u32>()
            + self.env.memory_bytes()
            + self.super_env.memory_bytes()
            + self.lanes.capacity() * std::mem::size_of::<u64>()
    }

    fn shrink_to_fit(&mut self) {
        self.face_order.shrink_to_fit();
        self.starts.shrink_to_fit();
        self.super_starts.shrink_to_fit();
        self.env.shrink_to_fit();
        self.super_env.shrink_to_fit();
        self.lanes.shrink_to_fit();
    }

    /// Asks the OS (best-effort) to back the hot arenas — the lanes and
    /// both envelope levels — with transparent huge pages. At scale the
    /// lanes alone span hundreds of megabytes, and the indexed matcher's
    /// candidate sweeps are dTLB-bound on 4 KiB pages.
    fn advise_hugepages(&self) {
        hugepages::advise(&self.lanes);
        self.env.advise_hugepages();
        self.super_env.advise_hugepages();
    }

    /// The chunk-ordered `(plus, minus)` planes of the face at
    /// `face_order` position `pos`.
    #[inline]
    fn lane(&self, pos: usize, words: usize) -> (&[u64], &[u64]) {
        let base = pos * 2 * words;
        (
            &self.lanes[base..base + words],
            &self.lanes[base + words..base + 2 * words],
        )
    }
}

/// Flat storage for fixed-width envelope blocks (one block per chunk or
/// super-chunk), kept as five parallel word arrays so the bound kernels
/// stream them directly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct EnvelopeArena {
    union_plus: Vec<u64>,
    inter_plus: Vec<u64>,
    union_minus: Vec<u64>,
    inter_minus: Vec<u64>,
    inter_known: Vec<u64>,
}

impl EnvelopeArena {
    /// Appends an identity envelope block of `w` words (unions empty,
    /// intersections full), returning its word base.
    fn push_block(&mut self, w: usize) -> usize {
        let base = self.union_plus.len();
        self.union_plus.resize(base + w, 0);
        self.union_minus.resize(base + w, 0);
        self.inter_plus.resize(base + w, !0);
        self.inter_minus.resize(base + w, !0);
        self.inter_known.resize(base + w, !0);
        base
    }

    /// Folds one face's planes into the block at word `base`.
    ///
    /// The envelopes are re-sliced to the face's word count up front so
    /// the fold loop carries no per-word bounds checks — this runs once
    /// per face per index level on every build *and* every churn repair.
    fn absorb(&mut self, base: usize, fp: &[u64], fm: &[u64]) {
        let w = fp.len();
        let up = &mut self.union_plus[base..base + w];
        let um = &mut self.union_minus[base..base + w];
        let ip = &mut self.inter_plus[base..base + w];
        let im = &mut self.inter_minus[base..base + w];
        let ik = &mut self.inter_known[base..base + w];
        for k in 0..w {
            up[k] |= fp[k];
            um[k] |= fm[k];
            ip[k] &= fp[k];
            im[k] &= fm[k];
            ik[k] &= fp[k] | fm[k];
        }
    }

    /// Borrows block `idx` (blocks are `words`-sized) for the kernels.
    fn block(&self, idx: usize, words: usize) -> simd::ChunkEnvelope<'_> {
        let (a, b) = (idx * words, (idx + 1) * words);
        simd::ChunkEnvelope {
            union_plus: &self.union_plus[a..b],
            inter_plus: &self.inter_plus[a..b],
            union_minus: &self.union_minus[a..b],
            inter_minus: &self.inter_minus[a..b],
            inter_known: &self.inter_known[a..b],
        }
    }

    fn memory_bytes(&self) -> usize {
        (self.union_plus.capacity()
            + self.inter_plus.capacity()
            + self.union_minus.capacity()
            + self.inter_minus.capacity()
            + self.inter_known.capacity())
            * std::mem::size_of::<u64>()
    }

    fn shrink_to_fit(&mut self) {
        self.union_plus.shrink_to_fit();
        self.inter_plus.shrink_to_fit();
        self.union_minus.shrink_to_fit();
        self.inter_minus.shrink_to_fit();
        self.inter_known.shrink_to_fit();
    }

    fn advise_hugepages(&self) {
        hugepages::advise(&self.union_plus);
        hugepages::advise(&self.inter_plus);
        hugepages::advise(&self.union_minus);
        hugepages::advise(&self.inter_minus);
        hugepages::advise(&self.inter_known);
    }
}

/// Number of 64-bit words needed for `dim` pair components.
#[inline]
pub fn words_for(dim: usize) -> usize {
    dim.div_ceil(64)
}

/// Byte-spread tables for the packed→component decode: entry `b` carries
/// `lane` in byte `j` exactly where bit `j` of `b` is set (`0x01` for the
/// plus plane, `0xFF` — `−1` as `i8` — for the minus plane).
const SPREAD_PLUS: [u64; 256] = spread_table(0x01);
const SPREAD_MINUS: [u64; 256] = spread_table(0xFF);

const fn spread_table(lane: u8) -> [u64; 256] {
    let mut t = [0u64; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut w = 0u64;
        let mut j = 0;
        while j < 8 {
            if (b >> j) & 1 == 1 {
                w |= (lane as u64) << (8 * j);
            }
            j += 1;
        }
        t[b] = w;
        b += 1;
    }
    t
}

impl SignaturePlanes {
    /// Creates an empty arena for signatures of `dim` pair components.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "signature planes need at least one pair component");
        Self {
            dim,
            words: words_for(dim),
            faces: 0,
            plus: Vec::new(),
            minus: Vec::new(),
            comps: Vec::new(),
            chunks: PlaneChunks::default(),
        }
    }

    /// Reserves storage for `additional` more faces, so a build loop with
    /// a known face-count bound pays no growth reallocations.
    pub fn reserve(&mut self, additional: usize) {
        self.plus.reserve(additional * self.words);
        self.minus.reserve(additional * self.words);
        self.comps.reserve(additional * self.dim);
    }

    /// Drops excess arena capacity (the counterpart of [`reserve`] once
    /// the final face count is known).
    ///
    /// [`reserve`]: SignaturePlanes::reserve
    pub fn shrink_to_fit(&mut self) {
        self.plus.shrink_to_fit();
        self.minus.shrink_to_fit();
        self.comps.shrink_to_fit();
        self.chunks.shrink_to_fit();
    }

    /// Packs an iterator of signatures (all of dimension `dim`).
    pub fn from_signatures<'a, I>(dim: usize, signatures: I) -> Self
    where
        I: IntoIterator<Item = &'a SignatureVector>,
    {
        let mut planes = Self::new(dim);
        for sig in signatures {
            planes.push_signature(sig);
        }
        planes
    }

    /// Appends one face's signature, returning its face index.
    ///
    /// # Panics
    ///
    /// Panics if `sig.len() != self.dim()`.
    pub fn push_signature(&mut self, sig: &SignatureVector) -> usize {
        assert_eq!(sig.len(), self.dim, "signature/plane dimension mismatch");
        assert!(
            !self.has_chunks(),
            "cannot append faces after chunk summaries are built"
        );
        let base = self.plus.len();
        self.plus.resize(base + self.words, 0);
        self.minus.resize(base + self.words, 0);
        for (i, &c) in sig.components().iter().enumerate() {
            let (w, b) = (base + i / 64, i % 64);
            self.plus[w] |= u64::from(c == 1) << b;
            self.minus[w] |= u64::from(c == -1) << b;
        }
        self.comps.extend_from_slice(sig.components());
        self.faces += 1;
        self.faces - 1
    }

    /// Appends one face directly from packed words (the rasterizer path;
    /// avoids materializing a `SignatureVector`). Returns the face index.
    ///
    /// # Panics
    ///
    /// Panics if the word slices are not [`words_per_face`] long, if the
    /// two planes overlap (a component cannot be both `+1` and `−1`), or
    /// if padding bits past `dim` are set.
    ///
    /// [`words_per_face`]: SignaturePlanes::words_per_face
    pub fn push_packed(&mut self, plus: &[u64], minus: &[u64]) -> usize {
        assert_eq!(plus.len(), self.words, "plus plane has wrong word count");
        assert_eq!(minus.len(), self.words, "minus plane has wrong word count");
        assert!(
            !self.has_chunks(),
            "cannot append faces after chunk summaries are built"
        );
        let pad = self.padding_mask();
        for w in 0..self.words {
            assert_eq!(plus[w] & minus[w], 0, "overlapping signature planes");
            if w == self.words - 1 {
                assert_eq!((plus[w] | minus[w]) & pad, 0, "padding bits set");
            }
        }
        self.plus.extend_from_slice(plus);
        self.minus.extend_from_slice(minus);
        // Decode the component row eight components a step (this is on the
        // rasterizer's per-new-face path; per-element bit extraction would
        // be the build's hottest loop): spread each plane byte to eight
        // `+1` / `−1` bytes by table, then OR — the planes are disjoint
        // (asserted above), so the two spreads never collide.
        let base = self.comps.len();
        self.comps.resize(base + self.dim, 0);
        for (w, chunk) in self.comps[base..].chunks_mut(64).enumerate() {
            let (p, m) = (plus[w], minus[w]);
            for (g, group) in chunk.chunks_mut(8).enumerate() {
                let spread = SPREAD_PLUS[(p >> (8 * g)) as u8 as usize]
                    | SPREAD_MINUS[(m >> (8 * g)) as u8 as usize];
                let bytes = spread.to_le_bytes();
                // The last group of the last word may be shorter than 8.
                let take = group.len();
                for (c, &b) in group.iter_mut().zip(&bytes[..take]) {
                    *c = b as i8;
                }
            }
        }
        self.faces += 1;
        self.faces - 1
    }

    /// Appends one face from packed words **and** a pre-gathered component
    /// row — the churn-repair path, where both the planes and the
    /// components are bit-moved out of an existing arena rather than
    /// re-decoded. Returns the face index.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches (word/component counts) or after chunks
    /// are built. The plane-shape invariants of
    /// [`SignaturePlanes::push_packed`] — disjoint planes, clear padding,
    /// component/plane agreement — hold *by construction* on this
    /// crate-internal path (the inputs are masked copies out of an
    /// already-validated arena), so they are debug assertions here: the
    /// churn-repair differential tests exercise them, and release repairs
    /// do not pay a validation sweep per surviving face.
    pub(crate) fn push_raw(&mut self, plus: &[u64], minus: &[u64], comps: &[i8]) -> usize {
        assert_eq!(plus.len(), self.words, "plus plane has wrong word count");
        assert_eq!(minus.len(), self.words, "minus plane has wrong word count");
        assert_eq!(comps.len(), self.dim, "component row has wrong length");
        assert!(
            !self.has_chunks(),
            "cannot append faces after chunk summaries are built"
        );
        let pad = self.padding_mask();
        debug_assert!(
            (0..self.words).all(|w| {
                plus[w] & minus[w] == 0 && (w + 1 < self.words || (plus[w] | minus[w]) & pad == 0)
            }),
            "overlapping signature planes or padding bits set"
        );
        debug_assert!(
            comps.iter().enumerate().all(|(i, &c)| {
                let (w, b) = (i / 64, i % 64);
                c == (plus[w] >> b & 1) as i8 - (minus[w] >> b & 1) as i8
            }),
            "component row disagrees with the bit planes"
        );
        self.plus.extend_from_slice(plus);
        self.minus.extend_from_slice(minus);
        self.comps.extend_from_slice(comps);
        self.faces += 1;
        self.faces - 1
    }

    /// Mask of the unused high bits of the last word per face (zero when
    /// `dim` is a multiple of 64).
    #[inline]
    fn padding_mask(&self) -> u64 {
        match self.dim % 64 {
            0 => 0,
            r => !0u64 << r,
        }
    }

    /// Number of packed faces.
    #[inline]
    pub fn face_count(&self) -> usize {
        self.faces
    }

    /// Pair-component dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Words per face in each bit-plane (`⌈dim/64⌉`).
    #[inline]
    pub fn words_per_face(&self) -> usize {
        self.words
    }

    /// `+1` bit-plane of face `f`.
    #[inline]
    pub fn plus(&self, f: usize) -> &[u64] {
        &self.plus[f * self.words..(f + 1) * self.words]
    }

    /// `−1` bit-plane of face `f`.
    #[inline]
    pub fn minus(&self, f: usize) -> &[u64] {
        &self.minus[f * self.words..(f + 1) * self.words]
    }

    /// Raw ternary components of face `f` (the extended-kernel row).
    #[inline]
    pub fn components(&self, f: usize) -> &[i8] {
        &self.comps[f * self.dim..(f + 1) * self.dim]
    }

    /// Reconstructs the signature of face `f` as an owned vector.
    pub fn signature(&self, f: usize) -> SignatureVector {
        // Arena components are validated on entry (`push_signature` /
        // `push_packed` assertions), so skip per-component re-validation.
        SignatureVector::from_trusted(self.components(f).to_vec())
    }

    /// Heap bytes held by the arena, chunk summaries included.
    pub fn memory_bytes(&self) -> usize {
        (self.plus.capacity() + self.minus.capacity()) * std::mem::size_of::<u64>()
            + self.comps.capacity()
            + self.chunks.memory_bytes()
    }

    /// `*`-aware squared distance `‖V_d − V_s(f)‖²` between a packed
    /// sampling vector and face `f` (Definitions 8/9).
    ///
    /// Bit-identical to
    /// [`difference_norm_squared`](crate::vector::difference_norm_squared)
    /// on the unpacked vectors, for both ternary and extended queries.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range or the query dimension differs.
    #[inline]
    pub fn distance_squared(&self, f: usize, query: &PackedQuery) -> f64 {
        assert_eq!(query.dim, self.dim, "query/plane dimension mismatch");
        assert!(
            f < self.faces,
            "face index {f} out of range ({} faces)",
            self.faces
        );
        match &query.kind {
            QueryKind::Ternary {
                plus,
                minus,
                present,
                active,
            } => {
                // Exact integer counts, so the SIMD-dispatched kernel is
                // bit-identical to the scalar word loop regardless of how
                // lanes group the words — and the sparse gather, which
                // only skips provably-zero words, is bit-identical to
                // both.
                let base = f * self.words;
                let (gp, gm) = (
                    &self.plus[base..base + self.words],
                    &self.minus[base..base + self.words],
                );
                let d2 = match active {
                    Some(active) => simd::d2_ternary_sparse(gp, gm, plus, minus, present, active),
                    None => simd::d2_ternary(gp, gm, plus, minus, present),
                };
                d2 as f64
            }
            QueryKind::Extended { vals, mask } => {
                let row = &self.comps[f * self.dim..(f + 1) * self.dim];
                let mut acc = 0.0f64;
                // Accumulated strictly in pair order: a masked term is
                // exactly 0.0, so the partial sums match the scalar
                // reference bit-for-bit.
                for i in 0..self.dim {
                    let d = (vals[i] - row[i] as f64) * mask[i];
                    acc += d * d;
                }
                acc
            }
        }
    }

    /// Builds the two-level chunk summaries from per-face keys: face `f`
    /// belongs to chunk `(super_of[f], chunk_of[f])` and that chunk to
    /// super-chunk `super_of[f]`. Keys need not be dense — chunks are
    /// compacted in ascending `(super, chunk)` key order (so a super's
    /// chunks are contiguous), faces ascending within a chunk. Freezes
    /// the arena: no more faces can be appended afterwards.
    ///
    /// Deterministic: the same faces and assignments always produce the
    /// same summaries, so structures rebuilt from a codec round-trip
    /// compare equal.
    ///
    /// # Panics
    ///
    /// Panics if either assignment's length differs from `face_count()`
    /// or if chunks were already built.
    pub fn build_chunks(&mut self, chunk_of: &[u32], super_of: &[u32]) {
        assert_eq!(
            chunk_of.len(),
            self.faces,
            "chunk assignment must cover every face"
        );
        assert_eq!(
            super_of.len(),
            self.faces,
            "super-chunk assignment must cover every face"
        );
        assert!(!self.has_chunks(), "chunk summaries already built");
        if self.faces == 0 {
            return;
        }
        let mut order: Vec<u32> = (0..self.faces as u32).collect();
        order.sort_unstable_by_key(|&f| (super_of[f as usize], chunk_of[f as usize], f));

        let mut ch = PlaneChunks {
            face_order: order,
            ..PlaneChunks::default()
        };
        ch.starts.push(0);
        ch.super_starts.push(0);
        let w = self.words;
        let n = ch.face_order.len();
        let mut i = 0usize;
        while i < n {
            let skey = super_of[ch.face_order[i] as usize];
            let sbase = ch.super_env.push_block(w);
            while i < n && super_of[ch.face_order[i] as usize] == skey {
                let ckey = chunk_of[ch.face_order[i] as usize];
                let cbase = ch.env.push_block(w);
                while i < n
                    && super_of[ch.face_order[i] as usize] == skey
                    && chunk_of[ch.face_order[i] as usize] == ckey
                {
                    let f = ch.face_order[i] as usize;
                    let (fp, fm) = (
                        &self.plus[f * w..(f + 1) * w],
                        &self.minus[f * w..(f + 1) * w],
                    );
                    ch.env.absorb(cbase, fp, fm);
                    ch.super_env.absorb(sbase, fp, fm);
                    ch.lanes.extend_from_slice(fp);
                    ch.lanes.extend_from_slice(fm);
                    i += 1;
                }
                ch.starts.push(i as u32);
            }
            ch.super_starts.push((ch.starts.len() - 1) as u32);
        }
        ch.shrink_to_fit();
        // Addresses are final after the shrink; ask for huge-page backing
        // of everything the matcher streams per query (the chunk-ordered
        // lanes, both envelope levels, and the main plane arenas, which
        // the bound/eval kernels still touch for exhaustive fallbacks).
        ch.advise_hugepages();
        hugepages::advise(&self.plus);
        hugepages::advise(&self.minus);
        self.chunks = ch;
    }

    /// `true` once [`build_chunks`](SignaturePlanes::build_chunks) ran
    /// (and the arena holds at least one face).
    #[inline]
    pub fn has_chunks(&self) -> bool {
        !self.chunks.starts.is_empty()
    }

    /// Number of chunks (0 before
    /// [`build_chunks`](SignaturePlanes::build_chunks)).
    #[inline]
    pub fn chunk_count(&self) -> usize {
        self.chunks.count()
    }

    /// Face indices of chunk `c`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[inline]
    pub fn chunk_faces(&self, c: usize) -> &[u32] {
        let (a, b) = (self.chunks.starts[c], self.chunks.starts[c + 1]);
        &self.chunks.face_order[a as usize..b as usize]
    }

    /// Provable lower bound on [`distance_squared`] over **every** face of
    /// chunk `c`: `chunk_lower_bound(c, q) ≤ d²(f, q)` for all `f` in the
    /// chunk. Exact (equal to the distance) when the chunk holds one face.
    ///
    /// Per component the bound takes the minimum possible contribution
    /// across the chunk, certified by the envelopes:
    ///
    /// * query `+1` — contributes ≥ 4 when every face is `−1` there
    ///   (`inter_minus`), else ≥ 1 when *no* face is `+1` (`¬union_plus`),
    ///   else 0 (symmetrically for query `−1`);
    /// * query `0` (present) — contributes ≥ 1 when no face has a `0`
    ///   there (`inter_known`);
    /// * query `*` — contributes 0.
    ///
    /// Summing per-component minima can only undercount any single face's
    /// distance, hence the bound. Extended queries have no envelope
    /// structure and get the trivial bound `0.0`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range or the query dimension differs.
    ///
    /// [`distance_squared`]: SignaturePlanes::distance_squared
    pub fn chunk_lower_bound(&self, c: usize, query: &PackedQuery) -> f64 {
        assert_eq!(query.dim, self.dim, "query/plane dimension mismatch");
        assert!(
            c < self.chunk_count(),
            "chunk index {c} out of range ({} chunks)",
            self.chunk_count()
        );
        Self::envelope_bound(self.chunks.env.block(c, self.words), query)
    }

    /// Number of super-chunks (0 before
    /// [`build_chunks`](SignaturePlanes::build_chunks)).
    #[inline]
    pub fn super_count(&self) -> usize {
        self.chunks.super_count()
    }

    /// Chunk indices owned by super-chunk `s` (always contiguous — chunks
    /// are laid out grouped by super).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[inline]
    pub fn super_chunks(&self, s: usize) -> std::ops::Range<usize> {
        self.chunks.super_starts[s] as usize..self.chunks.super_starts[s + 1] as usize
    }

    /// [`chunk_lower_bound`](SignaturePlanes::chunk_lower_bound) one level
    /// up: a provable lower bound on [`distance_squared`] over every face
    /// of every chunk of super-chunk `s`. The super envelope folds the
    /// same faces, so `super_lower_bound(s, q) ≤ chunk_lower_bound(c, q)`
    /// for each chunk `c` of `s` — pruning a super-chunk is exactly as
    /// sound as pruning each of its chunks, at a fraction of the sweep
    /// cost.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range or the query dimension differs.
    ///
    /// [`distance_squared`]: SignaturePlanes::distance_squared
    pub fn super_lower_bound(&self, s: usize, query: &PackedQuery) -> f64 {
        assert_eq!(query.dim, self.dim, "query/plane dimension mismatch");
        assert!(
            s < self.super_count(),
            "super-chunk index {s} out of range ({} super-chunks)",
            self.super_count()
        );
        Self::envelope_bound(self.chunks.super_env.block(s, self.words), query)
    }

    /// The envelope bound kernel shared by both index levels.
    fn envelope_bound(env: simd::ChunkEnvelope<'_>, query: &PackedQuery) -> f64 {
        match &query.kind {
            QueryKind::Ternary {
                plus,
                minus,
                present,
                active,
            } => {
                // Exact integer counts again, so the SIMD-dispatched bound
                // kernel and the sparse gather are bit-identical to the
                // scalar word loop.
                let lb = match active {
                    Some(active) => simd::chunk_bound_sparse(&env, plus, minus, present, active),
                    None => simd::chunk_bound(&env, plus, minus, present),
                };
                lb as f64
            }
            QueryKind::Extended { .. } => 0.0,
        }
    }

    /// [`distance_squared`](SignaturePlanes::distance_squared) with an
    /// early exit: returns `Some(d²)` — the exact, bit-identical distance
    /// — when `d² ≤ cutoff`, and `None` as soon as a partial sum proves
    /// `d² > cutoff`.
    ///
    /// Sound because both accumulations are monotone in the prefix: the
    /// ternary sum is exact integer addition of nonnegative per-word
    /// counts, and the extended sum adds nonnegative `f64` terms (round
    /// to nearest of `a + b` with `b ≥ 0` never drops below `a`). A
    /// rejected face therefore truly has `d² > cutoff` — it can neither
    /// win nor tie a best-so-far of `cutoff` — while an accepted face
    /// reports the same bits the full evaluation would.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range or the query dimension differs.
    pub fn distance_squared_within(
        &self,
        f: usize,
        query: &PackedQuery,
        cutoff: f64,
    ) -> Option<f64> {
        assert_eq!(query.dim, self.dim, "query/plane dimension mismatch");
        assert!(
            f < self.faces,
            "face index {f} out of range ({} faces)",
            self.faces
        );
        match &query.kind {
            QueryKind::Ternary { .. } => {
                let base = f * self.words;
                let (gp, gm) = (
                    &self.plus[base..base + self.words],
                    &self.minus[base..base + self.words],
                );
                Self::ternary_within(gp, gm, query, cutoff)
            }
            QueryKind::Extended { .. } => {
                let d = self.distance_squared(f, query);
                (d <= cutoff).then_some(d)
            }
        }
    }

    /// [`distance_squared_within`](SignaturePlanes::distance_squared_within)
    /// for the face in *slot* `slot` of chunk `c` (its id is
    /// `chunk_faces(c)[slot]`), read from the chunk-ordered lane copy of
    /// the planes: consecutive slots are consecutive in memory, so a leaf
    /// scan streams sequentially instead of gathering faces scattered
    /// across the main arena. Bit-identical to calling
    /// `distance_squared_within` on the face id.
    ///
    /// # Panics
    ///
    /// Panics if `c`/`slot` is out of range or the query dimension
    /// differs.
    pub fn chunk_slot_distance_within(
        &self,
        c: usize,
        slot: usize,
        query: &PackedQuery,
        cutoff: f64,
    ) -> Option<f64> {
        assert_eq!(query.dim, self.dim, "query/plane dimension mismatch");
        let faces = self.chunk_faces(c);
        assert!(
            slot < faces.len(),
            "slot {slot} out of range ({} faces in chunk {c})",
            faces.len()
        );
        match &query.kind {
            QueryKind::Ternary { .. } => {
                let pos = self.chunks.starts[c] as usize + slot;
                let (gp, gm) = self.chunks.lane(pos, self.words);
                Self::ternary_within(gp, gm, query, cutoff)
            }
            QueryKind::Extended { .. } => {
                let d = self.distance_squared(faces[slot] as usize, query);
                (d <= cutoff).then_some(d)
            }
        }
    }

    /// The early-exit ternary kernel shared by
    /// [`distance_squared_within`](SignaturePlanes::distance_squared_within)
    /// and
    /// [`chunk_slot_distance_within`](SignaturePlanes::chunk_slot_distance_within):
    /// `gp`/`gm` are the face's plus/minus planes, wherever they are
    /// stored.
    fn ternary_within(gp: &[u64], gm: &[u64], query: &PackedQuery, cutoff: f64) -> Option<f64> {
        let QueryKind::Ternary {
            plus,
            minus,
            present,
            active,
        } = &query.kind
        else {
            unreachable!("ternary_within requires a ternary query");
        };
        // Sparse queries touch so few words that the gathered sum is
        // cheaper than any partial-sum bookkeeping.
        if let Some(active) = active {
            let d = simd::d2_ternary_sparse(gp, gm, plus, minus, present, active) as f64;
            return (d <= cutoff).then_some(d);
        }
        simd::d2_ternary_within(gp, gm, plus, minus, present, cutoff).map(|d| d as f64)
    }
}

/// A sampling vector pre-packed for the plane kernels.
///
/// Basic (ternary) vectors become three bit-masks (`plus`/`minus`/
/// `present`); extended vectors become a flat value row plus a
/// `{0.0, 1.0}` presence mask. Build once per localization, reuse across
/// every face.
#[derive(Debug, Clone)]
pub struct PackedQuery {
    dim: usize,
    kind: QueryKind,
}

#[derive(Debug, Clone)]
enum QueryKind {
    Ternary {
        plus: Vec<u64>,
        minus: Vec<u64>,
        present: Vec<u64>,
        /// Indices of the words with any present pair, kept only when the
        /// query is sparse enough (≤ ¼ of the words nonzero) that gathered
        /// scalar loops beat the dense SIMD sweep. Since `plus`/`minus` ⊆
        /// `present` and every distance/bound term is masked by a query
        /// plane, restricting any kernel to these words is exact.
        active: Option<Vec<u32>>,
    },
    Extended {
        vals: Vec<f64>,
        mask: Vec<f64>,
    },
}

impl PackedQuery {
    /// Packs a sampling vector, choosing the ternary bit-mask form when
    /// every known component is in `{−1, 0, +1}` and the flat extended
    /// form otherwise.
    pub fn new(v: &SamplingVector) -> Self {
        let dim = v.len();
        if v.is_ternary() {
            let words = words_for(dim);
            let (mut plus, mut minus, mut present) =
                (vec![0u64; words], vec![0u64; words], vec![0u64; words]);
            for (i, c) in v.components().iter().enumerate() {
                if let Some(c) = c {
                    let (w, b) = (i / 64, i % 64);
                    present[w] |= 1 << b;
                    plus[w] |= u64::from(*c == 1.0) << b;
                    minus[w] |= u64::from(*c == -1.0) << b;
                }
            }
            // Real sampling vectors hear one small node group, so most
            // words carry no present pair at all; record the nonzero ones
            // when they are rare enough for gathers to win.
            let nonzero: Vec<u32> = present
                .iter()
                .enumerate()
                .filter(|(_, &w)| w != 0)
                .map(|(i, _)| i as u32)
                .collect();
            let active = (nonzero.len() * 4 <= words).then_some(nonzero);
            Self {
                dim,
                kind: QueryKind::Ternary {
                    plus,
                    minus,
                    present,
                    active,
                },
            }
        } else {
            let mut vals = Vec::with_capacity(dim);
            let mut mask = Vec::with_capacity(dim);
            for c in v.components() {
                vals.push(c.unwrap_or(0.0));
                mask.push(if c.is_some() { 1.0 } else { 0.0 });
            }
            Self {
                dim,
                kind: QueryKind::Extended { vals, mask },
            }
        }
    }

    /// Pair-component dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// `true` when the query took the ternary bit-mask fast path.
    pub fn is_packed_ternary(&self) -> bool {
        matches!(self.kind, QueryKind::Ternary { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::difference_norm_squared;

    fn planes_of(sigs: &[SignatureVector]) -> SignaturePlanes {
        SignaturePlanes::from_signatures(sigs[0].len(), sigs.iter())
    }

    #[test]
    fn ternary_distance_matches_scalar() {
        let sigs = vec![
            SignatureVector::new(vec![1, -1, 0, 1]),
            SignatureVector::new(vec![0, 0, 1, -1]),
        ];
        let planes = planes_of(&sigs);
        let v = SamplingVector::from_ternary(vec![Some(1), None, Some(-1), Some(0)]);
        let q = PackedQuery::new(&v);
        assert!(q.is_packed_ternary());
        for (f, sig) in sigs.iter().enumerate() {
            assert_eq!(
                planes.distance_squared(f, &q),
                difference_norm_squared(&v, sig)
            );
        }
    }

    #[test]
    fn extended_distance_matches_scalar_bit_for_bit() {
        let sigs = vec![
            SignatureVector::new(vec![1, 0, -1]),
            SignatureVector::new(vec![0, 1, 1]),
        ];
        let planes = planes_of(&sigs);
        let v = SamplingVector::new(vec![Some(1.0 / 3.0), None, Some(-0.7)]);
        let q = PackedQuery::new(&v);
        assert!(!q.is_packed_ternary());
        for (f, sig) in sigs.iter().enumerate() {
            let got = planes.distance_squared(f, &q);
            let want = difference_norm_squared(&v, sig);
            assert_eq!(got.to_bits(), want.to_bits(), "face {f}");
        }
    }

    #[test]
    fn crosses_word_boundary() {
        // 130 components spans three words; exercise bits 63, 64, 128.
        let dim = 130;
        let mut comps = vec![0i8; dim];
        comps[63] = 1;
        comps[64] = -1;
        comps[128] = 1;
        let sigs = vec![SignatureVector::new(comps)];
        let planes = planes_of(&sigs);
        let mut sample: Vec<Option<i8>> = vec![Some(0); dim];
        sample[63] = Some(-1); // opposite: 4
        sample[64] = None; // star: 0
        sample[129] = Some(1); // one-sided: 1  (plus comps[128] one-sided: 1)
        let v = SamplingVector::from_ternary(sample);
        let q = PackedQuery::new(&v);
        assert_eq!(planes.distance_squared(0, &q), 6.0);
        assert_eq!(
            planes.distance_squared(0, &q),
            difference_norm_squared(&v, &sigs[0])
        );
    }

    #[test]
    fn push_packed_round_trips() {
        let sig = SignatureVector::new(vec![1, 0, -1, 1, -1]);
        let mut a = SignaturePlanes::new(5);
        a.push_signature(&sig);
        let mut b = SignaturePlanes::new(5);
        b.push_packed(a.plus(0), a.minus(0));
        assert_eq!(a, b);
        assert_eq!(b.signature(0), sig);
        assert_eq!(b.components(0), sig.components());
    }

    #[test]
    fn all_star_query_is_zero_distance_everywhere() {
        let sigs = vec![SignatureVector::new(vec![1, -1, 0])];
        let planes = planes_of(&sigs);
        let v = SamplingVector::from_ternary(vec![None, None, None]);
        let q = PackedQuery::new(&v);
        assert_eq!(planes.distance_squared(0, &q), 0.0);
    }

    #[test]
    fn chunk_lower_bound_never_exceeds_chunk_min_distance() {
        let dim = 9;
        let sigs: Vec<SignatureVector> = (0..6)
            .map(|s| SignatureVector::new((0..dim).map(|i| ((i + s) % 3) as i8 - 1).collect()))
            .collect();
        let mut planes = planes_of(&sigs);
        // Three chunks with sparse keys ({0,1} {2,3} {4,5}) under two
        // super-chunks ({0..4} and {4,5}).
        planes.build_chunks(&[7, 7, 2, 2, 40, 40], &[1, 1, 1, 1, 9, 9]);
        assert!(planes.has_chunks());
        assert_eq!(planes.chunk_count(), 3);
        // Keys compact in ascending (super, chunk) order: (1,2) first.
        assert_eq!(planes.chunk_faces(0), &[2, 3]);
        assert_eq!(planes.chunk_faces(1), &[0, 1]);
        assert_eq!(planes.chunk_faces(2), &[4, 5]);
        assert_eq!(planes.super_count(), 2);
        assert_eq!(planes.super_chunks(0), 0..2);
        assert_eq!(planes.super_chunks(1), 2..3);
        for pat in 0..64u32 {
            let v = SamplingVector::from_ternary(
                (0..dim)
                    .map(|i| match (pat >> (i % 6)) & 1 {
                        0 => Some(((i % 3) as i8) - 1),
                        _ => None,
                    })
                    .collect(),
            );
            let q = PackedQuery::new(&v);
            for c in 0..planes.chunk_count() {
                let lb = planes.chunk_lower_bound(c, &q);
                let min = planes
                    .chunk_faces(c)
                    .iter()
                    .map(|&f| planes.distance_squared(f as usize, &q))
                    .fold(f64::INFINITY, f64::min);
                assert!(lb <= min, "chunk {c}: lb {lb} > min d² {min}");
            }
            for s in 0..planes.super_count() {
                let sb = planes.super_lower_bound(s, &q);
                for c in planes.super_chunks(s) {
                    assert!(
                        sb <= planes.chunk_lower_bound(c, &q),
                        "super {s} bound exceeds chunk {c} bound"
                    );
                }
            }
        }
    }

    #[test]
    fn singleton_chunk_bound_is_exact() {
        let sigs = vec![
            SignatureVector::new(vec![1, -1, 0, 1, 0]),
            SignatureVector::new(vec![0, 1, -1, -1, 1]),
        ];
        let mut planes = planes_of(&sigs);
        planes.build_chunks(&[0, 1], &[0, 0]);
        let v = SamplingVector::from_ternary(vec![Some(-1), Some(1), Some(0), None, Some(0)]);
        let q = PackedQuery::new(&v);
        for c in 0..2 {
            let f = planes.chunk_faces(c)[0] as usize;
            assert_eq!(
                planes.chunk_lower_bound(c, &q),
                planes.distance_squared(f, &q)
            );
        }
    }

    #[test]
    fn extended_queries_get_the_trivial_bound() {
        let sigs = vec![SignatureVector::new(vec![1, -1, 0])];
        let mut planes = planes_of(&sigs);
        planes.build_chunks(&[0], &[0]);
        let q = PackedQuery::new(&SamplingVector::new(vec![Some(0.5), None, Some(-0.25)]));
        assert_eq!(planes.chunk_lower_bound(0, &q), 0.0);
    }

    #[test]
    fn chunk_storage_is_accounted_and_shrunk() {
        let sigs: Vec<SignatureVector> = (0..4)
            .map(|s| SignatureVector::new(vec![(s % 3) as i8 - 1; 70]))
            .collect();
        let mut planes = planes_of(&sigs);
        let before = planes.memory_bytes();
        planes.build_chunks(&[0, 0, 1, 1], &[0, 0, 0, 0]);
        let with_chunks = planes.memory_bytes();
        // 2 chunks × 2 words × 5 envelopes × 8 bytes, plus the face order
        // and boundary arrays.
        assert!(
            with_chunks >= before + 2 * 2 * 5 * 8,
            "chunk arrays unaccounted: {before} -> {with_chunks}"
        );
        planes.shrink_to_fit();
        assert!(planes.memory_bytes() <= with_chunks);
        assert!(planes.has_chunks(), "shrinking must not drop the chunks");
    }

    #[test]
    #[should_panic(expected = "cannot append faces")]
    fn pushing_after_chunks_built_is_rejected() {
        let sig = SignatureVector::new(vec![1, 0, -1]);
        let mut planes = planes_of(std::slice::from_ref(&sig));
        planes.build_chunks(&[0], &[0]);
        planes.push_signature(&sig);
    }

    #[test]
    #[should_panic(expected = "must cover every face")]
    fn wrong_assignment_length_rejected() {
        let mut planes = planes_of(&[SignatureVector::new(vec![1, 0, -1])]);
        planes.build_chunks(&[0, 1], &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_rejected() {
        let planes = planes_of(&[SignatureVector::new(vec![1, 0])]);
        let q = PackedQuery::new(&SamplingVector::from_ternary(vec![Some(1)]));
        let _ = planes.distance_squared(0, &q);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_planes_rejected() {
        let mut planes = SignaturePlanes::new(3);
        planes.push_packed(&[0b011], &[0b001]);
    }

    #[test]
    #[should_panic(expected = "padding bits")]
    fn padding_bits_rejected() {
        let mut planes = SignaturePlanes::new(3);
        planes.push_packed(&[0b1000], &[0]);
    }
}
