//! Packed signature planes: branch-free `*`-aware distance kernels.
//!
//! A face signature is ternary (Definition 6), so a set of `F` signatures
//! over `P` pairs packs into two bit-planes of `⌈P/64⌉` words per face:
//! bit `i` of `plus` is set where component `i` is `+1`, bit `i` of
//! `minus` where it is `−1`, and both clear where it is `0`. A basic
//! sampling vector (Definition 4 with the `*` of eq. 6) packs the same
//! way plus a `present` mask that clears `*` pairs.
//!
//! With that layout the `*`-aware squared distance of Definitions 8/9
//! reduces to a handful of bitwise ops per 64 pairs. For a present pair
//! the component difference is one of three magnitudes:
//!
//! * opposite signs (`+1` vs `−1`) — contributes 4,
//! * exactly one of the two components nonzero — contributes 1,
//! * otherwise — contributes 0.
//!
//! so `d² = 4·popcount((vp & gm) | (vm & gp))
//!        + popcount(((vp | vm) ^ (gp | gm)) & present)`
//! summed over words. The result is an exact small integer, hence
//! bit-identical to the scalar [`difference_norm_squared`] sum (which
//! adds the same integers in f64, exactly).
//!
//! Extended vectors (Definition 10) carry arbitrary values in `[−1, 1]`
//! and fall back to a flat structure-of-arrays kernel: a contiguous
//! per-face component row and a `{0.0, 1.0}` presence mask replace the
//! `Option<f64>` branching, and terms are accumulated in pair order so
//! the result stays bit-identical to the scalar reference.
//!
//! [`difference_norm_squared`]: crate::vector::difference_norm_squared

use crate::vector::{SamplingVector, SignatureVector};

/// Bit-plane arena holding the signatures of every face of a map.
///
/// Face `f`'s planes live at word range `f·W .. (f+1)·W` of [`plus`] and
/// [`minus`] (`W` = [`words_per_face`]); its raw components additionally
/// live at `f·P .. (f+1)·P` of a flat `i8` row used by the extended-vector
/// fallback kernel (and to reconstruct [`SignatureVector`]s).
///
/// [`plus`]: SignaturePlanes::plus
/// [`minus`]: SignaturePlanes::minus
/// [`words_per_face`]: SignaturePlanes::words_per_face
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignaturePlanes {
    dim: usize,
    words: usize,
    faces: usize,
    plus: Vec<u64>,
    minus: Vec<u64>,
    comps: Vec<i8>,
}

/// Number of 64-bit words needed for `dim` pair components.
#[inline]
pub fn words_for(dim: usize) -> usize {
    dim.div_ceil(64)
}

/// Byte-spread tables for the packed→component decode: entry `b` carries
/// `lane` in byte `j` exactly where bit `j` of `b` is set (`0x01` for the
/// plus plane, `0xFF` — `−1` as `i8` — for the minus plane).
const SPREAD_PLUS: [u64; 256] = spread_table(0x01);
const SPREAD_MINUS: [u64; 256] = spread_table(0xFF);

const fn spread_table(lane: u8) -> [u64; 256] {
    let mut t = [0u64; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut w = 0u64;
        let mut j = 0;
        while j < 8 {
            if (b >> j) & 1 == 1 {
                w |= (lane as u64) << (8 * j);
            }
            j += 1;
        }
        t[b] = w;
        b += 1;
    }
    t
}

impl SignaturePlanes {
    /// Creates an empty arena for signatures of `dim` pair components.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "signature planes need at least one pair component");
        Self {
            dim,
            words: words_for(dim),
            faces: 0,
            plus: Vec::new(),
            minus: Vec::new(),
            comps: Vec::new(),
        }
    }

    /// Reserves storage for `additional` more faces, so a build loop with
    /// a known face-count bound pays no growth reallocations.
    pub fn reserve(&mut self, additional: usize) {
        self.plus.reserve(additional * self.words);
        self.minus.reserve(additional * self.words);
        self.comps.reserve(additional * self.dim);
    }

    /// Drops excess arena capacity (the counterpart of [`reserve`] once
    /// the final face count is known).
    ///
    /// [`reserve`]: SignaturePlanes::reserve
    pub fn shrink_to_fit(&mut self) {
        self.plus.shrink_to_fit();
        self.minus.shrink_to_fit();
        self.comps.shrink_to_fit();
    }

    /// Packs an iterator of signatures (all of dimension `dim`).
    pub fn from_signatures<'a, I>(dim: usize, signatures: I) -> Self
    where
        I: IntoIterator<Item = &'a SignatureVector>,
    {
        let mut planes = Self::new(dim);
        for sig in signatures {
            planes.push_signature(sig);
        }
        planes
    }

    /// Appends one face's signature, returning its face index.
    ///
    /// # Panics
    ///
    /// Panics if `sig.len() != self.dim()`.
    pub fn push_signature(&mut self, sig: &SignatureVector) -> usize {
        assert_eq!(sig.len(), self.dim, "signature/plane dimension mismatch");
        let base = self.plus.len();
        self.plus.resize(base + self.words, 0);
        self.minus.resize(base + self.words, 0);
        for (i, &c) in sig.components().iter().enumerate() {
            let (w, b) = (base + i / 64, i % 64);
            self.plus[w] |= u64::from(c == 1) << b;
            self.minus[w] |= u64::from(c == -1) << b;
        }
        self.comps.extend_from_slice(sig.components());
        self.faces += 1;
        self.faces - 1
    }

    /// Appends one face directly from packed words (the rasterizer path;
    /// avoids materializing a `SignatureVector`). Returns the face index.
    ///
    /// # Panics
    ///
    /// Panics if the word slices are not [`words_per_face`] long, if the
    /// two planes overlap (a component cannot be both `+1` and `−1`), or
    /// if padding bits past `dim` are set.
    ///
    /// [`words_per_face`]: SignaturePlanes::words_per_face
    pub fn push_packed(&mut self, plus: &[u64], minus: &[u64]) -> usize {
        assert_eq!(plus.len(), self.words, "plus plane has wrong word count");
        assert_eq!(minus.len(), self.words, "minus plane has wrong word count");
        let pad = self.padding_mask();
        for w in 0..self.words {
            assert_eq!(plus[w] & minus[w], 0, "overlapping signature planes");
            if w == self.words - 1 {
                assert_eq!((plus[w] | minus[w]) & pad, 0, "padding bits set");
            }
        }
        self.plus.extend_from_slice(plus);
        self.minus.extend_from_slice(minus);
        // Decode the component row eight components a step (this is on the
        // rasterizer's per-new-face path; per-element bit extraction would
        // be the build's hottest loop): spread each plane byte to eight
        // `+1` / `−1` bytes by table, then OR — the planes are disjoint
        // (asserted above), so the two spreads never collide.
        let base = self.comps.len();
        self.comps.resize(base + self.dim, 0);
        for (w, chunk) in self.comps[base..].chunks_mut(64).enumerate() {
            let (p, m) = (plus[w], minus[w]);
            for (g, group) in chunk.chunks_mut(8).enumerate() {
                let spread = SPREAD_PLUS[(p >> (8 * g)) as u8 as usize]
                    | SPREAD_MINUS[(m >> (8 * g)) as u8 as usize];
                let bytes = spread.to_le_bytes();
                // The last group of the last word may be shorter than 8.
                let take = group.len();
                for (c, &b) in group.iter_mut().zip(&bytes[..take]) {
                    *c = b as i8;
                }
            }
        }
        self.faces += 1;
        self.faces - 1
    }

    /// Mask of the unused high bits of the last word per face (zero when
    /// `dim` is a multiple of 64).
    #[inline]
    fn padding_mask(&self) -> u64 {
        match self.dim % 64 {
            0 => 0,
            r => !0u64 << r,
        }
    }

    /// Number of packed faces.
    #[inline]
    pub fn face_count(&self) -> usize {
        self.faces
    }

    /// Pair-component dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Words per face in each bit-plane (`⌈dim/64⌉`).
    #[inline]
    pub fn words_per_face(&self) -> usize {
        self.words
    }

    /// `+1` bit-plane of face `f`.
    #[inline]
    pub fn plus(&self, f: usize) -> &[u64] {
        &self.plus[f * self.words..(f + 1) * self.words]
    }

    /// `−1` bit-plane of face `f`.
    #[inline]
    pub fn minus(&self, f: usize) -> &[u64] {
        &self.minus[f * self.words..(f + 1) * self.words]
    }

    /// Raw ternary components of face `f` (the extended-kernel row).
    #[inline]
    pub fn components(&self, f: usize) -> &[i8] {
        &self.comps[f * self.dim..(f + 1) * self.dim]
    }

    /// Reconstructs the signature of face `f` as an owned vector.
    pub fn signature(&self, f: usize) -> SignatureVector {
        // Arena components are validated on entry (`push_signature` /
        // `push_packed` assertions), so skip per-component re-validation.
        SignatureVector::from_trusted(self.components(f).to_vec())
    }

    /// Heap bytes held by the arena.
    pub fn memory_bytes(&self) -> usize {
        (self.plus.capacity() + self.minus.capacity()) * std::mem::size_of::<u64>()
            + self.comps.capacity()
    }

    /// `*`-aware squared distance `‖V_d − V_s(f)‖²` between a packed
    /// sampling vector and face `f` (Definitions 8/9).
    ///
    /// Bit-identical to
    /// [`difference_norm_squared`](crate::vector::difference_norm_squared)
    /// on the unpacked vectors, for both ternary and extended queries.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range or the query dimension differs.
    #[inline]
    pub fn distance_squared(&self, f: usize, query: &PackedQuery) -> f64 {
        assert_eq!(query.dim, self.dim, "query/plane dimension mismatch");
        assert!(
            f < self.faces,
            "face index {f} out of range ({} faces)",
            self.faces
        );
        match &query.kind {
            QueryKind::Ternary {
                plus,
                minus,
                present,
            } => {
                let base = f * self.words;
                let mut acc = 0u64;
                for w in 0..self.words {
                    let gp = self.plus[base + w];
                    let gm = self.minus[base + w];
                    let (vp, vm, pr) = (plus[w], minus[w], present[w]);
                    // Opposite signs: |v − g| = 2 ⟹ contributes 4. Query
                    // bits are only set on present pairs, so no masking
                    // with `pr` is needed here.
                    let opp = (vp & gm) | (vm & gp);
                    // Exactly one side nonzero: contributes 1. The face
                    // planes carry bits on `*` pairs too, so mask those.
                    let one = ((vp | vm) ^ (gp | gm)) & pr;
                    acc += 4 * u64::from(opp.count_ones()) + u64::from(one.count_ones());
                }
                acc as f64
            }
            QueryKind::Extended { vals, mask } => {
                let row = &self.comps[f * self.dim..(f + 1) * self.dim];
                let mut acc = 0.0f64;
                // Accumulated strictly in pair order: a masked term is
                // exactly 0.0, so the partial sums match the scalar
                // reference bit-for-bit.
                for i in 0..self.dim {
                    let d = (vals[i] - row[i] as f64) * mask[i];
                    acc += d * d;
                }
                acc
            }
        }
    }
}

/// A sampling vector pre-packed for the plane kernels.
///
/// Basic (ternary) vectors become three bit-masks (`plus`/`minus`/
/// `present`); extended vectors become a flat value row plus a
/// `{0.0, 1.0}` presence mask. Build once per localization, reuse across
/// every face.
#[derive(Debug, Clone)]
pub struct PackedQuery {
    dim: usize,
    kind: QueryKind,
}

#[derive(Debug, Clone)]
enum QueryKind {
    Ternary {
        plus: Vec<u64>,
        minus: Vec<u64>,
        present: Vec<u64>,
    },
    Extended {
        vals: Vec<f64>,
        mask: Vec<f64>,
    },
}

impl PackedQuery {
    /// Packs a sampling vector, choosing the ternary bit-mask form when
    /// every known component is in `{−1, 0, +1}` and the flat extended
    /// form otherwise.
    pub fn new(v: &SamplingVector) -> Self {
        let dim = v.len();
        if v.is_ternary() {
            let words = words_for(dim);
            let (mut plus, mut minus, mut present) =
                (vec![0u64; words], vec![0u64; words], vec![0u64; words]);
            for (i, c) in v.components().iter().enumerate() {
                if let Some(c) = c {
                    let (w, b) = (i / 64, i % 64);
                    present[w] |= 1 << b;
                    plus[w] |= u64::from(*c == 1.0) << b;
                    minus[w] |= u64::from(*c == -1.0) << b;
                }
            }
            Self {
                dim,
                kind: QueryKind::Ternary {
                    plus,
                    minus,
                    present,
                },
            }
        } else {
            let mut vals = Vec::with_capacity(dim);
            let mut mask = Vec::with_capacity(dim);
            for c in v.components() {
                vals.push(c.unwrap_or(0.0));
                mask.push(if c.is_some() { 1.0 } else { 0.0 });
            }
            Self {
                dim,
                kind: QueryKind::Extended { vals, mask },
            }
        }
    }

    /// Pair-component dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// `true` when the query took the ternary bit-mask fast path.
    pub fn is_packed_ternary(&self) -> bool {
        matches!(self.kind, QueryKind::Ternary { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::difference_norm_squared;

    fn planes_of(sigs: &[SignatureVector]) -> SignaturePlanes {
        SignaturePlanes::from_signatures(sigs[0].len(), sigs.iter())
    }

    #[test]
    fn ternary_distance_matches_scalar() {
        let sigs = vec![
            SignatureVector::new(vec![1, -1, 0, 1]),
            SignatureVector::new(vec![0, 0, 1, -1]),
        ];
        let planes = planes_of(&sigs);
        let v = SamplingVector::from_ternary(vec![Some(1), None, Some(-1), Some(0)]);
        let q = PackedQuery::new(&v);
        assert!(q.is_packed_ternary());
        for (f, sig) in sigs.iter().enumerate() {
            assert_eq!(
                planes.distance_squared(f, &q),
                difference_norm_squared(&v, sig)
            );
        }
    }

    #[test]
    fn extended_distance_matches_scalar_bit_for_bit() {
        let sigs = vec![
            SignatureVector::new(vec![1, 0, -1]),
            SignatureVector::new(vec![0, 1, 1]),
        ];
        let planes = planes_of(&sigs);
        let v = SamplingVector::new(vec![Some(1.0 / 3.0), None, Some(-0.7)]);
        let q = PackedQuery::new(&v);
        assert!(!q.is_packed_ternary());
        for (f, sig) in sigs.iter().enumerate() {
            let got = planes.distance_squared(f, &q);
            let want = difference_norm_squared(&v, sig);
            assert_eq!(got.to_bits(), want.to_bits(), "face {f}");
        }
    }

    #[test]
    fn crosses_word_boundary() {
        // 130 components spans three words; exercise bits 63, 64, 128.
        let dim = 130;
        let mut comps = vec![0i8; dim];
        comps[63] = 1;
        comps[64] = -1;
        comps[128] = 1;
        let sigs = vec![SignatureVector::new(comps)];
        let planes = planes_of(&sigs);
        let mut sample: Vec<Option<i8>> = vec![Some(0); dim];
        sample[63] = Some(-1); // opposite: 4
        sample[64] = None; // star: 0
        sample[129] = Some(1); // one-sided: 1  (plus comps[128] one-sided: 1)
        let v = SamplingVector::from_ternary(sample);
        let q = PackedQuery::new(&v);
        assert_eq!(planes.distance_squared(0, &q), 6.0);
        assert_eq!(
            planes.distance_squared(0, &q),
            difference_norm_squared(&v, &sigs[0])
        );
    }

    #[test]
    fn push_packed_round_trips() {
        let sig = SignatureVector::new(vec![1, 0, -1, 1, -1]);
        let mut a = SignaturePlanes::new(5);
        a.push_signature(&sig);
        let mut b = SignaturePlanes::new(5);
        b.push_packed(a.plus(0), a.minus(0));
        assert_eq!(a, b);
        assert_eq!(b.signature(0), sig);
        assert_eq!(b.components(0), sig.components());
    }

    #[test]
    fn all_star_query_is_zero_distance_everywhere() {
        let sigs = vec![SignatureVector::new(vec![1, -1, 0])];
        let planes = planes_of(&sigs);
        let v = SamplingVector::from_ternary(vec![None, None, None]);
        let q = PackedQuery::new(&v);
        assert_eq!(planes.distance_squared(0, &q), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_rejected() {
        let planes = planes_of(&[SignatureVector::new(vec![1, 0])]);
        let q = PackedQuery::new(&SamplingVector::from_ternary(vec![Some(1)]));
        let _ = planes.distance_squared(0, &q);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_planes_rejected() {
        let mut planes = SignaturePlanes::new(3);
        planes.push_packed(&[0b011], &[0b001]);
    }

    #[test]
    #[should_panic(expected = "padding bits")]
    fn padding_bits_rejected() {
        let mut planes = SignaturePlanes::new(3);
        planes.push_packed(&[0b1000], &[0]);
    }
}
