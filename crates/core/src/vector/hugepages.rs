//! Best-effort huge-page backing for large, latency-critical arenas.
//!
//! The indexed matcher streams hundreds of megabytes of bit-planes and
//! envelopes; on 4 KiB pages every candidate face costs one or two dTLB
//! walks, which on this class of machine is comparable to the distance
//! kernel itself. When the kernel supports it, collapsing the arenas onto
//! 2 MiB transparent huge pages removes almost all of that overhead.
//!
//! Everything here is *advisory*: `advise` asks via `madvise(2)` —
//! `MADV_HUGEPAGE` to opt the range into transparent huge pages (required
//! when THP runs in `madvise` mode, as it commonly does) and
//! `MADV_COLLAPSE` (Linux ≥ 6.1) to collapse the already-populated range
//! synchronously instead of waiting for `khugepaged`. Failures are
//! ignored — the mapping keeps working on small pages, just slower — so
//! the call is safe to make unconditionally. On targets other than
//! `linux` + `x86_64` it is a no-op.
//!
//! No libc dependency: the two `madvise` calls go through a raw syscall
//! (the workspace's no-new-dependencies rule predates this module).
// Sanctioned unsafe island, like `vector::simd`: the only unsafe code is
// an advisory syscall on an address range derived from a live slice.
#![allow(unsafe_code)]

/// Requests (best-effort) 2 MiB transparent-huge-page backing for the
/// given slice's memory. No-op on empty slices, foreign targets, and
/// kernels without THP/`MADV_COLLAPSE`; never fails.
pub(crate) fn advise<T>(data: &[T]) {
    let bytes = std::mem::size_of_val(data);
    if bytes == 0 {
        return;
    }
    imp::advise_range(data.as_ptr().cast(), bytes);
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    /// `madvise(2)` syscall number on `x86_64`.
    const SYS_MADVISE: usize = 28;
    /// Opt the range into transparent huge pages.
    const MADV_HUGEPAGE: usize = 14;
    /// Synchronously collapse the range onto huge pages (Linux ≥ 6.1).
    const MADV_COLLAPSE: usize = 25;
    const PAGE: usize = 4096;

    pub(super) fn advise_range(ptr: *const u8, bytes: usize) {
        // madvise wants a page-aligned start; shrink the range inward to
        // the pages fully covered by the allocation so the advice never
        // touches a neighbouring object's pages.
        let addr = ptr as usize;
        let start = addr.next_multiple_of(PAGE);
        let end = (addr + bytes) & !(PAGE - 1);
        if start >= end {
            return;
        }
        madvise(start, end - start, MADV_HUGEPAGE);
        madvise(start, end - start, MADV_COLLAPSE);
    }

    fn madvise(addr: usize, len: usize, advice: usize) {
        let mut ret: isize;
        // SAFETY: madvise is purely advisory for these two advice values
        // — it never unmaps, remaps, or alters the contents of the range,
        // and unknown advice values just return EINVAL. The asm clobbers
        // only what the syscall ABI says it clobbers (rax, rcx, r11).
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") SYS_MADVISE as isize => ret,
                in("rdi") addr,
                in("rsi") len,
                in("rdx") advice,
                out("rcx") _,
                out("r11") _,
                options(nostack),
            );
        }
        // Best-effort: ENOMEM/EINVAL (old kernel, THP disabled) are fine.
        let _ = ret;
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod imp {
    pub(super) fn advise_range(_ptr: *const u8, _bytes: usize) {}
}

#[cfg(test)]
mod tests {
    use super::advise;

    #[test]
    fn advise_is_harmless_on_any_slice() {
        advise::<u64>(&[]);
        let small = vec![1u64; 8];
        advise(&small);
        // Large enough to span huge-page-aligned interior pages; the data
        // must be untouched afterwards.
        let big = vec![0xabcd_ef01_2345_6789u64; 1 << 19];
        advise(&big);
        assert!(big.iter().all(|&w| w == 0xabcd_ef01_2345_6789));
    }
}
