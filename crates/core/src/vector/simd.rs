//! Runtime-dispatched SIMD kernels for the ternary bit-plane distance and
//! the chunk-envelope lower bound.
//!
//! The ternary squared distance of Definitions 8/9 over packed planes is
//!
//! ```text
//! d² = 4·popcount((vp & gm) | (vm & gp))
//!    +   popcount(((vp | vm) ^ (gp | gm)) & present)
//! ```
//!
//! summed over `⌈dim/64⌉` words — pure bitwise logic plus popcounts, so it
//! vectorizes perfectly: every lane computes exact integer counts and the
//! final sum is the same `u64` no matter how the words are grouped. The
//! chunk lower bound ([`chunk_bound`]) has the same shape with a few more
//! logic ops per word. Every kernel here is therefore **bit-identical** to
//! the portable scalar loop by construction (and the `simd_equivalence`
//! differential suite checks it on every dimension shape).
//!
//! Dispatch is resolved at runtime, once, from CPU feature detection:
//!
//! * `x86_64` — AVX2 (4 words/step, vpshufb nibble-LUT popcount folded by
//!   `psadbw`), else SSE2 + `popcnt` (2 words/step logic, scalar counts),
//! * `aarch64` — NEON (2 words/step, `vcnt` byte counts),
//! * anywhere else, or when forced — the portable scalar word loop.
//!
//! [`force_kernel`] pins the choice (tests use it to keep the scalar
//! fallback exercised on every target and to diff kernels against each
//! other); forcing a kernel the CPU does not support is refused, so the
//! dispatch can never call an unsupported instruction.
// The crate denies unsafe code; this module is the sanctioned exception
// for `std::arch` intrinsics. Safety rests on two invariants, kept local:
// every `#[target_feature]` kernel is only reachable through `dispatch()`
// after the matching CPU feature was detected (or statically guaranteed),
// and every intrinsic touches memory only through `loadu` on in-bounds
// slice pointers.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// One of the ternary-distance kernel implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// The portable scalar word loop (every target).
    Scalar,
    /// SSE2 128-bit logic with `popcnt` counts (`x86_64`).
    Sse2,
    /// AVX2 256-bit logic with vpshufb nibble-LUT popcount (`x86_64`).
    Avx2,
    /// NEON 128-bit logic with `vcnt` byte counts (`aarch64`).
    Neon,
}

/// Forced-kernel override: 0 = auto (detected), else `KernelKind` + 1.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Detected best kernel, resolved once per process.
static DETECTED: OnceLock<KernelKind> = OnceLock::new();

fn encode(k: KernelKind) -> u8 {
    match k {
        KernelKind::Scalar => 1,
        KernelKind::Sse2 => 2,
        KernelKind::Avx2 => 3,
        KernelKind::Neon => 4,
    }
}

fn decode(v: u8) -> Option<KernelKind> {
    match v {
        1 => Some(KernelKind::Scalar),
        2 => Some(KernelKind::Sse2),
        3 => Some(KernelKind::Avx2),
        4 => Some(KernelKind::Neon),
        _ => None,
    }
}

/// The kernels this CPU can run, always starting with
/// [`KernelKind::Scalar`].
pub fn available_kernels() -> Vec<KernelKind> {
    let mut kinds = vec![KernelKind::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        // SSE2 is part of the x86_64 baseline; the SSE2 kernel's counts
        // additionally want the `popcnt` instruction.
        if is_x86_feature_detected!("popcnt") {
            kinds.push(KernelKind::Sse2);
        }
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("popcnt") {
            kinds.push(KernelKind::Avx2);
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is part of the aarch64 baseline.
        kinds.push(KernelKind::Neon);
    }
    kinds
}

fn detect() -> KernelKind {
    // The last (most capable) available kernel wins.
    *available_kernels()
        .last()
        .expect("available_kernels always contains Scalar")
}

/// The kernel the next distance evaluation will dispatch to: the forced
/// override if one is set, else the detected best for this CPU.
pub fn active_kernel() -> KernelKind {
    decode(FORCED.load(Ordering::Relaxed)).unwrap_or_else(|| *DETECTED.get_or_init(detect))
}

/// Pins dispatch to `kernel` (`None` restores auto-detection). Returns
/// `false` — leaving the current setting untouched — when this CPU cannot
/// run the requested kernel, so a forced kernel is always safe to call.
///
/// Process-global: concurrent matching threads all see the override. This
/// is a test/diagnostics hook, not a tuning API.
pub fn force_kernel(kernel: Option<KernelKind>) -> bool {
    match kernel {
        None => {
            FORCED.store(0, Ordering::Relaxed);
            true
        }
        Some(k) => {
            if !available_kernels().contains(&k) {
                return false;
            }
            FORCED.store(encode(k), Ordering::Relaxed);
            true
        }
    }
}

/// Ternary-plane squared distance over equal-length word slices, as an
/// exact integer: `4·|opposite-sign pairs| + |one-sided pairs|`.
///
/// `gp`/`gm` are one face's plus/minus planes; `vp`/`vm`/`pr` the packed
/// query's plus/minus/present masks. Dispatches to the active kernel.
///
/// # Panics
///
/// Panics (in debug builds) if the slices disagree in length.
#[inline]
pub(crate) fn d2_ternary(gp: &[u64], gm: &[u64], vp: &[u64], vm: &[u64], pr: &[u64]) -> u64 {
    debug_assert!(
        gp.len() == gm.len()
            && gp.len() == vp.len()
            && gp.len() == vm.len()
            && gp.len() == pr.len()
    );
    match active_kernel() {
        KernelKind::Scalar => d2_ternary_scalar(gp, gm, vp, vm, pr),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Sse2/Avx2 only become active after `available_kernels`
        // confirmed the CPU features (sse2 is the x86_64 baseline; popcnt
        // and avx2 are runtime-detected).
        KernelKind::Sse2 => unsafe { d2_ternary_sse2(gp, gm, vp, vm, pr) },
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2 => unsafe { d2_ternary_avx2(gp, gm, vp, vm, pr) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is part of the aarch64 baseline.
        KernelKind::Neon => unsafe { d2_ternary_neon(gp, gm, vp, vm, pr) },
        // A kernel for a foreign architecture can never be forced
        // (`available_kernels` refuses it) nor detected.
        #[allow(unreachable_patterns)]
        _ => d2_ternary_scalar(gp, gm, vp, vm, pr),
    }
}

/// The portable fallback: one word at a time, two popcounts per word.
pub(crate) fn d2_ternary_scalar(gp: &[u64], gm: &[u64], vp: &[u64], vm: &[u64], pr: &[u64]) -> u64 {
    let mut acc = 0u64;
    for w in 0..gp.len() {
        // Opposite signs: |v − g| = 2 ⟹ contributes 4. Query bits are
        // only set on present pairs, so no masking with `pr` is needed.
        let opp = (vp[w] & gm[w]) | (vm[w] & gp[w]);
        // Exactly one side nonzero: contributes 1. The face planes carry
        // bits on `*` pairs too, so mask those.
        let one = ((vp[w] | vm[w]) ^ (gp[w] | gm[w])) & pr[w];
        acc += 4 * u64::from(opp.count_ones()) + u64::from(one.count_ones());
    }
    acc
}

/// Nibble-LUT byte popcount folded to per-lane u64 sums (Mula's method):
/// per-byte counts (≤ 8, no overflow) summed by `psadbw` against zero.
///
/// # Safety
///
/// Requires the `avx2` CPU feature; `lut`/`low` must be the nibble
/// lookup table and `0x0f` byte mask.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn popcount_sad(
    v: std::arch::x86_64::__m256i,
    lut: std::arch::x86_64::__m256i,
    low: std::arch::x86_64::__m256i,
) -> std::arch::x86_64::__m256i {
    use std::arch::x86_64::*;
    // Nibble-indexed byte counts; the shift crosses byte boundaries
    // but the low-nibble mask discards everything that leaked in.
    let lo = _mm256_shuffle_epi8(lut, _mm256_and_si256(v, low));
    let hi = _mm256_shuffle_epi8(lut, _mm256_and_si256(_mm256_srli_epi32::<4>(v), low));
    _mm256_sad_epu8(_mm256_add_epi8(lo, hi), _mm256_setzero_si256())
}

/// Horizontal sum of the four u64 lanes.
///
/// # Safety
///
/// Requires the `avx2` CPU feature.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hsum(v: std::arch::x86_64::__m256i) -> u64 {
    use std::arch::x86_64::*;
    let s = _mm_add_epi64(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
    (_mm_cvtsi128_si64(s) as u64).wrapping_add(_mm_extract_epi64::<1>(s) as u64)
}

/// The AVX2 nibble lookup table for [`popcount_sad`].
///
/// # Safety
///
/// Requires the `avx2` CPU feature.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn popcount_lut() -> std::arch::x86_64::__m256i {
    std::arch::x86_64::_mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, //
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    )
}

/// AVX2: 4 words per step. Popcount is Mula's vpshufb nibble lookup
/// ([`popcount_sad`]) accumulated separately for the weight-4 and
/// weight-1 terms, with the scalar loop covering the ≤ 3 tail words.
///
/// # Safety
///
/// Requires the `avx2` and `popcnt` CPU features (the tail loop's
/// `count_ones`), and equal-length input slices.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,popcnt")]
unsafe fn d2_ternary_avx2(gp: &[u64], gm: &[u64], vp: &[u64], vm: &[u64], pr: &[u64]) -> u64 {
    use std::arch::x86_64::*;

    let words = gp.len();
    let lut = popcount_lut();
    let low = _mm256_set1_epi8(0x0f);
    let mut acc_opp = _mm256_setzero_si256();
    let mut acc_one = _mm256_setzero_si256();
    let mut w = 0usize;
    while w + 4 <= words {
        // SAFETY: w + 4 ≤ len of every slice; unaligned loads.
        let gpv = _mm256_loadu_si256(gp.as_ptr().add(w).cast());
        let gmv = _mm256_loadu_si256(gm.as_ptr().add(w).cast());
        let vpv = _mm256_loadu_si256(vp.as_ptr().add(w).cast());
        let vmv = _mm256_loadu_si256(vm.as_ptr().add(w).cast());
        let prv = _mm256_loadu_si256(pr.as_ptr().add(w).cast());
        let opp = _mm256_or_si256(_mm256_and_si256(vpv, gmv), _mm256_and_si256(vmv, gpv));
        let one = _mm256_and_si256(
            _mm256_xor_si256(_mm256_or_si256(vpv, vmv), _mm256_or_si256(gpv, gmv)),
            prv,
        );
        acc_opp = _mm256_add_epi64(acc_opp, popcount_sad(opp, lut, low));
        acc_one = _mm256_add_epi64(acc_one, popcount_sad(one, lut, low));
        w += 4;
    }

    let mut acc = 4 * hsum(acc_opp) + hsum(acc_one);
    if w < words {
        acc += d2_ternary_scalar(&gp[w..], &gm[w..], &vp[w..], &vm[w..], &pr[w..]);
    }
    acc
}

/// SSE2 + popcnt: 128-bit logic ops (halving the bitwise work versus the
/// scalar loop), counts taken per extracted u64 with hardware `popcnt`.
///
/// # Safety
///
/// Requires the `sse2` (x86_64 baseline) and `popcnt` CPU features, and
/// equal-length input slices.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2,popcnt")]
unsafe fn d2_ternary_sse2(gp: &[u64], gm: &[u64], vp: &[u64], vm: &[u64], pr: &[u64]) -> u64 {
    use std::arch::x86_64::*;

    #[inline]
    #[target_feature(enable = "sse2,popcnt")]
    unsafe fn popcount2(v: __m128i) -> u64 {
        use std::arch::x86_64::*;
        // `pextrq` is SSE4.1; `punpckhqdq` + `movq` keep this SSE2-only.
        let lo = _mm_cvtsi128_si64(v) as u64;
        let hi = _mm_cvtsi128_si64(_mm_unpackhi_epi64(v, v)) as u64;
        u64::from(lo.count_ones()) + u64::from(hi.count_ones())
    }

    let words = gp.len();
    let mut acc = 0u64;
    let mut w = 0usize;
    while w + 2 <= words {
        // SAFETY: w + 2 ≤ len of every slice; unaligned loads.
        let gpv = _mm_loadu_si128(gp.as_ptr().add(w).cast());
        let gmv = _mm_loadu_si128(gm.as_ptr().add(w).cast());
        let vpv = _mm_loadu_si128(vp.as_ptr().add(w).cast());
        let vmv = _mm_loadu_si128(vm.as_ptr().add(w).cast());
        let prv = _mm_loadu_si128(pr.as_ptr().add(w).cast());
        let opp = _mm_or_si128(_mm_and_si128(vpv, gmv), _mm_and_si128(vmv, gpv));
        let one = _mm_and_si128(
            _mm_xor_si128(_mm_or_si128(vpv, vmv), _mm_or_si128(gpv, gmv)),
            prv,
        );
        acc += 4 * popcount2(opp) + popcount2(one);
        w += 2;
    }
    if w < words {
        acc += d2_ternary_scalar(&gp[w..], &gm[w..], &vp[w..], &vm[w..], &pr[w..]);
    }
    acc
}

/// NEON: 2 words per step, `vcnt` per-byte popcounts folded by `vaddv`
/// (16 bytes × ≤ 8 bits = 128 fits the u8 horizontal sum).
///
/// # Safety
///
/// Requires the `neon` CPU feature (aarch64 baseline) and equal-length
/// input slices.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn d2_ternary_neon(gp: &[u64], gm: &[u64], vp: &[u64], vm: &[u64], pr: &[u64]) -> u64 {
    use std::arch::aarch64::*;

    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn popcount2(v: uint64x2_t) -> u64 {
        u64::from(vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(v))))
    }

    let words = gp.len();
    let mut acc = 0u64;
    let mut w = 0usize;
    while w + 2 <= words {
        // SAFETY: w + 2 ≤ len of every slice; vld1q has no alignment
        // requirement beyond the element's.
        let gpv = vld1q_u64(gp.as_ptr().add(w));
        let gmv = vld1q_u64(gm.as_ptr().add(w));
        let vpv = vld1q_u64(vp.as_ptr().add(w));
        let vmv = vld1q_u64(vm.as_ptr().add(w));
        let prv = vld1q_u64(pr.as_ptr().add(w));
        let opp = vorrq_u64(vandq_u64(vpv, gmv), vandq_u64(vmv, gpv));
        let one = vandq_u64(veorq_u64(vorrq_u64(vpv, vmv), vorrq_u64(gpv, gmv)), prv);
        acc += 4 * popcount2(opp) + popcount2(one);
        w += 2;
    }
    if w < words {
        acc += d2_ternary_scalar(&gp[w..], &gm[w..], &vp[w..], &vm[w..], &pr[w..]);
    }
    acc
}

/// Sparse ternary distance: the dense sum restricted to `active` — the
/// word indices whose `present` mask is nonzero. Every distance term is
/// masked by a query plane (`vp`/`vm` for the weight-4 term, `pr` for the
/// weight-1 term) and the ternary planes satisfy `vp | vm ⊆ pr`, so words
/// outside `active` contribute exactly 0: the restricted sum is
/// bit-identical to [`d2_ternary`] over all words.
///
/// A gathered scalar loop on purpose — real sampling vectors hear a small
/// node group, leaving a handful of nonzero words scattered across
/// hundreds, and skipping the zero words beats any dense SIMD sweep.
///
/// # Panics
///
/// Panics if an index in `active` is out of range (slice indexing).
pub(crate) fn d2_ternary_sparse(
    gp: &[u64],
    gm: &[u64],
    vp: &[u64],
    vm: &[u64],
    pr: &[u64],
    active: &[u32],
) -> u64 {
    let mut acc = 0u64;
    for &w in active {
        let w = w as usize;
        let opp = (vp[w] & gm[w]) | (vm[w] & gp[w]);
        let one = ((vp[w] | vm[w]) ^ (gp[w] | gm[w])) & pr[w];
        acc += 4 * u64::from(opp.count_ones()) + u64::from(one.count_ones());
    }
    acc
}

/// [`d2_ternary`] with an early exit: returns `Some(d²)` — the exact
/// total — when `d² ≤ cutoff`, and `None` as soon as a partial sum
/// proves `d² > cutoff`. Partial sums are monotone (nonnegative integer
/// terms), so *which* prefixes a kernel checks cannot change the result:
/// a total ≤ `cutoff` passes every check, a total > `cutoff` fails the
/// final one at the latest. The cutoff comparison is performed in `f64`,
/// exactly as the caller would compare the returned distance.
///
/// Keeping the check loop inside one dispatched kernel matters: the
/// indexed matcher calls this per candidate face, and a per-block
/// dispatch (the fallback path) costs as much as the arithmetic it
/// guards.
///
/// # Panics
///
/// Panics (in debug builds) if the slices disagree in length.
#[inline]
pub(crate) fn d2_ternary_within(
    gp: &[u64],
    gm: &[u64],
    vp: &[u64],
    vm: &[u64],
    pr: &[u64],
    cutoff: f64,
) -> Option<u64> {
    debug_assert!(
        gp.len() == gm.len()
            && gp.len() == vp.len()
            && gp.len() == vm.len()
            && gp.len() == pr.len()
    );
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 only becomes active after `available_kernels`
        // confirmed the CPU features.
        KernelKind::Avx2 => unsafe { d2_ternary_within_avx2(gp, gm, vp, vm, pr, cutoff) },
        _ => d2_ternary_within_blocked(gp, gm, vp, vm, pr, cutoff),
    }
}

/// Early-exit fallback for the non-AVX2 tiers: [`d2_ternary`] over
/// 32-word blocks with a cutoff check between blocks.
fn d2_ternary_within_blocked(
    gp: &[u64],
    gm: &[u64],
    vp: &[u64],
    vm: &[u64],
    pr: &[u64],
    cutoff: f64,
) -> Option<u64> {
    const BLOCK: usize = 32;
    let words = gp.len();
    let mut acc = 0u64;
    let mut w = 0usize;
    while w < words {
        let e = (w + BLOCK).min(words);
        // Integer addition is exact and associative, so the blocked
        // total equals the one-pass total bit-for-bit.
        acc += d2_ternary(&gp[w..e], &gm[w..e], &vp[w..e], &vm[w..e], &pr[w..e]);
        if acc as f64 > cutoff {
            return None;
        }
        w = e;
    }
    // Redundant with the in-loop checks except for empty input, where no
    // block ever ran.
    (acc as f64 <= cutoff).then_some(acc)
}

/// AVX2 early-exit distance: [`d2_ternary_avx2`]'s loop in groups of 8
/// vector steps (32 words), folding the accumulators and testing the
/// cutoff between groups — one dispatch and one `target_feature`
/// boundary per face instead of one per block.
///
/// # Safety
///
/// Requires the `avx2` and `popcnt` CPU features (the tail loop's
/// `count_ones`), and equal-length input slices.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,popcnt")]
unsafe fn d2_ternary_within_avx2(
    gp: &[u64],
    gm: &[u64],
    vp: &[u64],
    vm: &[u64],
    pr: &[u64],
    cutoff: f64,
) -> Option<u64> {
    use std::arch::x86_64::*;

    let words = gp.len();
    let vec_end = words & !3;
    let lut = popcount_lut();
    let low = _mm256_set1_epi8(0x0f);
    let mut acc = 0u64;
    let mut w = 0usize;
    while w < vec_end {
        let group_end = (w + 32).min(vec_end);
        let mut acc_opp = _mm256_setzero_si256();
        let mut acc_one = _mm256_setzero_si256();
        while w < group_end {
            // A single sequential face stream defeats the hardware
            // prefetcher at this machine's L3/DRAM latency; pulling the
            // face planes ~1 KiB ahead (past the slice end is fine — the
            // pointer is never dereferenced, and in the matcher's lane
            // arena it lands on the next face) keeps the loads pipelined.
            _mm_prefetch::<_MM_HINT_T0>(gp.as_ptr().wrapping_add(w + 512).cast());
            _mm_prefetch::<_MM_HINT_T0>(gm.as_ptr().wrapping_add(w + 512).cast());
            // SAFETY: w + 4 ≤ vec_end ≤ len of every slice; unaligned
            // loads.
            let gpv = _mm256_loadu_si256(gp.as_ptr().add(w).cast());
            let gmv = _mm256_loadu_si256(gm.as_ptr().add(w).cast());
            let vpv = _mm256_loadu_si256(vp.as_ptr().add(w).cast());
            let vmv = _mm256_loadu_si256(vm.as_ptr().add(w).cast());
            let prv = _mm256_loadu_si256(pr.as_ptr().add(w).cast());
            let opp = _mm256_or_si256(_mm256_and_si256(vpv, gmv), _mm256_and_si256(vmv, gpv));
            let one = _mm256_and_si256(
                _mm256_xor_si256(_mm256_or_si256(vpv, vmv), _mm256_or_si256(gpv, gmv)),
                prv,
            );
            acc_opp = _mm256_add_epi64(acc_opp, popcount_sad(opp, lut, low));
            acc_one = _mm256_add_epi64(acc_one, popcount_sad(one, lut, low));
            w += 4;
        }
        acc += 4 * hsum(acc_opp) + hsum(acc_one);
        if acc as f64 > cutoff {
            return None;
        }
    }
    if w < words {
        acc += d2_ternary_scalar(&gp[w..], &gm[w..], &vp[w..], &vm[w..], &pr[w..]);
    }
    (acc as f64 <= cutoff).then_some(acc)
}

/// Per-word envelope planes of one chunk summary, borrowed from the
/// arena. See `SignaturePlanes::chunk_lower_bound` for what each plane
/// certifies; all five slices have the same length as the query words.
pub(crate) struct ChunkEnvelope<'a> {
    /// OR of the member faces' `+1` planes.
    pub union_plus: &'a [u64],
    /// AND of the member faces' `+1` planes.
    pub inter_plus: &'a [u64],
    /// OR of the member faces' `−1` planes.
    pub union_minus: &'a [u64],
    /// AND of the member faces' `−1` planes.
    pub inter_minus: &'a [u64],
    /// AND of the member faces' known (`+1 | −1`) masks.
    pub inter_known: &'a [u64],
}

/// Chunk-envelope lower bound on the ternary distance, as an exact
/// integer. Per word
///
/// ```text
/// lb4 = (vp & inter_minus) | (vm & inter_plus)          // all opposite: ≥ 4
/// dis = (vp & ¬union_plus) | (vm & ¬union_minus)        // none agree:  ≥ 1
/// zvk = pr & ¬(vp | vm) & inter_known                   // 0 vs known:  ≥ 1
/// acc += 4·pop(lb4) + pop((dis | zvk) & ¬lb4)
/// ```
///
/// Dispatches AVX2 when active; every other kernel (the SSE2/NEON
/// distance tiers included) takes the scalar loop — the bound pass is a
/// per-query sweep over all chunks, and only the widest kernel pays for
/// the extra plumbing.
///
/// # Panics
///
/// Panics (in debug builds) if the slices disagree in length.
#[inline]
pub(crate) fn chunk_bound(env: &ChunkEnvelope<'_>, vp: &[u64], vm: &[u64], pr: &[u64]) -> u64 {
    debug_assert!(
        env.union_plus.len() == vp.len()
            && env.inter_plus.len() == vp.len()
            && env.union_minus.len() == vp.len()
            && env.inter_minus.len() == vp.len()
            && env.inter_known.len() == vp.len()
            && vm.len() == vp.len()
            && pr.len() == vp.len()
    );
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 only becomes active after `available_kernels`
        // confirmed the avx2 and popcnt features.
        KernelKind::Avx2 => unsafe { chunk_bound_avx2(env, vp, vm, pr) },
        _ => chunk_bound_scalar(env, vp, vm, pr),
    }
}

/// The portable bound loop: one word at a time, two popcounts per word.
pub(crate) fn chunk_bound_scalar(
    env: &ChunkEnvelope<'_>,
    vp: &[u64],
    vm: &[u64],
    pr: &[u64],
) -> u64 {
    let mut acc = 0u64;
    for w in 0..vp.len() {
        // All faces opposite the query sign: at least 4.
        let lb4 = (vp[w] & env.inter_minus[w]) | (vm[w] & env.inter_plus[w]);
        // No face agrees with the query sign: at least 1.
        let dis = (vp[w] & !env.union_plus[w]) | (vm[w] & !env.union_minus[w]);
        // Query 0 on a present pair, no face has 0: at least 1.
        let zvk = pr[w] & !(vp[w] | vm[w]) & env.inter_known[w];
        let lb1 = (dis | zvk) & !lb4;
        acc += 4 * u64::from(lb4.count_ones()) + u64::from(lb1.count_ones());
    }
    acc
}

/// Sparse chunk bound: the dense bound restricted to `active` (see
/// [`d2_ternary_sparse`] for the argument). All three bound terms are
/// masked by a query plane (`vp`/`vm` for `lb4`/`dis`, `pr` for `zvk`),
/// so the restricted sum is bit-identical to [`chunk_bound`].
///
/// # Panics
///
/// Panics if an index in `active` is out of range (slice indexing).
pub(crate) fn chunk_bound_sparse(
    env: &ChunkEnvelope<'_>,
    vp: &[u64],
    vm: &[u64],
    pr: &[u64],
    active: &[u32],
) -> u64 {
    let mut acc = 0u64;
    for &w in active {
        let w = w as usize;
        let lb4 = (vp[w] & env.inter_minus[w]) | (vm[w] & env.inter_plus[w]);
        let dis = (vp[w] & !env.union_plus[w]) | (vm[w] & !env.union_minus[w]);
        let zvk = pr[w] & !(vp[w] | vm[w]) & env.inter_known[w];
        let lb1 = (dis | zvk) & !lb4;
        acc += 4 * u64::from(lb4.count_ones()) + u64::from(lb1.count_ones());
    }
    acc
}

/// AVX2 chunk bound: 4 words per step, same [`popcount_sad`] fold as the
/// distance kernel, scalar loop on the ≤ 3 tail words.
///
/// # Safety
///
/// Requires the `avx2` and `popcnt` CPU features (the tail loop's
/// `count_ones`), and equal-length input slices.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,popcnt")]
unsafe fn chunk_bound_avx2(env: &ChunkEnvelope<'_>, vp: &[u64], vm: &[u64], pr: &[u64]) -> u64 {
    use std::arch::x86_64::*;

    let words = vp.len();
    let lut = popcount_lut();
    let low = _mm256_set1_epi8(0x0f);
    let mut acc4 = _mm256_setzero_si256();
    let mut acc1 = _mm256_setzero_si256();
    let mut w = 0usize;
    while w + 4 <= words {
        // Same rationale as `d2_ternary_within_avx2`: the envelope blocks
        // of sibling chunks are contiguous per array, so pulling each of
        // the five streams ~4 KiB ahead keeps a best-first descent's
        // bound sweeps pipelined (past-the-end pointers are never
        // dereferenced).
        _mm_prefetch::<_MM_HINT_T0>(env.union_plus.as_ptr().wrapping_add(w + 512).cast());
        _mm_prefetch::<_MM_HINT_T0>(env.inter_plus.as_ptr().wrapping_add(w + 512).cast());
        _mm_prefetch::<_MM_HINT_T0>(env.union_minus.as_ptr().wrapping_add(w + 512).cast());
        _mm_prefetch::<_MM_HINT_T0>(env.inter_minus.as_ptr().wrapping_add(w + 512).cast());
        _mm_prefetch::<_MM_HINT_T0>(env.inter_known.as_ptr().wrapping_add(w + 512).cast());
        // SAFETY: w + 4 ≤ len of every slice; unaligned loads.
        let upv = _mm256_loadu_si256(env.union_plus.as_ptr().add(w).cast());
        let ipv = _mm256_loadu_si256(env.inter_plus.as_ptr().add(w).cast());
        let umv = _mm256_loadu_si256(env.union_minus.as_ptr().add(w).cast());
        let imv = _mm256_loadu_si256(env.inter_minus.as_ptr().add(w).cast());
        let ikv = _mm256_loadu_si256(env.inter_known.as_ptr().add(w).cast());
        let vpv = _mm256_loadu_si256(vp.as_ptr().add(w).cast());
        let vmv = _mm256_loadu_si256(vm.as_ptr().add(w).cast());
        let prv = _mm256_loadu_si256(pr.as_ptr().add(w).cast());
        let lb4 = _mm256_or_si256(_mm256_and_si256(vpv, imv), _mm256_and_si256(vmv, ipv));
        // `andnot(a, b)` computes `¬a & b`.
        let dis = _mm256_or_si256(_mm256_andnot_si256(upv, vpv), _mm256_andnot_si256(umv, vmv));
        let zvk = _mm256_andnot_si256(_mm256_or_si256(vpv, vmv), _mm256_and_si256(prv, ikv));
        let lb1 = _mm256_andnot_si256(lb4, _mm256_or_si256(dis, zvk));
        acc4 = _mm256_add_epi64(acc4, popcount_sad(lb4, lut, low));
        acc1 = _mm256_add_epi64(acc1, popcount_sad(lb1, lut, low));
        w += 4;
    }
    let mut acc = 4 * hsum(acc4) + hsum(acc1);
    if w < words {
        let tail = ChunkEnvelope {
            union_plus: &env.union_plus[w..],
            inter_plus: &env.inter_plus[w..],
            union_minus: &env.union_minus[w..],
            inter_minus: &env.inter_minus[w..],
            inter_known: &env.inter_known[w..],
        };
        acc += chunk_bound_scalar(&tail, &vp[w..], &vm[w..], &pr[w..]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unit tests in this module mutate the process-global override;
    /// serialize them (integration suites run in their own processes).
    fn with_forced<T>(k: Option<KernelKind>, f: impl FnOnce() -> T) -> T {
        use std::sync::Mutex;
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        assert!(force_kernel(k));
        let out = f();
        force_kernel(None);
        out
    }

    fn words(seed: u64, n: usize) -> Vec<u64> {
        // SplitMix64: deterministic word soup without an RNG dependency.
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            })
            .collect()
    }

    /// Disjoint (plane-legal) masks derived from two word soups.
    fn planes(seed: u64, n: usize) -> (Vec<u64>, Vec<u64>) {
        let a = words(seed, n);
        let b = words(seed ^ 0xdead_beef, n);
        let plus: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x & !y).collect();
        let minus: Vec<u64> = a.iter().zip(&b).map(|(x, y)| !x & y).collect();
        (plus, minus)
    }

    #[test]
    fn every_available_kernel_matches_scalar_on_tail_shapes() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 13, 64] {
            let (gp, gm) = planes(11 + n as u64, n);
            let (vp, vm) = planes(97 + n as u64, n);
            let pr: Vec<u64> = vp
                .iter()
                .zip(&vm)
                .zip(words(5, n))
                .map(|((p, m), r)| p | m | r)
                .collect();
            let want = d2_ternary_scalar(&gp, &gm, &vp, &vm, &pr);
            for k in available_kernels() {
                let got = with_forced(Some(k), || d2_ternary(&gp, &gm, &vp, &vm, &pr));
                assert_eq!(got, want, "kernel {k:?} at {n} words");
            }
        }
    }

    /// The chunk-bound kernels agree bit-for-bit on every tail shape,
    /// with envelope planes satisfying the build invariants
    /// (`inter ⊆ union`, `inter_known ⊇ inter_plus | inter_minus`).
    #[test]
    fn chunk_bound_kernels_match_scalar_on_tail_shapes() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 13, 64] {
            let (ip, im) = planes(23 + n as u64, n);
            let extra = words(41, n);
            let up: Vec<u64> = ip.iter().zip(&extra).map(|(i, e)| i | (e & !i)).collect();
            let um: Vec<u64> = im
                .iter()
                .zip(words(43, n))
                .map(|(i, e)| i | (e & !i))
                .collect();
            let ik: Vec<u64> = ip
                .iter()
                .zip(&im)
                .zip(words(47, n))
                .map(|((p, m), r)| p | m | r)
                .collect();
            let (vp, vm) = planes(97 + n as u64, n);
            let pr: Vec<u64> = vp
                .iter()
                .zip(&vm)
                .zip(words(53, n))
                .map(|((p, m), r)| p | m | r)
                .collect();
            let env = ChunkEnvelope {
                union_plus: &up,
                inter_plus: &ip,
                union_minus: &um,
                inter_minus: &im,
                inter_known: &ik,
            };
            let want = chunk_bound_scalar(&env, &vp, &vm, &pr);
            for k in available_kernels() {
                let got = with_forced(Some(k), || chunk_bound(&env, &vp, &vm, &pr));
                assert_eq!(got, want, "kernel {k:?} at {n} words");
            }
        }
    }

    /// Every early-exit kernel agrees with the plain distance under any
    /// cutoff: `Some(d²)` exactly when `d² ≤ cutoff`, `None` otherwise —
    /// including at the word counts that straddle its 32-word check
    /// groups.
    #[test]
    fn early_exit_kernels_agree_with_the_full_distance() {
        for n in [0usize, 1, 3, 4, 31, 32, 33, 36, 64, 65, 96, 130] {
            let (gp, gm) = planes(11 + n as u64, n);
            let (vp, vm) = planes(97 + n as u64, n);
            let pr: Vec<u64> = vp
                .iter()
                .zip(&vm)
                .zip(words(5, n))
                .map(|((p, m), r)| p | m | r)
                .collect();
            let want = d2_ternary_scalar(&gp, &gm, &vp, &vm, &pr);
            for cutoff in [
                0.0,
                (want as f64) - 1.0,
                (want as f64) - 0.5,
                want as f64,
                (want as f64) + 0.5,
                (want as f64) + 1.0,
                f64::INFINITY,
            ] {
                let expect = (want as f64 <= cutoff).then_some(want);
                for k in available_kernels() {
                    let got = with_forced(Some(k), || {
                        d2_ternary_within(&gp, &gm, &vp, &vm, &pr, cutoff)
                    });
                    assert_eq!(got, expect, "kernel {k:?} at {n} words, cutoff {cutoff}");
                }
            }
        }
    }

    #[test]
    fn forcing_pins_and_releases_the_dispatch() {
        with_forced(Some(KernelKind::Scalar), || {
            assert_eq!(active_kernel(), KernelKind::Scalar);
        });
        assert_eq!(active_kernel(), detect());
    }

    #[test]
    fn unsupported_kernels_are_refused() {
        let supported = available_kernels();
        for k in [
            KernelKind::Scalar,
            KernelKind::Sse2,
            KernelKind::Avx2,
            KernelKind::Neon,
        ] {
            if !supported.contains(&k) {
                assert!(!force_kernel(Some(k)), "{k:?} should be refused");
                assert_eq!(active_kernel(), detect(), "refusal must not pin {k:?}");
            }
        }
    }
}
