//! Face signature vectors (Definition 6).

use std::fmt;
use wsn_geometry::PairRegion;

/// The ternary signature of a face: one component in `{-1, 0, +1}` per node
/// pair, in canonical pair order.
///
/// `Eq + Hash` so face-map construction can group grid cells by signature.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SignatureVector {
    components: Box<[i8]>,
}

impl SignatureVector {
    /// Wraps raw components.
    ///
    /// # Panics
    ///
    /// Panics if empty or any component is outside `{-1, 0, 1}`.
    pub fn new(components: Vec<i8>) -> Self {
        assert!(!components.is_empty(), "signature vector cannot be empty");
        for (i, &v) in components.iter().enumerate() {
            assert!((-1..=1).contains(&v), "component {i} out of range: {v}");
        }
        Self {
            components: components.into_boxed_slice(),
        }
    }

    /// Wraps components already known to be valid (non-empty, every value
    /// in `{-1, 0, 1}`) — the per-face materialization path out of the
    /// packed plane arena, where the invariant holds by construction and
    /// re-validating every component would be the loop's main cost.
    pub(crate) fn from_trusted(components: Vec<i8>) -> Self {
        debug_assert!(!components.is_empty());
        debug_assert!(components.iter().all(|v| (-1..=1).contains(v)));
        Self {
            components: components.into_boxed_slice(),
        }
    }

    /// Builds a signature from per-pair region classifications.
    pub fn from_regions<I: IntoIterator<Item = PairRegion>>(regions: I) -> Self {
        let comps: Vec<i8> = regions
            .into_iter()
            .map(|r| r.signature_component())
            .collect();
        Self::new(comps)
    }

    /// Number of pair components.
    #[inline]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Always `false` (construction requires ≥ 1 component).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Component for pair index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn component(&self, i: usize) -> i8 {
        self.components[i]
    }

    /// All components.
    #[inline]
    pub fn components(&self) -> &[i8] {
        &self.components
    }

    /// Number of components in which two signatures differ, weighted by the
    /// squared difference — the `‖V_s(f) − V_s(f′)‖²` of Theorem 1.
    pub fn distance_squared(&self, other: &SignatureVector) -> f64 {
        assert_eq!(self.len(), other.len(), "signature dimension mismatch");
        self.components
            .iter()
            .zip(other.components.iter())
            .map(|(&a, &b)| {
                let d = (a - b) as f64;
                d * d
            })
            .sum()
    }
}

impl fmt::Display for SignatureVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let s = SignatureVector::new(vec![-1, 1, 1, 1, 1, 0]);
        assert_eq!(s.len(), 6);
        assert_eq!(s.component(0), -1);
        assert_eq!(s.component(5), 0);
        assert_eq!(format!("{s}"), "[-1,1,1,1,1,0]");
    }

    #[test]
    fn from_regions_matches_paper_convention() {
        let s = SignatureVector::from_regions([
            PairRegion::NearFirst,
            PairRegion::Uncertain,
            PairRegion::NearSecond,
        ]);
        assert_eq!(s.components(), &[1, 0, -1]);
    }

    #[test]
    fn hashable_and_groupable() {
        use std::collections::HashMap;
        let mut m: HashMap<SignatureVector, u32> = HashMap::new();
        *m.entry(SignatureVector::new(vec![1, 0])).or_default() += 1;
        *m.entry(SignatureVector::new(vec![1, 0])).or_default() += 1;
        *m.entry(SignatureVector::new(vec![0, 1])).or_default() += 1;
        assert_eq!(m.len(), 2);
        assert_eq!(m[&SignatureVector::new(vec![1, 0])], 2);
    }

    #[test]
    fn distance_squared_neighbor_faces() {
        // Theorem 1: neighbor faces differ by exactly one component by ±1.
        let a = SignatureVector::new(vec![1, 1, 0]);
        let b = SignatureVector::new(vec![1, 0, 0]);
        assert_eq!(a.distance_squared(&b), 1.0);
        let c = SignatureVector::new(vec![-1, 0, 0]);
        assert_eq!(a.distance_squared(&c), 5.0);
        assert_eq!(a.distance_squared(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_component_rejected() {
        let _ = SignatureVector::new(vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        let _ = SignatureVector::new(vec![]);
    }
}
