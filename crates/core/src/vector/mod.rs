//! Sampling and signature vectors and their similarity metric.
//!
//! Both vector kinds have one component per node pair, indexed by the
//! canonical enumeration of `wsn_network::pairs`:
//!
//! * [`SignatureVector`] — the ternary label of a face (Definition 6):
//!   `+1` nearer the smaller-ID node, `-1` nearer the larger, `0` inside
//!   the pair's uncertain area.
//! * [`SamplingVector`] — what one grouping sampling observed
//!   (Definitions 4/5, extended by Definition 10 and the `*` of eq. 6):
//!   each component is `Some(v)` with `v ∈ [−1, 1]` (basic vectors use only
//!   `{−1, 0, +1}`) or `None` for `*` (no information — both nodes silent).
//!
//! [`similarity`] implements Definition 7 with the `*`-aware difference of
//! Definition 8/9: missing components contribute zero to the distance, and
//! an exact match has similarity `+∞`.
//!
//! [`SignaturePlanes`]/[`PackedQuery`] are the packed fast path: face
//! signatures stored as bit-planes (two `u64` words per 64 pairs) with a
//! branch-free popcount distance kernel, bit-identical to the scalar
//! [`difference_norm_squared`] reference. The ternary kernel dispatches
//! to runtime-detected SIMD (AVX2/SSE2/NEON; [`active_kernel`],
//! [`force_kernel`]), and the planes can carry coarse chunk summaries
//! ([`SignaturePlanes::build_chunks`]) whose envelope lower bound
//! ([`SignaturePlanes::chunk_lower_bound`]) powers the indexed matcher.

mod hugepages;
mod planes;
mod sampling_vec;
mod signature;
mod simd;
mod similarity;

pub use planes::{words_for, PackedQuery, SignaturePlanes};
pub use sampling_vec::SamplingVector;
pub use signature::SignatureVector;
pub use simd::{active_kernel, available_kernels, force_kernel, KernelKind};
pub use similarity::{difference_norm_squared, similarity};
