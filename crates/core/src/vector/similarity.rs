//! The similarity metric (Definitions 7–9).

use crate::vector::{SamplingVector, SignatureVector};

/// Squared norm of the `*`-aware difference `V_d − V_s` (Definitions 8/9,
/// eq. 7): components where the sampling vector has no information (`*`)
/// contribute zero.
///
/// # Panics
///
/// Panics if the vectors have different dimensions (they index the same
/// canonical pair enumeration by construction; a mismatch is a logic bug).
pub fn difference_norm_squared(sampling: &SamplingVector, signature: &SignatureVector) -> f64 {
    assert_eq!(
        sampling.len(),
        signature.len(),
        "sampling/signature dimension mismatch: {} vs {}",
        sampling.len(),
        signature.len()
    );
    sampling
        .components()
        .iter()
        .zip(signature.components().iter())
        .map(|(s, &g)| match s {
            Some(v) => {
                let d = v - g as f64;
                d * d
            }
            None => 0.0,
        })
        .sum()
}

/// Similarity `S = 1 / ‖V_d − V_s‖` (Definition 7).
///
/// An exact match (zero distance) yields `f64::INFINITY`, which orders
/// above every finite similarity — the paper's "identical with one and only
/// one face" ideal case.
///
/// ```
/// use fttt::vector::{similarity, SamplingVector, SignatureVector};
///
/// // The paper's Section-4.4 example: V_d = [-1,1,1,1,1,1] against f3's
/// // signature [-1,1,1,1,1,0] differs in one component ⟹ S = 1.
/// let v = SamplingVector::from_ternary(
///     vec![Some(-1), Some(1), Some(1), Some(1), Some(1), Some(1)]);
/// let f3 = SignatureVector::new(vec![-1, 1, 1, 1, 1, 0]);
/// assert_eq!(similarity(&v, &f3), 1.0);
/// ```
pub fn similarity(sampling: &SamplingVector, signature: &SignatureVector) -> f64 {
    let d2 = difference_norm_squared(sampling, signature);
    if d2 == 0.0 {
        f64::INFINITY
    } else {
        1.0 / d2.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(v: Vec<i8>) -> SignatureVector {
        SignatureVector::new(v)
    }

    #[test]
    fn exact_match_is_infinite() {
        let d = SamplingVector::from_ternary(vec![Some(-1), Some(1), Some(0)]);
        let s = sig(vec![-1, 1, 0]);
        assert_eq!(similarity(&d, &s), f64::INFINITY);
    }

    #[test]
    fn paper_section_4_example() {
        // V_d = [-1,1,1,1,1,1] vs signature of f3 = [-1,1,1,1,1,0]:
        // distance 1, similarity 1.
        let d = SamplingVector::from_ternary(vec![
            Some(-1),
            Some(1),
            Some(1),
            Some(1),
            Some(1),
            Some(1),
        ]);
        let s3 = sig(vec![-1, 1, 1, 1, 1, 0]);
        assert_eq!(similarity(&d, &s3), 1.0);
    }

    #[test]
    fn paper_fault_tolerance_example() {
        // Section 4.4.3: V_d = [1,1,1,-1,*,1] vs V_s(f8) = [1,1,1,0,0,0]:
        // diffs (0,0,0,−1,ignored,1) ⟹ ‖Δ‖ = √2, S = 1/√2.
        let d =
            SamplingVector::from_ternary(vec![Some(1), Some(1), Some(1), Some(-1), None, Some(1)]);
        let s8 = sig(vec![1, 1, 1, 0, 0, 0]);
        assert!((difference_norm_squared(&d, &s8) - 2.0).abs() < 1e-12);
        assert!((similarity(&d, &s8) - 1.0 / 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn paper_extended_example_fig9() {
        // Extended V_d = [1/3,1,1,1,1,-1] against the six signatures of
        // Fig. 7; the paper reports S(f1) = 1.5 as the unique maximum.
        let d = SamplingVector::new(vec![
            Some(1.0 / 3.0),
            Some(1.0),
            Some(1.0),
            Some(1.0),
            Some(1.0),
            Some(-1.0),
        ]);
        let f1 = sig(vec![1, 1, 1, 1, 1, -1]);
        let f4 = sig(vec![0, 1, 1, 1, 1, 0]);
        let s1 = similarity(&d, &f1);
        let s4 = similarity(&d, &f4);
        assert!((s1 - 1.5).abs() < 1e-12, "S(f1) = {s1}");
        assert!((s4 - 0.9486832980505138).abs() < 1e-9, "S(f4) = {s4}");
        assert!(s1 > s4, "extension must break the tie in favour of f1");
    }

    #[test]
    fn all_stars_matches_everything_exactly() {
        // A fully faulted sampling vector carries no information: distance
        // zero to every signature (the matcher then falls back to ties).
        let d = SamplingVector::from_ternary(vec![None, None, None]);
        assert_eq!(similarity(&d, &sig(vec![1, -1, 0])), f64::INFINITY);
        assert_eq!(similarity(&d, &sig(vec![0, 0, 0])), f64::INFINITY);
    }

    #[test]
    fn more_disagreement_means_less_similarity() {
        let d = SamplingVector::from_ternary(vec![Some(1), Some(1), Some(1)]);
        let s_close = sig(vec![1, 1, 0]);
        let s_far = sig(vec![1, -1, -1]);
        assert!(similarity(&d, &s_close) > similarity(&d, &s_far));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_rejected() {
        let d = SamplingVector::from_ternary(vec![Some(1)]);
        let s = sig(vec![1, 0]);
        let _ = similarity(&d, &s);
    }
}
