//! Sampling vectors (Definitions 4, 5, 10 and the `*` of eq. 6).

use std::fmt;

/// What one grouping sampling observed, one component per node pair in
/// canonical order.
///
/// Components are `Some(v)` with `v ∈ [−1, 1]` or `None`, the paper's `*`
/// (neither node of the pair returned any reading, eq. 6 case 4). Basic
/// vectors (Definition 4) only ever hold `{−1.0, 0.0, +1.0}`; extended
/// vectors (Definition 10) use the whole interval.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SamplingVector {
    components: Box<[Option<f64>]>,
}

impl SamplingVector {
    /// Wraps raw components.
    ///
    /// # Panics
    ///
    /// Panics if empty, or any known component is outside `[−1, 1]` or
    /// non-finite.
    pub fn new(components: Vec<Option<f64>>) -> Self {
        assert!(!components.is_empty(), "sampling vector cannot be empty");
        for (i, v) in components.iter().enumerate() {
            if let Some(v) = v {
                assert!(
                    v.is_finite() && (-1.0..=1.0).contains(v),
                    "component {i} out of range: {v}"
                );
            }
        }
        Self {
            components: components.into_boxed_slice(),
        }
    }

    /// Convenience constructor from the paper's integer notation, `None`
    /// standing for `*`.
    pub fn from_ternary(components: Vec<Option<i8>>) -> Self {
        Self::new(
            components
                .into_iter()
                .map(|c| c.map(|v| v as f64))
                .collect(),
        )
    }

    /// Number of pair components.
    #[inline]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Always `false` (construction requires ≥ 1 component).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Component for pair index `i` (`None` = `*`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn component(&self, i: usize) -> Option<f64> {
        self.components[i]
    }

    /// All components.
    #[inline]
    pub fn components(&self) -> &[Option<f64>] {
        &self.components
    }

    /// Count of `*` components (pairs with no information at all).
    pub fn unknown_count(&self) -> usize {
        self.components.iter().filter(|c| c.is_none()).count()
    }

    /// `true` if every known component is ternary (a basic vector).
    pub fn is_ternary(&self) -> bool {
        self.components
            .iter()
            .flatten()
            .all(|&v| v == -1.0 || v == 0.0 || v == 1.0)
    }
}

impl fmt::Display for SamplingVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match v {
                Some(v) => write!(f, "{v:.2}")?,
                None => write!(f, "*")?,
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ternary_construction() {
        // The paper's Fig. 5 example vector [-1,1,1,1,1,0].
        let v = SamplingVector::from_ternary(vec![
            Some(-1),
            Some(1),
            Some(1),
            Some(1),
            Some(1),
            Some(0),
        ]);
        assert_eq!(v.len(), 6);
        assert!(v.is_ternary());
        assert_eq!(v.unknown_count(), 0);
        assert_eq!(v.component(0), Some(-1.0));
    }

    #[test]
    fn fault_tolerant_vector_with_stars() {
        // The paper's Section 4.4.3 example [1,1,1,-1,*,1].
        let v =
            SamplingVector::from_ternary(vec![Some(1), Some(1), Some(1), Some(-1), None, Some(1)]);
        assert_eq!(v.unknown_count(), 1);
        assert_eq!(v.component(4), None);
        assert_eq!(format!("{v}"), "[1.00,1.00,1.00,-1.00,*,1.00]");
    }

    #[test]
    fn extended_values_allowed() {
        // Fig. 9's extended vector [0.33, 1, 1, 1, 1, -1].
        let v = SamplingVector::new(vec![
            Some(1.0 / 3.0),
            Some(1.0),
            Some(1.0),
            Some(1.0),
            Some(1.0),
            Some(-1.0),
        ]);
        assert!(!v.is_ternary());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_interval_rejected() {
        let _ = SamplingVector::new(vec![Some(1.5)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nan_rejected() {
        let _ = SamplingVector::new(vec![Some(f64::NAN)]);
    }
}
