//! Differential suite for incremental face-map repair: after *any* random
//! sequence of death/birth events, the incrementally repaired map must be
//! bit-identical — faces, signature planes, chunk envelopes, neighbor
//! links, cell table, and replay digest — to (a) the same sequence run
//! through [`RepairMode::Rebuild`], and (b) a from-scratch
//! [`FaceMap::build`] over the surviving node set (modulo the epoch and
//! churn provenance, which a fresh build cannot know).

use fttt::facemap::{FaceMap, RepairMode};
use fttt::replay::digest_face_map;
use proptest::prelude::*;
use wsn_geometry::{Point, Rect};

const FIELD_SIDE: f64 = 50.0;
const C: f64 = 1.15;
const CELL: f64 = 5.0;

fn arb_positions() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (2.0..48.0f64, 2.0..48.0f64).prop_map(|(x, y)| Point::new(x, y)),
        5..9,
    )
}

/// Turns raw node picks into a valid kill/revive schedule: a pick of a
/// live node kills it (skipped when only three sensors remain), a pick of
/// a dead node revives it. Returns `(node, death)` events.
fn schedule(n: usize, picks: &[usize]) -> Vec<(usize, bool)> {
    let mut live = vec![true; n];
    let mut alive = n;
    let mut events = Vec::new();
    for &p in picks {
        let node = p % n;
        if live[node] {
            if alive <= 3 {
                continue;
            }
            live[node] = false;
            alive -= 1;
            events.push((node, true));
        } else {
            live[node] = true;
            alive += 1;
            events.push((node, false));
        }
    }
    events
}

/// Everything a fresh build can be compared on: division content plus the
/// live-set bookkeeping (but not epoch/provenance history).
fn assert_content_identical(repaired: &FaceMap, fresh: &FaceMap) {
    assert_eq!(repaired.faces(), fresh.faces(), "face lists differ");
    assert_eq!(
        repaired.planes(),
        fresh.planes(),
        "signature planes / chunk envelopes differ"
    );
    assert_eq!(repaired.positions(), fresh.positions(), "positions differ");
    assert_eq!(
        repaired.pair_dimension(),
        fresh.pair_dimension(),
        "pair dimensions differ"
    );
    for (idx, p) in repaired.grid().iter_centers() {
        assert_eq!(
            repaired.face_at(p),
            fresh.face_at(p),
            "cell {:?} maps to different faces",
            idx
        );
    }
    for f in repaired.faces() {
        assert_eq!(
            repaired.neighbors(f.id),
            fresh.neighbors(f.id),
            "neighbor links of {} differ",
            f.id
        );
    }
    // Memory accounting must stay exact across repairs: the repaired map
    // differs from the fresh build only by its topology bookkeeping
    // (deployment roster, live list, pair-gather table — empty when the
    // live set is the whole deployment).
    let topology = |map: &FaceMap| {
        let gather = if map.positions().len() == map.deployment().len() {
            0
        } else {
            wsn_network::pair_count(map.positions().len())
        };
        std::mem::size_of_val(map.deployment())
            + (map.live_nodes().len() + gather) * std::mem::size_of::<u32>()
    };
    assert_eq!(
        repaired.memory_bytes() - topology(repaired),
        fresh.memory_bytes() - topology(fresh),
        "memory accounting drifted from the fresh-build equivalent"
    );
}

/// Tier-1 churn smoke test: a session tracking through a death storm
/// (three sensors die back-to-back, then return) must degrade gracefully
/// and recover to `Tracking`, with its map's epoch counting every repair.
#[test]
fn sessions_recover_to_tracking_after_a_death_storm() {
    use fttt::session::{SessionOptions, TrackStatus, TrackingSession};
    use fttt::tracker::{Tracker, TrackerOptions};
    use rand::SeedableRng;
    use wsn_mobility::WaypointPath;
    use wsn_network::{Deployment, GroupSampler, SensorField};
    use wsn_signal::PathLossModel;

    let field = Rect::square(100.0);
    let deployment = Deployment::grid(9, field);
    let sensor_field = SensorField::new(deployment, 150.0);
    let model = PathLossModel::new(-40.0, 0.0, 4.0, 4.0);
    let c = model.uncertainty_constant(1.0);
    let map = FaceMap::build(&sensor_field.deployment().positions(), field, c, 2.0);
    let sampler = GroupSampler::new(model, 5);
    let mut session = TrackingSession::new(
        Tracker::new(map, TrackerOptions::heuristic()),
        SessionOptions::new(5),
    );
    let trace = WaypointPath::new(vec![Point::new(20.0, 50.0), Point::new(80.0, 50.0)])
        .walk_constant(3.0, 1.0);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);

    // Deaths at t = 5, 6, 7; births back at t = 12, 13, 14.
    let mut events = vec![
        (5.0, 1usize, true),
        (6.0, 3, true),
        (7.0, 5, true),
        (12.0, 1, false),
        (13.0, 3, false),
        (14.0, 5, false),
    ];
    let run = session.run_with(
        &trace,
        &mut rng,
        |k, pos, _, r| {
            let sampler = GroupSampler {
                samples: k,
                ..sampler.clone()
            };
            sampler.sample(&sensor_field, pos, r)
        },
        |s, t| {
            while let Some(&(et, node, death)) = events.first() {
                if et > t {
                    break;
                }
                let report = s.apply_churn(t, node, death, RepairMode::Incremental);
                assert_eq!(report.node, node);
                assert_eq!(report.death, death);
                events.remove(0);
            }
        },
    );

    assert!(events.is_empty(), "every churn event must have applied");
    assert!(
        run.rounds.last().unwrap().status == TrackStatus::Tracking,
        "session must recover to Tracking after the storm, ended {:?}",
        run.rounds.last().unwrap().status
    );
    assert!(
        run.error_stats().mean.is_finite() && run.error_stats().mean < 30.0,
        "tracking error must stay sane through churn, mean {}",
        run.error_stats().mean
    );
    // Rounds during the storm matched against the 6-survivor map.
    assert!(run.rounds.iter().all(|r| r.estimate.x.is_finite()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole invariant: incremental == rebuild-per-event (full
    /// equality including digests) and both == from-scratch build of the
    /// survivors (content equality).
    #[test]
    fn incremental_repair_matches_full_rebuild(
        positions in arb_positions(),
        picks in prop::collection::vec(0usize..64, 1..10),
    ) {
        let field = Rect::square(FIELD_SIDE);
        let n = positions.len();
        let mut incremental = FaceMap::build(&positions, field, C, CELL);
        let mut rebuilt = FaceMap::build(&positions, field, C, CELL);
        let events = schedule(n, &picks);

        for &(node, death) in &events {
            let (ri, rr) = if death {
                (
                    incremental.kill_node(node, RepairMode::Incremental),
                    rebuilt.kill_node(node, RepairMode::Rebuild),
                )
            } else {
                (
                    incremental.revive_node(node, RepairMode::Incremental),
                    rebuilt.revive_node(node, RepairMode::Rebuild),
                )
            };
            prop_assert_eq!(ri.epoch, rr.epoch);
            prop_assert_eq!(ri.faces_after, rr.faces_after);
            prop_assert_eq!(ri.planes_retired, rr.planes_retired);
            prop_assert_eq!(ri.planes_added, rr.planes_added);

            // Full bit-equality between the two repair modes, digest
            // included — same epoch history, same everything.
            assert_content_identical(&incremental, &rebuilt);
            prop_assert_eq!(incremental.epoch(), rebuilt.epoch());
            prop_assert_eq!(incremental.live_nodes(), rebuilt.live_nodes());
            prop_assert_eq!(
                digest_face_map(&incremental),
                digest_face_map(&rebuilt),
                "replay digests diverged between repair modes"
            );

            // Content equality against a from-scratch build of the
            // current survivors.
            let survivors: Vec<Point> = incremental
                .live_nodes()
                .iter()
                .map(|&i| positions[i as usize])
                .collect();
            let fresh = FaceMap::build(&survivors, field, C, CELL);
            assert_content_identical(&incremental, &fresh);

            // The remap is total over the pre-repair faces and every
            // target id is in range.
            prop_assert_eq!(ri.remap_len(), ri.faces_before);
            for f in 0..ri.faces_before {
                let (nf, _) = ri.remap_face(fttt::FaceId(f as u32)).unwrap();
                prop_assert!(nf.index() < ri.faces_after);
            }
        }

        prop_assert_eq!(incremental.epoch(), events.len() as u64);
    }

    /// Sampling-vector projection agrees with manually gathering the
    /// surviving pair components.
    #[test]
    fn projection_matches_manual_gather(
        positions in arb_positions(),
        dead_pick in 0usize..64,
    ) {
        use fttt::vector::SamplingVector;
        use wsn_network::{pair_count, PairIter};
        let field = Rect::square(FIELD_SIDE);
        let n = positions.len();
        let dead = dead_pick % n;
        let mut map = FaceMap::build(&positions, field, C, CELL);
        map.kill_node(dead, RepairMode::Incremental);

        let full: Vec<Option<f64>> = (0..pair_count(n))
            .map(|i| if i % 3 == 0 { None } else { Some((i as f64) / 64.0) })
            .collect();
        let projected = map.project_sampling_vector(SamplingVector::new(full.clone()));

        let expected: Vec<Option<f64>> = PairIter::new(n)
            .enumerate()
            .filter(|&(_, (i, j))| i != dead && j != dead)
            .map(|(d, _)| full[d])
            .collect();
        prop_assert_eq!(projected.components(), &expected[..]);
        prop_assert_eq!(projected.len(), map.pair_dimension());
    }
}
