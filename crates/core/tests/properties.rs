//! Property-based tests for the FTTT core: vector invariants, Algorithm 1,
//! face-map structure and matching, over randomized worlds.

use fttt::facemap::{signature_of, FaceMap};
use fttt::matching::{match_exhaustive, match_heuristic};
use fttt::sampling::{basic_sampling_vector, extended_sampling_vector};
use fttt::theory;
use fttt::vector::{difference_norm_squared, similarity, SamplingVector, SignatureVector};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wsn_geometry::{Point, Rect};
use wsn_network::{pair_count, Deployment, FaultModel, GroupSampler, SensorField};
use wsn_signal::PathLossModel;

fn arb_positions(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (1.0..99.0f64, 1.0..99.0f64).prop_map(|(x, y)| Point::new(x, y)),
        n,
    )
}

fn arb_signature(dim: usize) -> impl Strategy<Value = SignatureVector> {
    prop::collection::vec(-1i8..=1, dim..=dim).prop_map(SignatureVector::new)
}

fn arb_sampling(dim: usize) -> impl Strategy<Value = SamplingVector> {
    prop::collection::vec(
        prop_oneof![Just(None), (-1.0..=1.0f64).prop_map(Some)],
        dim..=dim,
    )
    .prop_map(SamplingVector::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Similarity is maximal exactly on equality, and never negative.
    #[test]
    fn similarity_identity(sig in arb_signature(8)) {
        let as_sampling = SamplingVector::new(
            sig.components().iter().map(|&c| Some(c as f64)).collect(),
        );
        prop_assert_eq!(similarity(&as_sampling, &sig), f64::INFINITY);
    }

    /// The *-aware distance is bounded by the all-components-worst case
    /// and shrinks (weakly) when a component is replaced by '*'.
    #[test]
    fn star_components_never_increase_distance(
        v in arb_sampling(10),
        sig in arb_signature(10),
        idx in 0usize..10,
    ) {
        let d = difference_norm_squared(&v, &sig);
        prop_assert!(d <= 10.0 * 4.0 + 1e-9);
        let mut comps: Vec<Option<f64>> = v.components().to_vec();
        comps[idx] = None;
        let starred = SamplingVector::new(comps);
        prop_assert!(difference_norm_squared(&starred, &sig) <= d + 1e-12);
    }

    /// Algorithm 1's output always has dimension C(n,2), values in the
    /// ternary set, and '*' exactly where both nodes were silent.
    #[test]
    fn algorithm1_shape(
        positions in arb_positions(2..8),
        target in (1.0..99.0f64, 1.0..99.0f64).prop_map(|(x, y)| Point::new(x, y)),
        seed in 0u64..1000,
        k in 1usize..7,
        fail in 0.0..0.9f64,
    ) {
        let field = Rect::square(100.0);
        let deployment = Deployment::explicit(&positions, field);
        let sf = SensorField::new(deployment, 150.0);
        let sampler = GroupSampler::new(PathLossModel::paper_default(), k)
            .with_fault(FaultModel::with_node_failure(fail));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let group = sampler.sample(&sf, target, &mut rng);
        let v = basic_sampling_vector(&group);
        prop_assert_eq!(v.len(), pair_count(positions.len()));
        prop_assert!(v.is_ternary());
        // '*' ⟺ both silent.
        let mut idx = 0;
        for i in 0..positions.len() {
            for j in (i + 1)..positions.len() {
                let expect_star = !group.node_responded(i) && !group.node_responded(j);
                prop_assert_eq!(v.component(idx).is_none(), expect_star, "pair ({}, {})", i, j);
                idx += 1;
            }
        }
        // Extended vector: same '*' pattern, values within [-1, 1], and
        // zero exactly-ordinal disagreement with the basic vector's signs.
        let e = extended_sampling_vector(&group);
        prop_assert_eq!(e.len(), v.len());
        for (b, x) in v.components().iter().zip(e.components()) {
            prop_assert_eq!(b.is_none(), x.is_none());
            if let (Some(b), Some(x)) = (b, x) {
                if *b == 1.0 { prop_assert!(*x > 0.0 || *x == 0.0 && *b == 0.0); }
                if *b == -1.0 { prop_assert!(*x <= 0.0); }
            }
        }
    }

    /// Face maps partition the raster and index consistently, for random
    /// deployments and constants.
    #[test]
    fn facemap_invariants(
        positions in arb_positions(2..6),
        c in 1.0..1.6f64,
    ) {
        let field = Rect::square(100.0);
        let map = FaceMap::build(&positions, field, c, 4.0);
        let total: usize = map.faces().iter().map(|f| f.cell_count).sum();
        prop_assert_eq!(total, map.grid().cell_count());
        for f in map.faces() {
            prop_assert_eq!(map.find_by_signature(&f.signature), Some(f.id));
            prop_assert!(field.contains(f.centroid));
            prop_assert!(f.bbox.contains(f.centroid));
            for &nb in map.neighbors(f.id) {
                prop_assert!(map.neighbors(nb).contains(&f.id));
                prop_assert!(nb != f.id);
            }
        }
        // face_at agrees with the exact classifier on cell centres.
        for (_, center) in map.grid().iter_centers().step_by(7) {
            let id = map.face_at(center).unwrap();
            prop_assert_eq!(
                map.face(id).signature.clone(),
                signature_of(center, &positions, c)
            );
        }
    }

    /// Exhaustive matching returns the true argmax: no face beats it.
    #[test]
    fn exhaustive_is_argmax(
        positions in arb_positions(3..6),
        v_seed in 0u64..500,
    ) {
        let field = Rect::square(100.0);
        let map = FaceMap::build(&positions, field, 1.2, 4.0);
        let dim = map.pair_dimension();
        let mut rng = ChaCha8Rng::seed_from_u64(v_seed);
        let comps: Vec<Option<f64>> = (0..dim)
            .map(|_| {
                use rand::Rng;
                match rng.gen_range(0..4) {
                    0 => Some(-1.0),
                    1 => Some(0.0),
                    2 => Some(1.0),
                    _ => None,
                }
            })
            .collect();
        let v = SamplingVector::new(comps);
        let out = match_exhaustive(&map, &v);
        for f in map.faces() {
            prop_assert!(similarity(&v, &f.signature) <= out.similarity);
        }
        // Ties really are ties.
        for &id in &out.ties {
            prop_assert_eq!(similarity(&v, &map.face(id).signature), out.similarity);
        }
        // The heuristic never reports a better-than-optimal similarity.
        let h = match_heuristic(&map, &v, map.center_face());
        prop_assert!(h.similarity <= out.similarity);
    }

    /// Theory: the sampling-times bound is the minimal satisfying k, and
    /// probabilities stay in [0, 1].
    #[test]
    fn theory_bounds(lambda in 0.5..0.999f64, n_pairs in 1usize..2000) {
        let k = theory::required_sampling_times(lambda, n_pairs);
        let p = theory::all_flips_probability(k, n_pairs);
        prop_assert!(p > lambda);
        prop_assert!((0.0..=1.0).contains(&p));
        if k > 1 {
            prop_assert!(theory::all_flips_probability(k - 1, n_pairs) <= lambda);
        }
        prop_assert!(theory::expected_vector_error(k, n_pairs) >= 0.0);
    }
}
