//! Differential suite for the coarse-to-fine chunk index: `match_indexed`
//! must return the **bit-identical** outcome of `match_exhaustive` — same
//! winning face, same similarity bits, same complete tie set — over random
//! deployments and every query shape the matchers accept, and the chunk
//! envelope lower bound that justifies its pruning must never exceed the
//! true distance of any member face, at any dimension up to 1000.

use fttt::matching::{match_exhaustive, match_indexed};
use fttt::vector::{PackedQuery, SamplingVector, SignaturePlanes, SignatureVector};
use fttt::FaceMap;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wsn_geometry::{Point, Rect};

fn arb_positions(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (1.0..99.0f64, 1.0..99.0f64).prop_map(|(x, y)| Point::new(x, y)),
        n,
    )
}

/// A random ternary sampling vector (components in {−1, 0, +1, *}).
fn random_ternary<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> SamplingVector {
    SamplingVector::new(
        (0..dim)
            .map(|_| match rng.gen_range(0..4) {
                0 => Some(-1.0),
                1 => Some(0.0),
                2 => Some(1.0),
                _ => None,
            })
            .collect(),
    )
}

/// A random extended sampling vector (components anywhere in [−1, 1] or *).
fn random_extended<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> SamplingVector {
    SamplingVector::new(
        (0..dim)
            .map(|_| {
                if rng.gen_range(0..5) == 0 {
                    None
                } else {
                    Some(rng.gen_range(-1.0..=1.0f64))
                }
            })
            .collect(),
    )
}

/// Asserts the indexed outcome is the exhaustive outcome, bit for bit.
fn assert_identical(map: &FaceMap, v: &SamplingVector, what: &str) {
    let ex = match_exhaustive(map, v);
    let ix = match_indexed(map, v);
    assert_eq!(ix.face, ex.face, "{what}: winner differs");
    assert_eq!(
        ix.similarity.to_bits(),
        ex.similarity.to_bits(),
        "{what}: similarity differs ({} vs {})",
        ix.similarity,
        ex.similarity
    );
    assert_eq!(ix.ties, ex.ties, "{what}: tie set differs");
    assert!(
        ix.evaluated <= ex.evaluated,
        "{what}: index evaluated {} > scan's {}",
        ix.evaluated,
        ex.evaluated
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random deployments, random ternary queries: the index is a drop-in
    /// replacement for the exhaustive scan.
    #[test]
    fn indexed_is_bit_identical_on_ternary_queries(
        positions in arb_positions(2..12),
        seed in 0u64..10_000,
    ) {
        let map = FaceMap::build(&positions, Rect::square(100.0), 1.15, 2.0);
        prop_assert!(map.planes().has_chunks());
        let dim = map.pair_dimension();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..8 {
            assert_identical(&map, &random_ternary(dim, &mut rng), "ternary");
        }
        // Exact face signatures: unique zero-distance winners exercise
        // the hardest pruning (every other chunk bound must exceed 0).
        for f in map.faces().iter().step_by(1 + map.face_count() / 8) {
            let v = SamplingVector::new(
                f.signature.components().iter().map(|&c| Some(c as f64)).collect(),
            );
            assert_identical(&map, &v, "exact signature");
        }
    }

    /// Extended queries (the fallback path) and the all-star vector of a
    /// zero-live-node round (every component `*`, everything ties).
    #[test]
    fn indexed_is_bit_identical_on_extended_and_all_star_queries(
        positions in arb_positions(2..10),
        seed in 0u64..10_000,
    ) {
        let map = FaceMap::build(&positions, Rect::square(100.0), 1.15, 2.0);
        let dim = map.pair_dimension();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..4 {
            assert_identical(&map, &random_extended(dim, &mut rng), "extended");
        }
        let all_star = SamplingVector::new(vec![None; dim]);
        assert_identical(&map, &all_star, "all-star");
        let ix = match_indexed(&map, &all_star);
        prop_assert_eq!(ix.ties.len(), map.face_count());
    }

    /// The envelope lower bounds are sound at every dimension 1..=1000:
    /// for random signatures, random two-level chunkings, and random
    /// ternary queries, `super_lower_bound(s) ≤ chunk_lower_bound(c) ≤
    /// d²(f)` for every leaf chunk `c` under super-chunk `s` and every
    /// face `f` in `c`. (These are the invariants the two-level prune
    /// rests on; FaceMaps cap out near dim ≈ 60 in this suite, so the
    /// planes are driven directly.)
    #[test]
    fn chunk_lower_bound_is_sound_at_any_dimension(
        dim in 1usize..=1000,
        faces in 1usize..24,
        chunks in 1u32..6,
        supers in 1u32..3,
        seed in 0u64..10_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sigs: Vec<SignatureVector> = (0..faces)
            .map(|_| {
                SignatureVector::new((0..dim).map(|_| rng.gen_range(-1i8..=1)).collect())
            })
            .collect();
        let mut planes = SignaturePlanes::from_signatures(dim, sigs.iter());
        // Random leaf keys, each nested under a random (but per-leaf
        // consistent) super key, as build_chunks requires.
        let leaf_super: Vec<u32> =
            (0..chunks).map(|_| rng.gen_range(0..supers)).collect();
        let leaf_of: Vec<u32> =
            (0..faces).map(|_| rng.gen_range(0..chunks)).collect();
        let super_of: Vec<u32> =
            leaf_of.iter().map(|&c| leaf_super[c as usize]).collect();
        planes.build_chunks(&leaf_of, &super_of);
        for _ in 0..4 {
            let v = random_ternary(dim, &mut rng);
            let q = PackedQuery::new(&v);
            for s in 0..planes.super_count() {
                let sb = planes.super_lower_bound(s, &q);
                for c in planes.super_chunks(s) {
                    let lb = planes.chunk_lower_bound(c, &q);
                    prop_assert!(
                        sb <= lb,
                        "dim {} super {} chunk {}: super bound {} > leaf bound {}",
                        dim, s, c, sb, lb
                    );
                    for &f in planes.chunk_faces(c) {
                        let d2 = planes.distance_squared(f as usize, &q);
                        prop_assert!(
                            lb <= d2,
                            "dim {} chunk {} face {}: bound {} > distance {}",
                            dim, c, f, lb, d2
                        );
                    }
                }
            }
        }
    }
}

/// A ~1000-dimensional *map* (46 nodes, C(46,2) = 1035 pairs) through the
/// full build-and-match path, on a coarse grid to keep the build cheap.
#[test]
fn indexed_matches_at_thousand_dimensions() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let positions: Vec<Point> = (0..46)
        .map(|_| Point::new(rng.gen_range(1.0..99.0), rng.gen_range(1.0..99.0)))
        .collect();
    let map = FaceMap::build(&positions, Rect::square(100.0), 1.15, 5.0);
    assert_eq!(map.pair_dimension(), 1035);
    assert!(map.planes().has_chunks());
    let dim = map.pair_dimension();
    for _ in 0..4 {
        assert_identical(&map, &random_ternary(dim, &mut rng), "dim-1035 ternary");
    }
    let f = &map.faces()[map.face_count() / 2];
    let v = SamplingVector::new(
        f.signature
            .components()
            .iter()
            .map(|&c| Some(c as f64))
            .collect(),
    );
    assert_identical(&map, &v, "dim-1035 exact signature");
}

/// Degenerate map with a single face: the index must return it for any
/// query without panicking, exactly like the scan.
#[test]
fn degenerate_one_face_map() {
    let far = vec![Point::new(10_000.0, 50.0), Point::new(10_010.0, 50.0)];
    let map = FaceMap::build(&far, Rect::square(100.0), 1.15, 5.0);
    assert_eq!(map.face_count(), 1);
    for v in [
        SamplingVector::new(vec![Some(1.0)]),
        SamplingVector::new(vec![Some(-1.0)]),
        SamplingVector::new(vec![None]),
        SamplingVector::new(vec![Some(0.25)]),
    ] {
        assert_identical(&map, &v, "one-face map");
    }
}
