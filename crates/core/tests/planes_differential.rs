//! Differential suite: the packed `SignaturePlanes` distance kernel must be
//! bit-for-bit identical to the scalar `difference_norm_squared` reference,
//! for both ternary and extended (Definition 10) sampling vectors, at every
//! dimension — including the u64 word boundaries the bit-plane layout packs
//! around.

use fttt::vector::{
    difference_norm_squared, PackedQuery, SamplingVector, SignaturePlanes, SignatureVector,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A random face signature of dimension `dim`.
fn random_signature<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> SignatureVector {
    SignatureVector::new((0..dim).map(|_| rng.gen_range(-1i8..=1)).collect())
}

/// A random ternary sampling vector (components in {−1, 0, +1, *}).
fn random_ternary<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> SamplingVector {
    SamplingVector::new(
        (0..dim)
            .map(|_| match rng.gen_range(0..4) {
                0 => Some(-1.0),
                1 => Some(0.0),
                2 => Some(1.0),
                _ => None,
            })
            .collect(),
    )
}

/// A random extended sampling vector (components anywhere in [−1, 1] or *).
fn random_extended<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> SamplingVector {
    SamplingVector::new(
        (0..dim)
            .map(|_| {
                if rng.gen_range(0..5) == 0 {
                    None
                } else {
                    Some(rng.gen_range(-1.0..=1.0f64))
                }
            })
            .collect(),
    )
}

/// Asserts packed == scalar, bit-for-bit, for every face in `sigs`.
fn assert_differential(dim: usize, sigs: &[SignatureVector], v: &SamplingVector) {
    let planes = SignaturePlanes::from_signatures(dim, sigs.iter());
    let q = PackedQuery::new(v);
    for (f, sig) in sigs.iter().enumerate() {
        let packed = planes.distance_squared(f, &q);
        let scalar = difference_norm_squared(v, sig);
        assert_eq!(
            packed.to_bits(),
            scalar.to_bits(),
            "dim {dim} face {f}: packed {packed} != scalar {scalar}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ternary queries take the popcount kernel and agree exactly with the
    /// scalar reference over random dimensions 1..=1000.
    #[test]
    fn ternary_distance_matches_scalar(dim in 1usize..=1000, seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sigs: Vec<SignatureVector> =
            (0..4).map(|_| random_signature(dim, &mut rng)).collect();
        let v = random_ternary(dim, &mut rng);
        prop_assert!(PackedQuery::new(&v).is_packed_ternary());
        assert_differential(dim, &sigs, &v);
    }

    /// Extended (Definition 10) queries take the flat SoA fallback and agree
    /// exactly with the scalar reference over random dimensions 1..=1000.
    #[test]
    fn extended_distance_matches_scalar(dim in 1usize..=1000, seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sigs: Vec<SignatureVector> =
            (0..4).map(|_| random_signature(dim, &mut rng)).collect();
        let v = random_extended(dim, &mut rng);
        assert_differential(dim, &sigs, &v);
    }

    /// Round-tripping a signature through the bit-planes is lossless.
    #[test]
    fn signature_round_trips_through_planes(dim in 1usize..=1000, seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sig = random_signature(dim, &mut rng);
        let planes = SignaturePlanes::from_signatures(dim, [&sig]);
        prop_assert_eq!(planes.signature(0), sig.clone());
        prop_assert_eq!(planes.components(0), sig.components());
    }
}

/// Every dimension around the u64 word boundaries, exhaustively: the padding
/// bits of the last word must never leak into the distance.
#[test]
fn word_boundary_dims_match_scalar() {
    for dim in [
        1, 2, 63, 64, 65, 127, 128, 129, 191, 192, 193, 255, 256, 257,
    ] {
        let mut rng = ChaCha8Rng::seed_from_u64(dim as u64);
        let sigs: Vec<SignatureVector> = (0..8).map(|_| random_signature(dim, &mut rng)).collect();
        for _ in 0..16 {
            assert_differential(dim, &sigs, &random_ternary(dim, &mut rng));
            assert_differential(dim, &sigs, &random_extended(dim, &mut rng));
        }
    }
}

/// The all-star query is distance zero from every face in both kernels.
#[test]
fn all_star_query_is_zero_everywhere() {
    for dim in [1, 64, 65, 200] {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let sigs: Vec<SignatureVector> = (0..4).map(|_| random_signature(dim, &mut rng)).collect();
        let v = SamplingVector::new(vec![None; dim]);
        assert_differential(dim, &sigs, &v);
        let planes = SignaturePlanes::from_signatures(dim, sigs.iter());
        let q = PackedQuery::new(&v);
        for f in 0..planes.face_count() {
            assert_eq!(planes.distance_squared(f, &q), 0.0);
        }
    }
}
