//! SIMD/scalar equivalence through the public API: every kernel the host
//! supports must produce bit-identical distances to the forced scalar
//! fallback, across dimensions that exercise full SIMD blocks, partial
//! blocks, and scalar tail words.
//!
//! The tests serialize on a mutex because the forced-kernel override is
//! process-global state.

use fttt::vector::{
    active_kernel, available_kernels, difference_norm_squared, force_kernel, KernelKind,
    PackedQuery, SamplingVector, SignaturePlanes, SignatureVector,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Mutex;

static KERNEL_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the dispatch pinned to `kind`, restoring auto-detection
/// afterwards even on panic.
fn with_kernel<T>(kind: KernelKind, f: impl FnOnce() -> T) -> T {
    let _guard = KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            force_kernel(None);
        }
    }
    let _reset = Reset;
    assert!(force_kernel(Some(kind)), "kernel {kind:?} not supported");
    f()
}

fn random_signature<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> SignatureVector {
    SignatureVector::new((0..dim).map(|_| rng.gen_range(-1i8..=1)).collect())
}

fn random_ternary<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> SamplingVector {
    SamplingVector::new(
        (0..dim)
            .map(|_| match rng.gen_range(0..4) {
                0 => Some(-1.0),
                1 => Some(0.0),
                2 => Some(1.0),
                _ => None,
            })
            .collect(),
    )
}

/// Dimensions covering every tail shape of the 4-words-per-AVX2-step
/// layout: sub-word, exact word multiples, word multiples ± 1, and sizes
/// leaving 1–3 tail words after the widest SIMD step.
const DIMS: &[usize] = &[
    1, 2, 63, 64, 65, 127, 128, 129, 191, 192, 193, 255, 256, 257, 320, 449, 1000,
];

/// Every available kernel returns bit-identical distances to the scalar
/// loop, for random faces and queries at every tail shape.
#[test]
fn every_kernel_matches_scalar_distances() {
    for &dim in DIMS {
        let mut rng = ChaCha8Rng::seed_from_u64(dim as u64);
        let sigs: Vec<SignatureVector> = (0..6).map(|_| random_signature(dim, &mut rng)).collect();
        let planes = SignaturePlanes::from_signatures(dim, sigs.iter());
        let queries: Vec<SamplingVector> = (0..8).map(|_| random_ternary(dim, &mut rng)).collect();
        let reference: Vec<Vec<f64>> = with_kernel(KernelKind::Scalar, || {
            queries
                .iter()
                .map(|v| {
                    let q = PackedQuery::new(v);
                    assert!(q.is_packed_ternary());
                    (0..planes.face_count())
                        .map(|f| planes.distance_squared(f, &q))
                        .collect()
                })
                .collect()
        });
        // The scalar kernel itself is checked against the f64 reference,
        // so SIMD == scalar == definitional distance, transitively.
        for (v, row) in queries.iter().zip(&reference) {
            for (f, sig) in sigs.iter().enumerate() {
                assert_eq!(row[f].to_bits(), difference_norm_squared(v, sig).to_bits());
            }
        }
        for kind in available_kernels() {
            let got: Vec<Vec<f64>> = with_kernel(kind, || {
                queries
                    .iter()
                    .map(|v| {
                        let q = PackedQuery::new(v);
                        (0..planes.face_count())
                            .map(|f| planes.distance_squared(f, &q))
                            .collect()
                    })
                    .collect()
            });
            for (qi, (a, b)) in reference.iter().zip(&got).enumerate() {
                for f in 0..a.len() {
                    assert_eq!(
                        a[f].to_bits(),
                        b[f].to_bits(),
                        "dim {dim} query {qi} face {f}: {:?} disagrees with scalar ({} vs {})",
                        kind,
                        b[f],
                        a[f]
                    );
                }
            }
        }
    }
}

/// Forcing the scalar fallback is always possible and actually pins the
/// dispatch — the degraded path stays reachable on any host.
#[test]
fn forced_scalar_fallback_is_always_available() {
    let _guard = KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert!(available_kernels().contains(&KernelKind::Scalar));
    assert!(force_kernel(Some(KernelKind::Scalar)));
    assert_eq!(active_kernel(), KernelKind::Scalar);
    force_kernel(None);
    let auto = active_kernel();
    assert!(
        available_kernels().contains(&auto),
        "auto-detected kernel {auto:?} must be one the host supports"
    );
}

/// Kernels the host cannot run are refused, leaving the dispatch intact —
/// `force_kernel` can never set up an illegal-instruction fault.
#[test]
fn unsupported_kernels_are_refused_via_public_api() {
    let _guard = KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let before = active_kernel();
    for kind in [
        KernelKind::Scalar,
        KernelKind::Sse2,
        KernelKind::Avx2,
        KernelKind::Neon,
    ] {
        let supported = available_kernels().contains(&kind);
        assert_eq!(force_kernel(Some(kind)), supported);
        force_kernel(None);
    }
    assert_eq!(active_kernel(), before);
}
