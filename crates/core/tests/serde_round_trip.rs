//! Serde round-trips for FTTT core types (only with `--features serde`).
#![cfg(feature = "serde")]

use fttt::config::PaperParams;
use fttt::error::ErrorStats;
use fttt::vector::{SamplingVector, SignatureVector};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    serde_json::from_str(&serde_json::to_string(value).expect("serialize")).expect("deserialize")
}

#[test]
fn vectors() {
    let sig = SignatureVector::new(vec![-1, 0, 1, 1]);
    assert_eq!(round_trip(&sig), sig);
    let v = SamplingVector::new(vec![Some(0.5), None, Some(-1.0), Some(0.0)]);
    assert_eq!(round_trip(&v), v);
}

#[test]
fn params_and_stats() {
    let p = PaperParams::default()
        .with_nodes(25)
        .with_calibrated_constant();
    let back = round_trip(&p);
    assert_eq!(back, p);
    assert_eq!(back.uncertainty_constant(), p.uncertainty_constant());

    let stats = ErrorStats::from_errors(&[1.0, 2.0, 3.0]);
    assert_eq!(round_trip(&stats), stats);
}
