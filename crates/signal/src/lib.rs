//! Radio-signal substrate: the log-distance path-loss model with log-normal
//! shadowing the paper bases its derivation on (Section 3.2), plus the
//! closed-form **uncertainty constant** `C` of eq. (3).
//!
//! The received signal strength of node *i* at time *k* is (paper eq. 1):
//!
//! ```text
//! PL(d_k^i) = PL(d0) + A − 10·β·log10(d_k^i / d0) + X_k^i,   X ~ N(0, σ²)
//! ```
//!
//! with reference distance `d0 = 1 m`. Two nodes whose RSS differ by less
//! than the sensing resolution `ε` cannot be ordered; taking expectations
//! over the noise yields the distance-ratio bound (eq. 3):
//!
//! ```text
//! C = exp( ln10/(10β)·ε + ½·(ln10/(10β)·√2·σ)² )  >  1
//! ```
//!
//! which parameterizes every Apollonius uncertain boundary in the geometry
//! crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod noise;
pub mod pathloss;
pub mod rss;

pub use noise::{inverse_normal_cdf, normal_cdf, Gaussian};
pub use pathloss::{calibrated_uncertainty_constant, uncertainty_constant, PathLossModel};
pub use rss::Rss;
