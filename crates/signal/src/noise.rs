//! Gaussian noise generation (the shadowing term `X ~ N(0, σ²)` of eq. 1).
//!
//! Implemented with the Box–Muller transform on top of any [`rand::Rng`]
//! rather than pulling in `rand_distr`: the suite needs exactly one
//! distribution, and keeping it in-repo keeps the dependency set to the
//! sanctioned crates.

use rand::Rng;

/// A normal distribution `N(mean, std²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Gaussian {
    /// Mean of the distribution.
    pub mean: f64,
    /// Standard deviation (non-negative).
    pub std: f64,
}

impl Gaussian {
    /// Creates `N(mean, std²)`.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(
            mean.is_finite() && std.is_finite(),
            "Gaussian parameters must be finite"
        );
        assert!(
            std >= 0.0,
            "standard deviation must be non-negative, got {std}"
        );
        Self { mean, std }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self {
            mean: 0.0,
            std: 1.0,
        }
    }

    /// Draws one sample via Box–Muller.
    ///
    /// Uses the polar-free basic form: `z = √(−2 ln u₁) · cos(2π u₂)` with
    /// `u₁ ∈ (0, 1]` so the log never sees zero. One of the two available
    /// variates is deliberately discarded — callers here draw few values per
    /// RNG and the stateless form keeps sampling reproducible regardless of
    /// call interleaving.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // gen::<f64>() is in [0, 1); flip to (0, 1] for the logarithm.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std * z
    }

    /// Fills `out` with independent samples.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for v in out {
            *v = self.sample(rng);
        }
    }
}

/// The standard normal CDF `Φ(x)`, via `erf`-free Abramowitz–Stegun 7.1.26
/// style approximation with |error| < 7.5e-8 — ample for calibrating flip
/// probabilities.
pub fn normal_cdf(x: f64) -> f64 {
    // Φ(x) = ½·erfc(−x/√2); use a rational approximation of erfc.
    let z = x / std::f64::consts::SQRT_2;
    0.5 * erfc(-z)
}

/// Complementary error function (positive and negative arguments), with
/// relative error below 1.2e-7 (Numerical Recipes' `erfc` Chebyshev fit).
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// The standard normal quantile `Φ⁻¹(p)` for `p ∈ (0, 1)`, by bisection on
/// [`normal_cdf`] (monotone; 80 iterations pin it far below the CDF
/// approximation error).
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "quantile probability must be in (0, 1), got {p}"
    );
    let (mut lo, mut hi) = (-40.0_f64, 40.0_f64);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if normal_cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> impl Rng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn sample_statistics_match_parameters() {
        let g = Gaussian::new(3.0, 2.0);
        let mut r = rng(42);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn zero_std_is_deterministic() {
        let g = Gaussian::new(-7.0, 0.0);
        let mut r = rng(1);
        for _ in 0..100 {
            assert_eq!(g.sample(&mut r), -7.0);
        }
    }

    #[test]
    fn samples_are_always_finite() {
        let g = Gaussian::standard();
        let mut r = rng(7);
        for _ in 0..100_000 {
            assert!(g.sample(&mut r).is_finite());
        }
    }

    #[test]
    fn sample_into_fills_buffer() {
        let g = Gaussian::standard();
        let mut r = rng(3);
        let mut buf = [0.0; 32];
        g.sample_into(&mut r, &mut buf);
        // Vanishingly unlikely any entry is exactly zero.
        assert!(buf.iter().all(|v| *v != 0.0));
    }

    #[test]
    fn symmetric_tail_mass() {
        // ~15.9% of N(0,1) mass lies above +1 (and below −1).
        let g = Gaussian::standard();
        let mut r = rng(11);
        let n = 100_000;
        let above = (0..n).filter(|_| g.sample(&mut r) > 1.0).count() as f64 / n as f64;
        assert!((above - 0.1587).abs() < 0.01, "upper tail {above}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_std_rejected() {
        let _ = Gaussian::new(0.0, -1.0);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.841344746).abs() < 1e-6);
        assert!((normal_cdf(-1.0) - 0.158655254).abs() < 1e-6);
        assert!((normal_cdf(1.959963985) - 0.975).abs() < 1e-6);
        assert!((normal_cdf(-3.0) - 0.001349898).abs() < 1e-6);
        assert!(normal_cdf(9.0) > 1.0 - 1e-12);
    }

    #[test]
    fn inverse_normal_cdf_round_trips() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = inverse_normal_cdf(p);
            assert!((normal_cdf(x) - p).abs() < 1e-6, "p = {p}, x = {x}");
        }
        assert!((inverse_normal_cdf(0.975) - 1.959963985).abs() < 1e-4);
        // The quantile inherits the CDF approximation's ~1e-7 error.
        assert!(inverse_normal_cdf(0.5).abs() < 1e-5);
    }

    #[test]
    fn cdf_matches_sampling() {
        let g = Gaussian::standard();
        let mut r = rng(23);
        let n = 200_000;
        let below = (0..n).filter(|_| g.sample(&mut r) < 0.7).count() as f64 / n as f64;
        assert!((below - normal_cdf(0.7)).abs() < 0.005);
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn quantile_rejects_boundary() {
        let _ = inverse_normal_cdf(1.0);
    }
}
