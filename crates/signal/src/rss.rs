//! Received-signal-strength newtype.

use std::cmp::Ordering;
use std::fmt;

/// A received signal strength in dBm.
///
/// RSS values produced by the path-loss model are always finite, which lets
/// us give `Rss` a total order (what the grouping-sampling matrix sorts by)
/// without dragging NaN case analysis through every caller.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rss(f64);

impl Rss {
    /// Wraps a dBm value.
    ///
    /// # Panics
    ///
    /// Panics if `dbm` is NaN (infinities are rejected too): a NaN reading
    /// would silently poison the order statistics of a whole grouping
    /// sampling.
    #[inline]
    pub fn new(dbm: f64) -> Self {
        assert!(dbm.is_finite(), "RSS must be finite, got {dbm}");
        Self(dbm)
    }

    /// The raw dBm value.
    #[inline]
    pub fn dbm(self) -> f64 {
        self.0
    }
}

impl Eq for Rss {}

impl PartialOrd for Rss {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rss {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Finite by construction, so partial_cmp never fails.
        self.0
            .partial_cmp(&other.0)
            .expect("RSS is finite by construction")
    }
}

impl fmt::Display for Rss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_by_dbm() {
        let weak = Rss::new(-80.0);
        let strong = Rss::new(-40.0);
        assert!(strong > weak);
        assert_eq!(strong.max(weak), strong);
        assert_eq!(Rss::new(-55.5).dbm(), -55.5);
    }

    #[test]
    fn sortable_in_collections() {
        let mut v = vec![Rss::new(-60.0), Rss::new(-40.0), Rss::new(-75.0)];
        v.sort();
        assert_eq!(v, vec![Rss::new(-75.0), Rss::new(-60.0), Rss::new(-40.0)]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = Rss::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinity_rejected() {
        let _ = Rss::new(f64::INFINITY);
    }
}
