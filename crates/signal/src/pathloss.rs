//! The log-distance path-loss model with log-normal shadowing (paper eq. 1)
//! and the uncertainty constant of eq. 3.

use crate::noise::Gaussian;
use crate::rss::Rss;
use rand::Rng;

/// Shortest distance the model evaluates at, in metres.
///
/// `log10(d)` diverges as `d → 0`; physically the far-field model is only
/// valid beyond the reference distance anyway, so distances are clamped to
/// this floor (1 cm — far below one grid cell, so the clamp never affects
/// face classification in practice, only the pathological "target standing
/// on a sensor" case).
pub const MIN_DISTANCE: f64 = 0.01;

/// The radio model of paper eq. (1):
/// `PL(d) = PL(d0) + A − 10·β·log10(d/d0) + X`, `X ~ N(0, σ²)`, `d0 = 1 m`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PathLossModel {
    /// Measured path loss at the reference distance `d0 = 1 m`, in dBm.
    pub pl_d0: f64,
    /// The constant offset `A` of eq. (1), in dB.
    pub offset_a: f64,
    /// Path-loss exponent `β` (2 = free space; 3–4 = reflective
    /// environments; the paper's Table 1 uses 4).
    pub beta: f64,
    /// Shadowing standard deviation `σ_X` in dB (Table 1 uses 6).
    pub sigma: f64,
}

impl PathLossModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is not strictly positive, `sigma` is negative, or
    /// any parameter is non-finite.
    pub fn new(pl_d0: f64, offset_a: f64, beta: f64, sigma: f64) -> Self {
        assert!(
            pl_d0.is_finite() && offset_a.is_finite() && beta.is_finite() && sigma.is_finite(),
            "path-loss parameters must be finite"
        );
        assert!(
            beta > 0.0,
            "path-loss exponent must be positive, got {beta}"
        );
        assert!(
            sigma >= 0.0,
            "shadowing σ must be non-negative, got {sigma}"
        );
        Self {
            pl_d0,
            offset_a,
            beta,
            sigma,
        }
    }

    /// The paper's simulation setting (Table 1): `β = 4`, `σ_X = 6`, with a
    /// typical `-40 dBm` reference loss and no extra offset.
    pub fn paper_default() -> Self {
        Self::new(-40.0, 0.0, 4.0, 6.0)
    }

    /// A noise-free variant (same deterministic part, `σ = 0`): useful in
    /// tests that need exact sequence ground truth.
    pub fn noiseless(&self) -> Self {
        Self {
            sigma: 0.0,
            ..*self
        }
    }

    /// Expected RSS at distance `d` metres (the deterministic part of
    /// eq. 1). `d` is clamped to [`MIN_DISTANCE`].
    #[inline]
    pub fn mean_rss(&self, d: f64) -> Rss {
        let d = d.max(MIN_DISTANCE);
        Rss::new(self.pl_d0 + self.offset_a - 10.0 * self.beta * d.log10())
    }

    /// One noisy RSS sample at distance `d` (full eq. 1).
    #[inline]
    pub fn sample_rss<R: Rng + ?Sized>(&self, d: f64, rng: &mut R) -> Rss {
        let noise = Gaussian::new(0.0, self.sigma).sample(rng);
        Rss::new(self.mean_rss(d).dbm() + noise)
    }

    /// One RSS sample with **bounded** (uniform) noise in
    /// `[−half_width, +half_width]` dB instead of eq. 1's Gaussian tail.
    ///
    /// This realizes the paper's *idealized* sensing model (Section 5): two
    /// nodes' order can only flip while the target is inside a bounded
    /// band around their bisector — with half-width `a`, the flip-possible
    /// region is exactly `|ΔRSS_mean| < 2a`, i.e. the Apollonius band of
    /// ratio `C = 10^{2a/(10β)}`. Outside it, sensing is always ordinal,
    /// which is the assumption behind the paper's claim that more sampling
    /// times monotonically reduce error. See
    /// [`PathLossModel::band_half_width`] for the converse mapping.
    ///
    /// # Panics
    ///
    /// Panics if `half_width` is negative or non-finite.
    #[inline]
    pub fn sample_rss_bounded<R: Rng + ?Sized>(&self, d: f64, half_width: f64, rng: &mut R) -> Rss {
        assert!(
            half_width.is_finite() && half_width >= 0.0,
            "noise half-width must be non-negative, got {half_width}"
        );
        let noise = if half_width > 0.0 {
            rng.gen_range(-half_width..=half_width)
        } else {
            0.0
        };
        Rss::new(self.mean_rss(d).dbm() + noise)
    }

    /// The uniform-noise half-width (dB) whose flip-possible region is the
    /// Apollonius band of ratio `c`: `a = 5·β·log10(c)`.
    ///
    /// # Panics
    ///
    /// Panics if `c < 1` or non-finite.
    #[inline]
    pub fn band_half_width(&self, c: f64) -> f64 {
        assert!(c.is_finite() && c >= 1.0, "band ratio must be ≥ 1, got {c}");
        5.0 * self.beta * c.log10()
    }

    /// The uncertainty constant `C` for sensing resolution `epsilon` (dBm),
    /// per eq. (3). See [`uncertainty_constant`].
    #[inline]
    pub fn uncertainty_constant(&self, epsilon: f64) -> f64 {
        uncertainty_constant(epsilon, self.beta, self.sigma)
    }
}

/// The uncertainty constant of paper eq. (3):
///
/// ```text
/// C = exp( ln10/(10β)·ε + ½·(ln10/(10β)·√2·σ)² )
/// ```
///
/// `C ≥ 1`, with equality only for `ε = 0 ∧ σ = 0`. It bounds the distance
/// ratio within which two nodes' RSS cannot be ordered, and so fixes the
/// Apollonius uncertain boundaries of every node pair.
///
/// ```
/// use wsn_signal::uncertainty_constant;
///
/// // The paper's Table-1 setting: β = 4, σ = 6, ε = 1 ⟹ C ≈ 1.1935.
/// let c = uncertainty_constant(1.0, 4.0, 6.0);
/// assert!((c - 1.1935).abs() < 1e-3);
/// ```
///
/// # Panics
///
/// Panics if `epsilon` is negative, `beta` non-positive, `sigma` negative,
/// or any argument non-finite.
pub fn uncertainty_constant(epsilon: f64, beta: f64, sigma: f64) -> f64 {
    assert!(
        epsilon.is_finite() && beta.is_finite() && sigma.is_finite(),
        "uncertainty-constant arguments must be finite"
    );
    assert!(
        epsilon >= 0.0,
        "sensing resolution must be non-negative, got {epsilon}"
    );
    assert!(
        beta > 0.0,
        "path-loss exponent must be positive, got {beta}"
    );
    assert!(
        sigma >= 0.0,
        "shadowing σ must be non-negative, got {sigma}"
    );
    let g = std::f64::consts::LN_10 / (10.0 * beta);
    let spread = g * std::f64::consts::SQRT_2 * sigma;
    (g * epsilon + 0.5 * spread * spread).exp()
}

/// A **flip-calibrated** uncertainty constant: the distance ratio at which
/// a grouping sampling of `k` samples observes the pair's flip with
/// probability ½.
///
/// Eq. (3)'s constant characterizes where the *expected* RSS difference
/// drops below the resolution; but under Gaussian shadowing the *sampled*
/// order keeps flipping far outside that band, and the basic vector's
/// "ordinal only if all k samples agree" criterion grows stricter with k.
/// A face map built with eq. (3)'s C therefore under-sizes its `0` regions
/// relative to what the sampler actually reports, and increasingly so for
/// larger k — which is why, in a physically-noisy simulation, raising k
/// does not by itself lower the error the way the paper's idealized
/// flip-only-inside-the-band analysis (Section 5) predicts.
///
/// This function closes the loop: it finds the per-comparison reverse-order
/// probability `q` at which `P(all k comparisons agree) = (1−q)^k + q^k =
/// ½`, converts it to the mean RSS gap `Δ = ε + √2·σ·Φ⁻¹(1−q)` and returns
/// the matching ratio `C = 10^{Δ/(10β)}`. Building the face map with this
/// `C(k)` makes the offline division consistent with the online sampling
/// statistics at any k (the `fig12b` experiment contrasts both choices).
///
/// # Panics
///
/// Panics if `k < 2` (a single sample can never witness a flip) or on the
/// same parameter violations as [`uncertainty_constant`].
pub fn calibrated_uncertainty_constant(epsilon: f64, beta: f64, sigma: f64, k: usize) -> f64 {
    assert!(
        k >= 2,
        "flip calibration needs at least two samples, got {k}"
    );
    assert!(
        epsilon.is_finite() && beta.is_finite() && sigma.is_finite(),
        "calibrated-constant arguments must be finite"
    );
    assert!(
        epsilon >= 0.0,
        "sensing resolution must be non-negative, got {epsilon}"
    );
    assert!(
        beta > 0.0,
        "path-loss exponent must be positive, got {beta}"
    );
    assert!(
        sigma >= 0.0,
        "shadowing σ must be non-negative, got {sigma}"
    );

    // Solve (1−q)^k + q^k = ½ for q ∈ (0, ½); the LHS falls monotonically
    // from 1 (q = 0) to 2^{1−k} ≤ ½ (q = ½).
    let kf = k as i32;
    let agree = |q: f64| (1.0 - q).powi(kf) + q.powi(kf);
    let (mut lo, mut hi) = (0.0_f64, 0.5_f64);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if agree(mid) > 0.5 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let q = 0.5 * (lo + hi);

    // Mean RSS gap whose comparison reverses with probability q under
    // X_n − X_m ~ N(0, 2σ²), plus the resolution dead-band.
    let delta =
        epsilon + std::f64::consts::SQRT_2 * sigma * crate::noise::inverse_normal_cdf(1.0 - q);
    10f64.powf(delta / (10.0 * beta)).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> impl Rng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn mean_rss_decreases_with_distance() {
        let m = PathLossModel::paper_default();
        let mut prev = m.mean_rss(0.5);
        for d in [1.0, 2.0, 5.0, 10.0, 40.0, 100.0] {
            let r = m.mean_rss(d);
            assert!(
                r < prev,
                "RSS must fall with distance: {r} !< {prev} at {d} m"
            );
            prev = r;
        }
    }

    #[test]
    fn reference_distance_anchors_the_model() {
        let m = PathLossModel::new(-40.0, 0.0, 4.0, 6.0);
        // At d0 = 1 m the log term vanishes.
        assert_eq!(m.mean_rss(1.0).dbm(), -40.0);
        // One decade out: −10β dB.
        assert_eq!(m.mean_rss(10.0).dbm(), -80.0);
    }

    #[test]
    fn offset_a_shifts_rss_uniformly() {
        let base = PathLossModel::new(-40.0, 0.0, 4.0, 0.0);
        let shifted = PathLossModel::new(-40.0, 7.5, 4.0, 0.0);
        for d in [1.0, 3.0, 30.0] {
            assert!((shifted.mean_rss(d).dbm() - base.mean_rss(d).dbm() - 7.5).abs() < 1e-12);
        }
    }

    #[test]
    fn tiny_distances_are_clamped() {
        let m = PathLossModel::paper_default();
        assert_eq!(m.mean_rss(0.0), m.mean_rss(MIN_DISTANCE));
        assert_eq!(m.mean_rss(1e-9), m.mean_rss(MIN_DISTANCE));
    }

    #[test]
    fn sample_rss_statistics() {
        let m = PathLossModel::paper_default();
        let mut r = rng(5);
        let n = 100_000;
        let d = 25.0;
        let samples: Vec<f64> = (0..n).map(|_| m.sample_rss(d, &mut r).dbm()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - m.mean_rss(d).dbm()).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - m.sigma).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn noiseless_is_deterministic() {
        let m = PathLossModel::paper_default().noiseless();
        let mut r = rng(9);
        let a = m.sample_rss(12.0, &mut r);
        let b = m.sample_rss(12.0, &mut r);
        assert_eq!(a, b);
        assert_eq!(a, m.mean_rss(12.0));
    }

    #[test]
    fn paper_constant_value() {
        // β = 4, σ = 6, ε = 1: g = ln10/40 ≈ 0.0575646;
        // C = exp(0.0575646 + ½·(0.0575646·√2·6)²) ≈ 1.1935.
        let c = uncertainty_constant(1.0, 4.0, 6.0);
        assert!((c - 1.1935).abs() < 1e-3, "C = {c}");
    }

    #[test]
    fn constant_is_one_only_without_noise_or_resolution() {
        assert_eq!(uncertainty_constant(0.0, 4.0, 0.0), 1.0);
        assert!(uncertainty_constant(0.5, 4.0, 0.0) > 1.0);
        assert!(uncertainty_constant(0.0, 4.0, 1.0) > 1.0);
    }

    #[test]
    fn constant_monotone_in_epsilon_and_sigma() {
        let mut prev = 1.0;
        for eps in [0.5, 1.0, 2.0, 3.0] {
            let c = uncertainty_constant(eps, 4.0, 6.0);
            assert!(c > prev);
            prev = c;
        }
        let mut prev = 1.0;
        for sigma in [1.0, 2.0, 4.0, 8.0] {
            let c = uncertainty_constant(1.0, 4.0, sigma);
            assert!(c > prev);
            prev = c;
        }
    }

    #[test]
    fn constant_decreases_with_beta() {
        // Stronger attenuation separates nodes better: C shrinks toward 1.
        let c2 = uncertainty_constant(1.0, 2.0, 6.0);
        let c4 = uncertainty_constant(1.0, 4.0, 6.0);
        assert!(c4 < c2);
    }

    /// Empirical link to the geometry: a target on the perpendicular
    /// bisector of two nodes sees each pairwise order about half the time.
    #[test]
    fn flip_probability_on_bisector() {
        let m = PathLossModel::paper_default();
        let mut r = rng(13);
        let d = 20.0_f64; // both nodes 20 m away
        let n = 20_000;
        let first_wins = (0..n)
            .filter(|_| m.sample_rss(d, &mut r) > m.sample_rss(d, &mut r))
            .count() as f64
            / n as f64;
        assert!(
            (first_wins - 0.5).abs() < 0.02,
            "P(first louder) = {first_wins}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_beta_rejected() {
        let _ = uncertainty_constant(1.0, 0.0, 6.0);
    }

    #[test]
    fn calibrated_constant_widens_with_k() {
        // The set of ratios where a flip is likely to be *witnessed* grows
        // with the number of samples.
        let c3 = calibrated_uncertainty_constant(1.0, 4.0, 6.0, 3);
        let c5 = calibrated_uncertainty_constant(1.0, 4.0, 6.0, 5);
        let c9 = calibrated_uncertainty_constant(1.0, 4.0, 6.0, 9);
        assert!(c3 > 1.0);
        assert!(c5 > c3, "c5 {c5} vs c3 {c3}");
        assert!(c9 > c5, "c9 {c9} vs c5 {c5}");
        // And it is substantially wider than the expectation-based eq. (3).
        assert!(c5 > uncertainty_constant(1.0, 4.0, 6.0));
    }

    /// Monte-Carlo: at the calibrated boundary ratio, a k-sample grouping
    /// should see both orders about half the time.
    #[test]
    fn calibrated_constant_halves_flip_observation() {
        let (eps, beta, sigma, k) = (1.0, 4.0, 6.0, 5usize);
        let c = calibrated_uncertainty_constant(eps, beta, sigma, k);
        // Two nodes; target placed so that d_m/d_n = c exactly. The mean
        // RSS gap is then 10β·log10(c); include ε as the dead-band the
        // derivation uses (comparison is biased by ε at the boundary).
        let gap = 10.0 * beta * c.log10() - eps;
        let noise = Gaussian::new(0.0, sigma);
        let mut r = rng(31);
        let trials = 40_000;
        let mut flipped = 0;
        for _ in 0..trials {
            let mut seen_fwd = false;
            let mut seen_rev = false;
            for _ in 0..k {
                // Sign of (RSS_near − RSS_far): mean gap plus two noises.
                let delta = gap + noise.sample(&mut r) - noise.sample(&mut r);
                if delta >= 0.0 {
                    seen_fwd = true;
                } else {
                    seen_rev = true;
                }
            }
            if seen_fwd && seen_rev {
                flipped += 1;
            }
        }
        let frac = flipped as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.03, "flip-witness fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn calibration_needs_two_samples() {
        let _ = calibrated_uncertainty_constant(1.0, 4.0, 6.0, 1);
    }

    #[test]
    fn bounded_noise_stays_in_band() {
        let m = PathLossModel::paper_default();
        let mut r = rng(41);
        let mean = m.mean_rss(20.0).dbm();
        for _ in 0..10_000 {
            let s = m.sample_rss_bounded(20.0, 1.5, &mut r).dbm();
            assert!((s - mean).abs() <= 1.5 + 1e-12);
        }
        // Zero width is exact.
        assert_eq!(m.sample_rss_bounded(20.0, 0.0, &mut r), m.mean_rss(20.0));
    }

    #[test]
    fn band_half_width_matches_ratio() {
        let m = PathLossModel::paper_default();
        let c = uncertainty_constant(1.0, 4.0, 6.0);
        let a = m.band_half_width(c);
        // Two nodes at distance ratio exactly c: mean RSS gap = 2a, so a
        // flip under ±a noise is *just barely* impossible — the band edge.
        let gap = 10.0 * m.beta * c.log10();
        assert!((gap - 2.0 * a).abs() < 1e-12);
        assert_eq!(m.band_half_width(1.0), 0.0);
    }
}
