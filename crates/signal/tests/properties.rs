//! Property-based tests for the radio-signal substrate.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wsn_signal::{
    calibrated_uncertainty_constant, inverse_normal_cdf, normal_cdf, uncertainty_constant,
    Gaussian, PathLossModel,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Mean RSS is strictly decreasing in distance (above the clamp).
    #[test]
    fn mean_rss_monotone(
        beta in 1.5..5.0f64,
        d1 in 0.05..500.0f64,
        factor in 1.01..10.0f64,
    ) {
        let m = PathLossModel::new(-40.0, 0.0, beta, 0.0);
        prop_assert!(m.mean_rss(d1) > m.mean_rss(d1 * factor));
    }

    /// The uncertainty constant is ≥ 1, increasing in ε and σ, decreasing
    /// in β.
    #[test]
    fn constant_monotonicities(
        eps in 0.0..5.0f64,
        beta in 1.5..5.0f64,
        sigma in 0.0..10.0f64,
        d_eps in 0.01..2.0f64,
        d_sigma in 0.01..3.0f64,
        d_beta in 0.01..2.0f64,
    ) {
        let c = uncertainty_constant(eps, beta, sigma);
        prop_assert!(c >= 1.0);
        prop_assert!(uncertainty_constant(eps + d_eps, beta, sigma) >= c);
        prop_assert!(uncertainty_constant(eps, beta, sigma + d_sigma) >= c);
        prop_assert!(uncertainty_constant(eps, beta + d_beta, sigma) <= c);
    }

    /// The calibrated constant is ≥ the eq.-3 constant and grows with k.
    #[test]
    fn calibrated_constant_ordering(
        eps in 0.0..3.0f64,
        beta in 2.0..5.0f64,
        sigma in 0.5..8.0f64,
        k in 2usize..12,
    ) {
        let c_k = calibrated_uncertainty_constant(eps, beta, sigma, k);
        let c_k1 = calibrated_uncertainty_constant(eps, beta, sigma, k + 1);
        prop_assert!(c_k >= 1.0);
        prop_assert!(c_k1 >= c_k - 1e-12);
    }

    /// Φ and Φ⁻¹ are mutual inverses over the useful range.
    #[test]
    fn normal_cdf_inverse_round_trip(p in 0.0005..0.9995f64) {
        let x = inverse_normal_cdf(p);
        prop_assert!((normal_cdf(x) - p).abs() < 1e-6);
    }

    /// Φ is monotone and symmetric: Φ(−x) = 1 − Φ(x).
    #[test]
    fn normal_cdf_shape(x in -6.0..6.0f64, dx in 0.001..2.0f64) {
        prop_assert!(normal_cdf(x + dx) > normal_cdf(x));
        prop_assert!((normal_cdf(-x) - (1.0 - normal_cdf(x))).abs() < 1e-7);
    }

    /// Gaussian samples from the same seed agree; shifting the mean shifts
    /// samples exactly.
    #[test]
    fn gaussian_determinism_and_shift(seed in 0u64..10_000, mean in -10.0..10.0f64) {
        let a = Gaussian::new(0.0, 2.0)
            .sample(&mut ChaCha8Rng::seed_from_u64(seed));
        let b = Gaussian::new(mean, 2.0)
            .sample(&mut ChaCha8Rng::seed_from_u64(seed));
        prop_assert!((b - a - mean).abs() < 1e-12);
    }

    /// Bounded sampling never leaves the band.
    #[test]
    fn bounded_noise_respects_width(
        seed in 0u64..1000,
        width in 0.0..10.0f64,
        d in 0.5..100.0f64,
    ) {
        let m = PathLossModel::paper_default();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..50 {
            let s = m.sample_rss_bounded(d, width, &mut rng);
            prop_assert!((s.dbm() - m.mean_rss(d).dbm()).abs() <= width + 1e-12);
        }
    }
}
