//! Concurrency contract of the trace journal under real worker threads.
//!
//! Drives the ring buffer from `wsn_parallel::par_map_threads` — the same
//! pool the instrumented hot paths run on — and checks the two invariants
//! the journal promises:
//!
//! * **No torn events.** Every retained event is internally consistent
//!   (its args were written by exactly one emitter, in full).
//! * **Exact accounting.** `retained + dropped == emitted`, with no
//!   sequence number retained twice.
//!
//! Lives in its own integration-test binary alongside `global_sink.rs`;
//! the `spans_through_global_journal` test owns the process-global journal
//! for its duration (no other test in this binary installs one).

use std::sync::Arc;
use wsn_parallel::par_map_threads;
use wsn_telemetry as telemetry;
use wsn_telemetry::{ArgValue, Journal, TraceKind};

/// Recompute the self-check an emitter encoded into its event args; a torn
/// or mixed event fails it.
fn assert_consistent(args: &[(&'static str, ArgValue)]) {
    let get = |key: &str| {
        args.iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| match v {
                ArgValue::U64(n) => *n,
                other => panic!("unexpected arg type {other:?}"),
            })
            .unwrap_or_else(|| panic!("missing arg {key}"))
    };
    let i = get("i");
    assert_eq!(get("i_squared"), i * i, "torn event for i={i}");
    assert_eq!(get("i_plus_tag"), i + 0xABCD, "torn event for i={i}");
}

#[test]
fn ring_holds_under_worker_pool_with_exact_overflow_accounting() {
    // Capacity far below the emission count so the ring wraps many times
    // while 8 workers race it.
    let journal = Arc::new(Journal::with_capacity(256));
    let items: Vec<u64> = (0..20_000).collect();
    par_map_threads(8, &items, |_, &i| {
        journal.record(
            "test.event",
            TraceKind::Instant,
            vec![
                ("i", ArgValue::U64(i)),
                ("i_squared", ArgValue::U64(i * i)),
                ("i_plus_tag", ArgValue::U64(i + 0xABCD)),
            ],
        );
    });

    let log = journal.snapshot();
    assert_eq!(journal.emitted(), items.len() as u64);
    assert_eq!(
        log.events.len() as u64 + log.dropped,
        journal.emitted(),
        "retained + dropped must equal emitted exactly"
    );
    assert!(
        log.events.len() <= 256,
        "retained {} events in a 256-slot ring",
        log.events.len()
    );
    assert!(!log.events.is_empty(), "a wrapped ring still holds events");

    let mut seen = std::collections::HashSet::new();
    for event in &log.events {
        assert!(
            seen.insert(event.seq),
            "sequence {} retained twice",
            event.seq
        );
        assert_eq!(event.name, "test.event");
        assert_eq!(event.kind, TraceKind::Instant);
        assert_consistent(&event.args);
    }
}

#[test]
fn single_threaded_overflow_counter_is_exact() {
    // Without contention every drop is a ring overwrite, so the counter
    // is exactly emitted - capacity and the survivors are the newest.
    let journal = Journal::with_capacity(64);
    for i in 0..1000u64 {
        journal.record("solo", TraceKind::Instant, vec![("i", ArgValue::U64(i))]);
    }
    let log = journal.snapshot();
    assert_eq!(log.dropped, 1000 - 64);
    assert_eq!(log.events.len(), 64);
    assert_eq!(
        log.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
        (936..1000).collect::<Vec<_>>()
    );
}

#[test]
fn spans_through_global_journal() {
    // The full production path: journal installed process-wide, spans and
    // instants emitted from pool workers via the crate-level entry points.
    let journal = Arc::new(Journal::with_capacity(4096));
    telemetry::install_journal(Arc::clone(&journal));
    assert!(telemetry::journal_enabled());

    let items: Vec<u64> = (0..200).collect();
    par_map_threads(4, &items, |_, &i| {
        let _outer = telemetry::span("test.outer");
        let _inner = telemetry::span("test.inner");
        telemetry::trace_instant("test.mark", vec![("i", ArgValue::U64(i))]);
    });

    let uninstalled = telemetry::uninstall_journal().expect("journal was installed");
    assert!(Arc::ptr_eq(&uninstalled, &journal));
    assert!(!telemetry::journal_enabled());
    // Emission after uninstall is a no-op.
    telemetry::trace_instant("test.after", vec![]);

    let log = journal.snapshot();
    assert_eq!(log.dropped, 0, "4096 slots must hold 1000 events");
    assert_eq!(log.events.len(), items.len() * 5);
    assert!(log.events.iter().all(|e| e.name != "test.after"));

    // Per thread, each inner span's parent is the outer span opened just
    // before it on the same thread.
    let mut open_outer: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut inner_seen = 0;
    for event in &log.events {
        match (&event.kind, event.name) {
            (TraceKind::SpanBegin { id, parent }, "test.outer") => {
                assert_eq!(*parent, None);
                open_outer.insert(event.thread, *id);
            }
            (TraceKind::SpanBegin { id: _, parent }, "test.inner") => {
                assert_eq!(
                    *parent,
                    open_outer.get(&event.thread).copied(),
                    "inner span must nest under its thread's outer span"
                );
                inner_seen += 1;
            }
            _ => {}
        }
    }
    assert_eq!(inner_seen, items.len());
}
