//! Tests for the process-wide sink. The sink is global state, so every test
//! that touches it serializes on one mutex (the unit tests in `src/` only
//! use local `Registry` instances and can run freely in parallel).

use std::sync::{Arc, Mutex, MutexGuard};
use wsn_telemetry as telemetry;
use wsn_telemetry::Registry;

static SINK_LOCK: Mutex<()> = Mutex::new(());

fn sink_guard() -> MutexGuard<'static, ()> {
    // A panicking test poisons the mutex; the lock itself is stateless.
    SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn disabled_sink_drops_everything() {
    let _guard = sink_guard();
    assert!(!telemetry::enabled());
    telemetry::counter_add("nobody.listening", 5);
    telemetry::gauge_set("nobody.listening", 1.0);
    telemetry::observe("nobody.listening", telemetry::COUNT_BUCKETS, 1.0);
    drop(telemetry::span("nobody.listening"));
    let registry = Arc::new(Registry::new());
    telemetry::install(registry.clone());
    let snap = registry.snapshot();
    telemetry::uninstall();
    assert!(
        snap.is_empty(),
        "pre-install events must not be buffered: {snap:?}"
    );
}

#[test]
fn installed_sink_collects_and_uninstall_returns_it() {
    let _guard = sink_guard();
    let registry = Arc::new(Registry::new());
    telemetry::install(registry.clone());
    assert!(telemetry::enabled());
    telemetry::counter_add("events", 2);
    telemetry::gauge_set("level", 4.5);
    {
        let _span = telemetry::span("phase");
        std::hint::black_box(0u64);
    }
    let back = telemetry::uninstall().expect("a sink was installed");
    assert!(Arc::ptr_eq(&back, &registry));
    assert!(!telemetry::enabled());
    let snap = registry.snapshot();
    assert_eq!(snap.counters["events"], 2);
    assert_eq!(snap.gauges["level"], 4.5);
    assert_eq!(snap.histograms["phase"].count, 1);
    assert!(snap.histograms["phase"].sum >= 0.0);
    // After uninstall, further events vanish.
    telemetry::counter_add("events", 100);
    assert_eq!(registry.snapshot().counters["events"], 2);
}

#[test]
fn concurrent_counter_increments_are_lossless() {
    let _guard = sink_guard();
    let registry = Arc::new(Registry::new());
    telemetry::install(registry.clone());
    let items: Vec<u64> = (0..4096).collect();
    let partials = wsn_parallel::par_map_threads(8, &items, |_, &i| {
        telemetry::counter_add("parallel.events", 1);
        registry
            .histogram("parallel.width", telemetry::COUNT_BUCKETS)
            .observe((i % 7) as f64);
        1u64
    });
    telemetry::uninstall();
    assert_eq!(partials.iter().sum::<u64>(), 4096);
    let snap = registry.snapshot();
    assert_eq!(snap.counters["parallel.events"], 4096);
    let h = &snap.histograms["parallel.width"];
    assert_eq!(h.count, 4096);
    assert_eq!(h.counts.iter().sum::<u64>(), 4096);
}
