//! The metrics registry and its plain-data snapshots.

use crate::metrics::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// A named collection of counters, gauges and histograms.
///
/// Metrics are created lazily on first use and handed out as `Arc`s, so a
/// hot loop can resolve its counter once and update it lock-free. Names are
/// dot-separated paths (`fttt.match.evaluations`); the maps are B-trees so
/// snapshots and exports iterate in sorted order deterministically.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self
            .counters
            .read()
            .expect("registry lock poisoned")
            .get(name)
        {
            return Arc::clone(c);
        }
        let mut map = self.counters.write().expect("registry lock poisoned");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// The gauge named `name`, created at `0.0` on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self
            .gauges
            .read()
            .expect("registry lock poisoned")
            .get(name)
        {
            return Arc::clone(g);
        }
        let mut map = self.gauges.write().expect("registry lock poisoned");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// The histogram named `name`, created with `bounds` on first use.
    /// Later calls return the existing histogram and ignore `bounds`.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        if let Some(h) = self
            .histograms
            .read()
            .expect("registry lock poisoned")
            .get(name)
        {
            return Arc::clone(h);
        }
        let mut map = self.histograms.write().expect("registry lock poisoned");
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// A point-in-time copy of every metric's current value.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .read()
            .expect("registry lock poisoned")
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("registry lock poisoned")
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("registry lock poisoned")
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        bounds: h.bounds().to_vec(),
                        counts: h.bucket_counts(),
                        count: h.count(),
                        sum: h.sum(),
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A point-in-time copy of a histogram's state.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Configured upper bounds (excluding the implicit `+Inf`).
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; one entry per bound plus the
    /// trailing `+Inf` overflow bucket.
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the observations, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Plain-data copy of a [`Registry`]: mergeable across trials, exportable as
/// JSON or Prometheus text (see the [`export`](crate::Snapshot::to_json)
/// methods).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the snapshot carries no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold `other` into `self`: counters add, gauges take `other`'s value
    /// (last write wins), histograms with identical bounds add bucket
    /// counts and sums.
    ///
    /// A histogram present on both sides whose bucket bounds disagree —
    /// snapshots from different telemetry versions, or a registry whose
    /// bucket ladder changed between releases — cannot be merged
    /// meaningfully: adding counts bucket-by-bucket would silently
    /// misattribute observations. That case is a named
    /// [`MergeError::HistogramBounds`], and the merge is atomic: on error
    /// `self` is left exactly as it was (validation happens before any
    /// mutation).
    pub fn try_merge(&mut self, other: &Snapshot) -> Result<(), MergeError> {
        for (name, h) in &other.histograms {
            if let Some(mine) = self.histograms.get(name) {
                if mine.bounds != h.bounds {
                    return Err(MergeError::HistogramBounds {
                        name: name.clone(),
                        ours: mine.bounds.clone(),
                        theirs: h.bounds.clone(),
                    });
                }
            }
        }
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => {
                    for (a, b) in mine.counts.iter_mut().zip(&h.counts) {
                        *a += b;
                    }
                    mine.count += h.count;
                    mine.sum += h.sum;
                }
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
        Ok(())
    }

    /// Merges per-shard snapshots into one, folding in ascending shard-id
    /// order regardless of the order `parts` arrives in.
    ///
    /// [`Snapshot::try_merge`] is order-sensitive for gauges (last write
    /// wins), so a coordinator that merged shards in arrival order —
    /// thread completion, readdir order, hash-map iteration — would
    /// produce merged gauge values that differ from run to run. Sorting by
    /// shard id first makes the merged snapshot a pure function of the
    /// shard contents: ties on shard id keep their relative order (stable
    /// sort), so duplicate ids are at least deterministic for a given
    /// input order.
    ///
    /// Fails with the first [`MergeError`] encountered (in shard-id
    /// order), naming the offending histogram.
    pub fn merge_shards(parts: Vec<(usize, Snapshot)>) -> Result<Snapshot, MergeError> {
        let mut parts = parts;
        parts.sort_by_key(|(shard, _)| *shard);
        let mut merged = Snapshot::new();
        for (_, snap) in &parts {
            merged.try_merge(snap)?;
        }
        Ok(merged)
    }
}

/// Why two [`Snapshot`]s refused to merge.
#[derive(Clone, Debug, PartialEq)]
pub enum MergeError {
    /// The same histogram name carries different bucket ladders on the two
    /// sides — typically snapshots produced by different telemetry
    /// versions. Bucket-by-bucket addition would be garbage, so the merge
    /// refuses instead.
    HistogramBounds {
        /// The histogram's registry name.
        name: String,
        /// The bounds already held by the merge target.
        ours: Vec<f64>,
        /// The bounds carried by the snapshot being folded in.
        theirs: Vec<f64>,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::HistogramBounds { name, ours, theirs } => write!(
                f,
                "histogram {name:?}: bucket bounds differ ({ours:?} vs {theirs:?}) — \
                 snapshots from different telemetry versions cannot be merged"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_hands_out_shared_metrics() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").add(3);
        assert_eq!(r.counter("a").get(), 5);
        r.gauge("g").set(1.5);
        assert_eq!(r.gauge("g").get(), 1.5);
        let h = r.histogram("h", &[1.0, 2.0]);
        h.observe(0.5);
        // Second resolve ignores the (different) bounds and returns the same
        // histogram.
        r.histogram("h", &[9.0]).observe(1.5);
        assert_eq!(h.bucket_counts(), vec![1, 1, 0]);
    }

    #[test]
    fn snapshot_copies_current_state() {
        let r = Registry::new();
        r.counter("events").add(7);
        r.gauge("level").set(-2.0);
        r.histogram("width", &[1.0, 4.0]).observe(3.0);
        let snap = r.snapshot();
        assert_eq!(snap.counters["events"], 7);
        assert_eq!(snap.gauges["level"], -2.0);
        let h = &snap.histograms["width"];
        assert_eq!(h.counts, vec![0, 1, 0]);
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 3.0);
        assert_eq!(h.mean(), 3.0);
        // Registry keeps evolving; the snapshot does not.
        r.counter("events").inc();
        assert_eq!(snap.counters["events"], 7);
    }

    #[test]
    fn merge_adds_counters_overwrites_gauges_sums_histograms() {
        let a = Registry::new();
        a.counter("c").add(2);
        a.gauge("g").set(1.0);
        a.histogram("h", &[1.0, 2.0]).observe(0.5);
        let b = Registry::new();
        b.counter("c").add(40);
        b.counter("only_b").inc();
        b.gauge("g").set(9.0);
        b.histogram("h", &[1.0, 2.0]).observe(1.5);
        let mut merged = a.snapshot();
        merged.try_merge(&b.snapshot()).unwrap();
        assert_eq!(merged.counters["c"], 42);
        assert_eq!(merged.counters["only_b"], 1);
        assert_eq!(merged.gauges["g"], 9.0);
        let h = &merged.histograms["h"];
        assert_eq!(h.counts, vec![1, 1, 0]);
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 2.0);
    }

    #[test]
    fn merge_shards_is_order_independent() {
        // Three shards that all set the same gauge: the merged value must
        // be shard 2's no matter how the parts are ordered on arrival.
        let part = |shard: usize| {
            let r = Registry::new();
            r.counter("rounds").add(10 + shard as u64);
            r.gauge("queue_depth").set(shard as f64);
            r.histogram("lat", &[1.0, 2.0]).observe(shard as f64);
            (shard, r.snapshot())
        };
        let orderings: [[usize; 3]; 3] = [[0, 1, 2], [2, 0, 1], [1, 2, 0]];
        let merged: Vec<Snapshot> = orderings
            .iter()
            .map(|o| Snapshot::merge_shards(o.iter().map(|&s| part(s)).collect()).unwrap())
            .collect();
        assert_eq!(merged[0], merged[1]);
        assert_eq!(merged[0], merged[2]);
        assert_eq!(merged[0].counters["rounds"], 33);
        assert_eq!(
            merged[0].gauges["queue_depth"], 2.0,
            "highest shard id wins the gauge, not arrival order"
        );
        assert_eq!(merged[0].histograms["lat"].count, 3);
    }

    /// Regression for the silent-garbage bug: merging snapshots whose
    /// histogram bucket ladders disagree (e.g. produced by two different
    /// telemetry versions) used to replace the histogram wholesale,
    /// silently discarding one side's observations. It is now a named
    /// error, and the failed merge leaves the target untouched.
    #[test]
    fn merge_refuses_mismatched_histogram_bounds() {
        // "Old telemetry version": a 2-bucket latency ladder.
        let a = Registry::new();
        a.counter("rounds").add(5);
        a.histogram("lat_us", &[1.0, 10.0]).observe(0.5);
        // "New telemetry version": the ladder grew a bucket.
        let b = Registry::new();
        b.counter("rounds").add(7);
        b.histogram("lat_us", &[1.0, 10.0, 100.0]).observe(3.0);

        let mut merged = a.snapshot();
        let before = merged.clone();
        let err = merged.try_merge(&b.snapshot()).unwrap_err();
        match &err {
            MergeError::HistogramBounds { name, ours, theirs } => {
                assert_eq!(name, "lat_us");
                assert_eq!(ours, &vec![1.0, 10.0]);
                assert_eq!(theirs, &vec![1.0, 10.0, 100.0]);
            }
        }
        let msg = err.to_string();
        assert!(msg.contains("lat_us"), "{msg}");
        assert!(msg.contains("telemetry versions"), "{msg}");
        // Atomic failure: nothing — not even the counters — was folded in.
        assert_eq!(merged, before);

        // merge_shards surfaces the same error instead of folding garbage.
        let parts = vec![(0usize, a.snapshot()), (1usize, b.snapshot())];
        assert!(Snapshot::merge_shards(parts).is_err());
    }

    #[test]
    fn merge_accepts_histogram_only_on_one_side() {
        let a = Registry::new();
        a.histogram("h", &[1.0]).observe(0.5);
        let b = Registry::new();
        b.histogram("other", &[2.0, 4.0]).observe(3.0);
        let mut merged = a.snapshot();
        merged.try_merge(&b.snapshot()).unwrap();
        assert_eq!(merged.histograms["h"].count, 1);
        assert_eq!(merged.histograms["other"].count, 1);
    }
}
