//! Upfront writability checks for output artifacts.
//!
//! Long runs that only open their `--metrics-out` / `--trace-out` /
//! `--shard-dir` targets *after* the work completes turn a typo'd
//! directory into an hours-later panic. Every artifact-writing binary
//! calls these probes first, so a bad path fails in milliseconds with a
//! message naming the flag and the path instead of a backtrace after a
//! full campaign.

use std::fs::OpenOptions;
use std::path::Path;

/// Probes that `path` can be created (or appended to) as a regular file.
///
/// A file created purely by the probe is removed again, so a later
/// failure does not leave a zero-byte artifact behind; an existing file
/// is left byte-identical (the probe opens in append mode and writes
/// nothing). Returns a human-readable diagnostic naming the path on
/// failure.
pub fn ensure_writable_file(path: &Path) -> Result<(), String> {
    let existed = path.exists();
    if existed && path.is_dir() {
        return Err(format!("{} is a directory, not a file", path.display()));
    }
    match OpenOptions::new().append(true).create(true).open(path) {
        Ok(_) => {
            if !existed {
                // Best-effort: the probe's empty file is noise, not data.
                let _ = std::fs::remove_file(path);
            }
            Ok(())
        }
        Err(e) => Err(format!("cannot write {}: {e}", path.display())),
    }
}

/// Probes that `dir` exists (creating it if needed) and that files can be
/// created inside it. The probe file is removed before returning.
pub fn ensure_writable_dir(dir: &Path) -> Result<(), String> {
    if dir.exists() && !dir.is_dir() {
        return Err(format!("{} exists and is not a directory", dir.display()));
    }
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create directory {}: {e}", dir.display()))?;
    let probe = dir.join(".writable-probe");
    match OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&probe)
    {
        Ok(_) => {
            let _ = std::fs::remove_file(&probe);
            Ok(())
        }
        Err(e) => Err(format!("cannot create files in {}: {e}", dir.display())),
    }
}

/// Writes `contents` to `path` atomically: the bytes go to a sibling
/// `.tmp` file in the same directory (same filesystem, so the rename
/// cannot cross a mount) which is then renamed over `path`.
///
/// This is the crash-consistency primitive behind periodic artifact
/// flushes (`wsn-serve --metrics-interval`, the flight recorder): a
/// reader never observes a half-written file — it sees either the
/// previous complete artifact or the new one. A crash mid-write leaves
/// at worst a stale `<name>.tmp` beside an intact `path`.
pub fn write_file_atomic(path: &Path, contents: &[u8]) -> Result<(), String> {
    let file_name = path
        .file_name()
        .ok_or_else(|| format!("{} has no file name", path.display()))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, contents).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(format!(
            "cannot rename {} over {}: {e}",
            tmp.display(),
            path.display()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fttt-artifacts-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn writable_file_accepts_and_leaves_no_probe() {
        let dir = scratch("file-ok");
        let path = dir.join("out.json");
        assert_eq!(ensure_writable_file(&path), Ok(()));
        assert!(!path.exists(), "probe must clean up the file it created");
        // An existing file is untouched.
        std::fs::write(&path, b"data").unwrap();
        assert_eq!(ensure_writable_file(&path), Ok(()));
        assert_eq!(std::fs::read(&path).unwrap(), b"data");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writable_file_rejects_missing_parent_and_directories() {
        let dir = scratch("file-bad");
        let missing = dir.join("no/such/dir/out.json");
        let err = ensure_writable_file(&missing).unwrap_err();
        assert!(err.contains("out.json"), "diagnostic names the path: {err}");
        let err = ensure_writable_file(&dir).unwrap_err();
        assert!(err.contains("directory"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = scratch("atomic");
        let path = dir.join("snap.json");
        write_file_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_file_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            1,
            "no .tmp residue after a successful write"
        );
        // A doomed target (missing parent) fails with a named diagnostic
        // and leaves nothing behind.
        let bad = dir.join("no/such/out.json");
        let err = write_file_atomic(&bad, b"x").unwrap_err();
        assert!(err.contains("out.json"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writable_dir_creates_probes_and_rejects_files() {
        let dir = scratch("dir-ok");
        let target = dir.join("shards/deep");
        assert_eq!(ensure_writable_dir(&target), Ok(()));
        assert!(target.is_dir(), "missing directories are created");
        assert_eq!(std::fs::read_dir(&target).unwrap().count(), 0);
        let file = dir.join("plain-file");
        std::fs::write(&file, b"x").unwrap();
        let err = ensure_writable_dir(&file).unwrap_err();
        assert!(err.contains("not a directory"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
