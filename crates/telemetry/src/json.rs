//! A minimal JSON reader for the suite's own artifacts.
//!
//! The workspace's vendored `serde_json` is a compile-only stub (offline
//! container), so anything that needs to *read* JSON back — the
//! `fttt-sim explain` timeline and the `perf_snapshot --check` regression
//! gate — parses with this hand-rolled recursive-descent reader instead.
//! It accepts exactly standard JSON (RFC 8259): objects, arrays, strings
//! with escapes, numbers, booleans and null. It is not performance-tuned;
//! the inputs are kilobyte-scale artifacts this repo wrote itself.

use std::collections::BTreeMap;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also produced for NaN/∞ by this crate's writers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64` (the writers only emit f64-exact
    /// values).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object. Keys sort; duplicate keys keep the last value.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parses `text` as one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Mutable member `key` of an object, if present.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut JsonValue> {
        match self {
            JsonValue::Obj(map) => map.get_mut(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The elements, mutably, if this is an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<JsonValue>> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as an integer, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by this
                            // crate's writers; map lone surrogates to the
                            // replacement character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control character at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ascii by construction");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

/// Formats an `f64` as a JSON number literal: Rust's `Display` for finite
/// values (the shortest decimal string that parses back to the exact same
/// bits — so writer → [`JsonValue::parse`] → `f64` round-trips losslessly),
/// `null` for NaN/infinities (JSON has no spelling for them).
///
/// This is *the* float formatter for every artifact this workspace writes;
/// anything that a checksum or a replay diff will later re-read must go
/// through it rather than a truncating `format!("{:.3}")`.
pub fn format_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Escapes `s` as a JSON string literal (quotes, backslashes, and control
/// characters below U+0020).
pub fn format_str(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse(" -1.5e2 ").unwrap(),
            JsonValue::Num(-150.0)
        );
        assert_eq!(
            JsonValue::parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            JsonValue::Str("a\n\"bA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc =
            JsonValue::parse(r#"{"rows": [{"n": 10, "ok": true}, {"n": 20}], "x": null}"#).unwrap();
        let rows = doc.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("n").unwrap().as_f64(), Some(10.0));
        assert_eq!(rows[0].get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("x"), Some(&JsonValue::Null));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn round_trips_own_snapshot_export() {
        let r = crate::Registry::new();
        r.counter("fttt.match.evaluations").add(12);
        r.gauge("fttt.session.samples_k").set(7.5);
        r.histogram("fttt.match.tie_width", &[1.0, 2.0])
            .observe(1.0);
        let doc = JsonValue::parse(&r.snapshot().to_json()).unwrap();
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("fttt.match.evaluations"))
                .and_then(JsonValue::as_u64),
            Some(12)
        );
        assert_eq!(
            doc.get("gauges")
                .and_then(|g| g.get("fttt.session.samples_k"))
                .and_then(JsonValue::as_f64),
            Some(7.5)
        );
        let h = doc
            .get("histograms")
            .and_then(|h| h.get("fttt.match.tie_width"))
            .unwrap();
        assert_eq!(h.get("count").and_then(JsonValue::as_u64), Some(1));
    }

    #[test]
    fn mutation_helpers_reach_nested_numbers() {
        let mut doc = JsonValue::parse(r#"{"match_us": {"packed_exhaustive": 100.0}}"#).unwrap();
        let v = doc
            .get_mut("match_us")
            .and_then(|m| m.get_mut("packed_exhaustive"))
            .unwrap();
        *v = JsonValue::Num(1000.0);
        assert_eq!(
            doc.get("match_us")
                .and_then(|m| m.get("packed_exhaustive"))
                .and_then(JsonValue::as_f64),
            Some(1000.0)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{}{}").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn parses_jsonl_lines_independently() {
        let text = "{\"kind\":\"meta\",\"dropped\":0}\n{\"seq\":1,\"name\":\"x\"}\n";
        let lines: Vec<JsonValue> = text.lines().map(|l| JsonValue::parse(l).unwrap()).collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1].get("name").and_then(JsonValue::as_str), Some("x"));
    }
}
