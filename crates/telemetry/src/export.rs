//! Snapshot exporters: hand-formatted JSON and Prometheus text exposition.
//!
//! Both are written by hand (no serde) so the crate stays dependency-free;
//! the JSON shape is stable and embedded verbatim inside the repo's
//! `BENCH_core.json` / `BENCH_robustness.json` artifacts.

use crate::registry::Snapshot;
use std::fmt::Write as _;

/// A JSON number for `v`: Rust's `Display` for finite values (always a
/// valid JSON literal), `null` for NaN/infinities (JSON has no spelling
/// for them).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `a.b-c` → `a_b_c`: Prometheus metric names allow `[a-zA-Z0-9_:]`.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl Snapshot {
    /// The snapshot as pretty-printed JSON (two-space indent, sorted keys,
    /// no trailing newline).
    pub fn to_json(&self) -> String {
        self.to_json_indented("")
    }

    /// Like [`Snapshot::to_json`], with every line after the first prefixed
    /// by `base` — for embedding inside a larger hand-formatted JSON
    /// document at `base` indentation.
    pub fn to_json_indented(&self, base: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("{base}    {}: {v}", json_str(k)))
            .collect();
        let _ = write!(out, "{base}  \"counters\": ");
        push_block(&mut out, base, &counters);
        out.push_str(",\n");
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("{base}    {}: {}", json_str(k), json_f64(*v)))
            .collect();
        let _ = write!(out, "{base}  \"gauges\": ");
        push_block(&mut out, base, &gauges);
        out.push_str(",\n");
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let bounds: Vec<String> = h.bounds.iter().map(|b| json_f64(*b)).collect();
                let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
                format!(
                    "{base}    {}: {{ \"bounds\": [{}], \"counts\": [{}], \"count\": {}, \"sum\": {} }}",
                    json_str(k),
                    bounds.join(", "),
                    counts.join(", "),
                    h.count,
                    json_f64(h.sum),
                )
            })
            .collect();
        let _ = write!(out, "{base}  \"histograms\": ");
        push_block(&mut out, base, &histograms);
        let _ = write!(out, "\n{base}}}");
        out
    }

    /// The snapshot in the Prometheus text exposition format (version
    /// 0.0.4): `# TYPE` headers, cumulative `le` buckets, `_sum`/`_count`
    /// series. Dots and dashes in metric names become underscores.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {}", json_f64(*v));
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for (bound, count) in h.bounds.iter().zip(&h.counts) {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{n}_bucket{{le=\"{}\"}} {cumulative}",
                    json_f64(*bound)
                );
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", json_f64(h.sum));
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        out
    }
}

/// Append a `{...}` object body whose entries are pre-rendered lines.
fn push_block(out: &mut String, base: &str, entries: &[String]) {
    if entries.is_empty() {
        out.push_str("{}");
    } else {
        out.push_str("{\n");
        out.push_str(&entries.join(",\n"));
        let _ = write!(out, "\n{base}  }}");
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn json_golden_output() {
        let r = Registry::new();
        r.counter("match.evaluations").add(12);
        r.counter("build.faces").add(3);
        r.gauge("session.samples_k").set(7.0);
        r.histogram("match.tie_width", &[1.0, 2.0]).observe(1.0);
        r.histogram("match.tie_width", &[1.0, 2.0]).observe(5.0);
        let json = r.snapshot().to_json();
        let expected = "{\n\
                        \x20 \"counters\": {\n\
                        \x20   \"build.faces\": 3,\n\
                        \x20   \"match.evaluations\": 12\n\
                        \x20 },\n\
                        \x20 \"gauges\": {\n\
                        \x20   \"session.samples_k\": 7\n\
                        \x20 },\n\
                        \x20 \"histograms\": {\n\
                        \x20   \"match.tie_width\": { \"bounds\": [1, 2], \"counts\": [1, 0, 1], \"count\": 2, \"sum\": 6 }\n\
                        \x20 }\n\
                        }";
        assert_eq!(json, expected);
    }

    #[test]
    fn json_empty_sections_collapse() {
        let json = Registry::new().snapshot().to_json();
        assert_eq!(
            json,
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}"
        );
    }

    #[test]
    fn json_indented_prefixes_continuation_lines() {
        let r = Registry::new();
        r.counter("c").inc();
        let json = r.snapshot().to_json_indented("  ");
        for line in json.lines().skip(1) {
            assert!(line.starts_with("  "), "line {line:?} not indented");
        }
        assert!(json.ends_with("  }"));
    }

    #[test]
    fn prometheus_golden_output() {
        let r = Registry::new();
        r.counter("fttt.match.evaluations").add(9);
        r.gauge("fttt.session.samples_k").set(5.0);
        let h = r.histogram("fttt.match.tie_width", &[1.0, 2.0]);
        h.observe(1.0);
        h.observe(2.0);
        h.observe(99.0);
        let text = r.snapshot().to_prometheus();
        let expected = "# TYPE fttt_match_evaluations counter\n\
                        fttt_match_evaluations 9\n\
                        # TYPE fttt_session_samples_k gauge\n\
                        fttt_session_samples_k 5\n\
                        # TYPE fttt_match_tie_width histogram\n\
                        fttt_match_tie_width_bucket{le=\"1\"} 1\n\
                        fttt_match_tie_width_bucket{le=\"2\"} 2\n\
                        fttt_match_tie_width_bucket{le=\"+Inf\"} 3\n\
                        fttt_match_tie_width_sum 102\n\
                        fttt_match_tie_width_count 3\n";
        assert_eq!(text, expected);
    }
}
