//! Snapshot exporters: hand-formatted JSON and Prometheus text exposition.
//!
//! Both are written by hand (no serde) so the crate stays dependency-free;
//! the JSON shape is stable and embedded verbatim inside the repo's
//! `BENCH_core.json` / `BENCH_robustness.json` artifacts.

use crate::json::JsonValue;
use crate::registry::{HistogramSnapshot, Snapshot};
use std::fmt::Write as _;

// The canonical formatters live in `crate::json` (public — the bench
// artifacts reuse them); these aliases keep the crate-internal call sites.
pub(crate) use crate::json::{format_f64 as json_f64, format_str as json_str};

/// `a.b-c` → `a_b_c`: Prometheus metric names must match
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`. Every other character becomes `_`, a
/// leading digit gets a `_` prefix, and an empty name becomes `_`.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    match out.chars().next() {
        None => out.push('_'),
        Some(c) if c.is_ascii_digit() => out.insert(0, '_'),
        Some(_) => {}
    }
    out
}

/// Escapes a string for a `# HELP` line: backslashes and newlines only,
/// per the exposition format.
fn prom_help_text(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a string for use inside a quoted label value: backslash,
/// double quote, newline.
fn prom_label_value(text: &str) -> String {
    text.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Resolves the exposition-format family name for `name`, deduplicating
/// post-sanitization collisions (`a.b` and `a-b` both map to `a_b`):
/// the first claimant (in emission order — counters, then gauges, then
/// histograms, each sorted) keeps the clean name, later ones get a
/// deterministic `_dupN` suffix so no family is ever declared twice. A
/// histogram family also claims its implicit `_bucket`/`_sum`/`_count`
/// series names, so a counter literally named `x_count` pushes histogram
/// `x` onto a suffixed name rather than colliding.
fn claim_family(
    used: &mut std::collections::BTreeSet<String>,
    name: &str,
    histogram: bool,
) -> String {
    let base = prom_name(name);
    let mut i = 1usize;
    loop {
        let candidate = if i == 1 {
            base.clone()
        } else {
            format!("{base}_dup{i}")
        };
        let mut series = vec![candidate.clone()];
        if histogram {
            for suffix in ["_bucket", "_sum", "_count"] {
                series.push(format!("{candidate}{suffix}"));
            }
        }
        if series.iter().all(|s| !used.contains(s)) {
            used.extend(series);
            return candidate;
        }
        i += 1;
    }
}

impl Snapshot {
    /// The snapshot as pretty-printed JSON (two-space indent, sorted keys,
    /// no trailing newline).
    pub fn to_json(&self) -> String {
        self.to_json_indented("")
    }

    /// Like [`Snapshot::to_json`], with every line after the first prefixed
    /// by `base` — for embedding inside a larger hand-formatted JSON
    /// document at `base` indentation.
    pub fn to_json_indented(&self, base: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("{base}    {}: {v}", json_str(k)))
            .collect();
        let _ = write!(out, "{base}  \"counters\": ");
        push_block(&mut out, base, &counters);
        out.push_str(",\n");
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("{base}    {}: {}", json_str(k), json_f64(*v)))
            .collect();
        let _ = write!(out, "{base}  \"gauges\": ");
        push_block(&mut out, base, &gauges);
        out.push_str(",\n");
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let bounds: Vec<String> = h.bounds.iter().map(|b| json_f64(*b)).collect();
                let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
                format!(
                    "{base}    {}: {{ \"bounds\": [{}], \"counts\": [{}], \"count\": {}, \"sum\": {} }}",
                    json_str(k),
                    bounds.join(", "),
                    counts.join(", "),
                    h.count,
                    json_f64(h.sum),
                )
            })
            .collect();
        let _ = write!(out, "{base}  \"histograms\": ");
        push_block(&mut out, base, &histograms);
        let _ = write!(out, "\n{base}}}");
        out
    }

    /// The snapshot in the Prometheus text exposition format (version
    /// 0.0.4): one `# HELP`/`# TYPE` pair per family, cumulative `le`
    /// buckets, `_sum`/`_count` series. Names are sanitized to
    /// `[a-zA-Z_:][a-zA-Z0-9_:]*` (dots and dashes become underscores, a
    /// leading digit is prefixed); the `HELP` line carries the original
    /// registry name, escaped, so a scrape can be mapped back. Two
    /// registry names that sanitize to the same family are disambiguated
    /// with a deterministic `_dupN` suffix rather than declared twice.
    /// Output is guaranteed to pass [`validate_prometheus_text`].
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut used = std::collections::BTreeSet::new();
        for (name, v) in &self.counters {
            let n = claim_family(&mut used, name, false);
            let _ = writeln!(out, "# HELP {n} {}", prom_help_text(name));
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = claim_family(&mut used, name, false);
            let _ = writeln!(out, "# HELP {n} {}", prom_help_text(name));
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {}", json_f64(*v));
        }
        for (name, h) in &self.histograms {
            let n = claim_family(&mut used, name, true);
            let _ = writeln!(out, "# HELP {n} {}", prom_help_text(name));
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for (bound, count) in h.bounds.iter().zip(&h.counts) {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{n}_bucket{{le=\"{}\"}} {cumulative}",
                    prom_label_value(&json_f64(*bound))
                );
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", json_f64(h.sum));
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        out
    }
}

/// Whether `name` is a legal exposition-format metric name.
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Whether `name` is a legal label name (`[a-zA-Z_][a-zA-Z0-9_]*`).
fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// A parsed sample line: series name, labels, value.
type Sample = (String, Vec<(String, String)>, f64);

/// Splits a sample line into (series name, labels, value), validating the
/// label syntax (`{key="escaped value",...}`).
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| "unterminated label block".to_string())?;
            if close < brace {
                return Err("unterminated label block".into());
            }
            let labels = parse_labels(&line[brace + 1..close])?;
            (&line[..brace], (labels, line[close + 1..].trim_start()))
        }
        None => {
            let mut parts = line.splitn(2, [' ', '\t']);
            let name = parts.next().unwrap_or_default();
            let value = parts.next().unwrap_or_default().trim_start();
            (name, (Vec::new(), value))
        }
    };
    let (labels, value_part) = rest;
    if !valid_metric_name(name_part) {
        return Err(format!("invalid metric name {name_part:?}"));
    }
    // A trailing timestamp (integer) is legal; the value is the first token.
    let mut tokens = value_part.split_ascii_whitespace();
    let value_tok = tokens
        .next()
        .ok_or_else(|| format!("series {name_part:?} has no value"))?;
    if let Some(ts) = tokens.next() {
        if ts.parse::<i64>().is_err() {
            return Err(format!("series {name_part:?}: bad timestamp {ts:?}"));
        }
    }
    if tokens.next().is_some() {
        return Err(format!("series {name_part:?}: trailing tokens"));
    }
    let value = match value_tok {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        other => other
            .parse::<f64>()
            .map_err(|_| format!("series {name_part:?}: bad value {other:?}"))?,
    };
    Ok((name_part.to_string(), labels, value))
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let key = rest[..eq].trim();
        if !valid_label_name(key) {
            return Err(format!("invalid label name {key:?}"));
        }
        let after = rest[eq + 1..].trim_start();
        if !after.starts_with('"') {
            return Err(format!("label {key:?}: value not quoted"));
        }
        // Scan the quoted value honouring \" escapes.
        let mut escaped = false;
        let mut end = None;
        for (i, c) in after[1..].char_indices() {
            if escaped {
                if !matches!(c, '\\' | '"' | 'n') {
                    return Err(format!("label {key:?}: bad escape \\{c}"));
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let end = end.ok_or_else(|| format!("label {key:?}: unterminated value"))?;
        let raw = &after[1..1 + end];
        let value = raw
            .replace("\\n", "\n")
            .replace("\\\"", "\"")
            .replace("\\\\", "\\");
        labels.push((key.to_string(), value));
        rest = after[1 + end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("junk after label {key:?}: {rest:?}"));
        }
    }
    Ok(labels)
}

/// Validates Prometheus text-exposition output line by line — the golden
/// gate for [`Snapshot::to_prometheus`] and for live `/metrics` scrapes.
///
/// Enforced, beyond per-line syntax:
/// * `# HELP` / `# TYPE` appear at most once per family, `TYPE` before any
///   of the family's samples;
/// * every sample belongs to a family with a declared `TYPE` (histogram
///   samples may use the implicit `_bucket`/`_sum`/`_count` suffixes, and
///   `_bucket` series must carry an `le` label).
///
/// Returns the number of sample lines on success, or
/// `Err((line_number, diagnostic))` (1-based) on the first violation.
pub fn validate_prometheus_text(text: &str) -> Result<usize, (usize, String)> {
    use std::collections::BTreeMap;
    let mut types: BTreeMap<String, &str> = BTreeMap::new();
    let mut helps: std::collections::BTreeSet<String> = Default::default();
    let mut sampled: std::collections::BTreeSet<String> = Default::default();
    let mut samples = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let fail = |msg: String| Err((lineno, msg));
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("HELP ") {
                let (name, _help) = rest.split_once(' ').unwrap_or((rest, ""));
                if !valid_metric_name(name) {
                    return fail(format!("HELP for invalid metric name {name:?}"));
                }
                if !helps.insert(name.to_string()) {
                    return fail(format!("duplicate HELP for family {name:?}"));
                }
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split_ascii_whitespace();
                let name = parts.next().unwrap_or_default();
                let kind = parts.next().unwrap_or_default();
                if !valid_metric_name(name) {
                    return fail(format!("TYPE for invalid metric name {name:?}"));
                }
                let kind = match kind {
                    "counter" => "counter",
                    "gauge" => "gauge",
                    "histogram" => "histogram",
                    "summary" => "summary",
                    "untyped" => "untyped",
                    other => return fail(format!("family {name:?}: unknown type {other:?}")),
                };
                if types.insert(name.to_string(), kind).is_some() {
                    return fail(format!("duplicate TYPE for family {name:?}"));
                }
                if sampled.contains(name) {
                    return fail(format!("TYPE for family {name:?} after its samples"));
                }
            }
            // Other comments are legal free text.
            continue;
        }
        let (series, labels, _value) = match parse_sample(line) {
            Ok(parsed) => parsed,
            Err(e) => return fail(e),
        };
        samples += 1;
        // Resolve the family: exact TYPE match, else a histogram suffix.
        let family = if types.contains_key(&series) {
            series.clone()
        } else {
            let stripped = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|s| series.strip_suffix(s))
                .map(str::to_string);
            match stripped {
                Some(base) if types.get(&base).copied() == Some("histogram") => base,
                _ => return fail(format!("series {series:?} has no declared TYPE")),
            }
        };
        if types.get(&family).copied() == Some("histogram")
            && series.ends_with("_bucket")
            && !labels.iter().any(|(k, _)| k == "le")
        {
            return fail(format!("histogram bucket series {series:?} lacks le label"));
        }
        sampled.insert(family);
    }
    Ok(samples)
}

impl Snapshot {
    /// Parses a snapshot back from its [`Snapshot::to_json`] form — the
    /// inverse the multi-process campaign merge path needs: each shard
    /// exports its snapshot to disk, the coordinator re-parses and
    /// [`Snapshot::merge`]s them.
    ///
    /// Round-trip contract (covered by tests):
    /// * counters are exact for values < 2⁵³ (JSON numbers are f64; the
    ///   parser rejects non-integral counter/count values rather than
    ///   silently rounding);
    /// * gauges and histogram bounds/sums round-trip bit-exactly for
    ///   finite values because the writer emits shortest-round-trip
    ///   `Display` strings; non-finite gauges/sums are written as `null`
    ///   and re-parse as NaN (documented lossiness: the sign and payload
    ///   of the non-finite value are gone);
    /// * histogram `counts` keep the overflow bucket (`bounds.len() + 1`
    ///   entries) so merged bucket shapes stay compatible.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let doc = JsonValue::parse(text).map_err(|e| format!("snapshot JSON: {e}"))?;
        Snapshot::from_json_value(&doc)
    }

    /// Like [`Snapshot::from_json`], over an already-parsed document (for
    /// snapshots embedded inside a larger artifact).
    pub fn from_json_value(doc: &JsonValue) -> Result<Snapshot, String> {
        let mut snap = Snapshot::default();
        for (name, v) in object_of(doc, "counters")? {
            let n = v
                .as_u64()
                .ok_or_else(|| format!("counter {name:?}: not a non-negative integer"))?;
            snap.counters.insert(name.clone(), n);
        }
        for (name, v) in object_of(doc, "gauges")? {
            snap.gauges.insert(name.clone(), f64_or_nan(v, name)?);
        }
        for (name, v) in object_of(doc, "histograms")? {
            let bounds = array_of(v, name, "bounds")?
                .iter()
                .map(|b| {
                    b.as_f64()
                        .ok_or_else(|| format!("histogram {name:?}: non-numeric bound"))
                })
                .collect::<Result<Vec<f64>, String>>()?;
            let counts = array_of(v, name, "counts")?
                .iter()
                .map(|c| {
                    c.as_u64()
                        .ok_or_else(|| format!("histogram {name:?}: non-integer bucket count"))
                })
                .collect::<Result<Vec<u64>, String>>()?;
            if counts.len() != bounds.len() + 1 {
                return Err(format!(
                    "histogram {name:?}: {} counts for {} bounds (need bounds + overflow)",
                    counts.len(),
                    bounds.len()
                ));
            }
            let count = v
                .get("count")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("histogram {name:?}: missing integral \"count\""))?;
            let sum = v
                .get("sum")
                .map(|s| f64_or_nan(s, name))
                .transpose()?
                .ok_or_else(|| format!("histogram {name:?}: missing \"sum\""))?;
            snap.histograms.insert(
                name.clone(),
                HistogramSnapshot {
                    bounds,
                    counts,
                    count,
                    sum,
                },
            );
        }
        Ok(snap)
    }
}

fn object_of<'a>(
    doc: &'a JsonValue,
    key: &str,
) -> Result<&'a std::collections::BTreeMap<String, JsonValue>, String> {
    match doc.get(key) {
        Some(JsonValue::Obj(map)) => Ok(map),
        _ => Err(format!("snapshot JSON: missing {key:?} object")),
    }
}

fn array_of<'a>(v: &'a JsonValue, name: &str, key: &str) -> Result<&'a [JsonValue], String> {
    v.get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("histogram {name:?}: missing {key:?} array"))
}

/// The writer spells NaN/∞ as `null`; re-parse it as NaN so a round-trip
/// stays a gauge rather than an error.
fn f64_or_nan(v: &JsonValue, name: &str) -> Result<f64, String> {
    match v {
        JsonValue::Null => Ok(f64::NAN),
        other => other
            .as_f64()
            .ok_or_else(|| format!("{name:?}: not a number or null")),
    }
}

/// Append a `{...}` object body whose entries are pre-rendered lines.
fn push_block(out: &mut String, base: &str, entries: &[String]) {
    if entries.is_empty() {
        out.push_str("{}");
    } else {
        out.push_str("{\n");
        out.push_str(&entries.join(",\n"));
        let _ = write!(out, "\n{base}  }}");
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn json_golden_output() {
        let r = Registry::new();
        r.counter("match.evaluations").add(12);
        r.counter("build.faces").add(3);
        r.gauge("session.samples_k").set(7.0);
        r.histogram("match.tie_width", &[1.0, 2.0]).observe(1.0);
        r.histogram("match.tie_width", &[1.0, 2.0]).observe(5.0);
        let json = r.snapshot().to_json();
        let expected = "{\n\
                        \x20 \"counters\": {\n\
                        \x20   \"build.faces\": 3,\n\
                        \x20   \"match.evaluations\": 12\n\
                        \x20 },\n\
                        \x20 \"gauges\": {\n\
                        \x20   \"session.samples_k\": 7\n\
                        \x20 },\n\
                        \x20 \"histograms\": {\n\
                        \x20   \"match.tie_width\": { \"bounds\": [1, 2], \"counts\": [1, 0, 1], \"count\": 2, \"sum\": 6 }\n\
                        \x20 }\n\
                        }";
        assert_eq!(json, expected);
    }

    #[test]
    fn json_empty_sections_collapse() {
        let json = Registry::new().snapshot().to_json();
        assert_eq!(
            json,
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}"
        );
    }

    #[test]
    fn json_indented_prefixes_continuation_lines() {
        let r = Registry::new();
        r.counter("c").inc();
        let json = r.snapshot().to_json_indented("  ");
        for line in json.lines().skip(1) {
            assert!(line.starts_with("  "), "line {line:?} not indented");
        }
        assert!(json.ends_with("  }"));
    }

    #[test]
    fn prometheus_golden_output() {
        let r = Registry::new();
        r.counter("fttt.match.evaluations").add(9);
        r.gauge("fttt.session.samples_k").set(5.0);
        let h = r.histogram("fttt.match.tie_width", &[1.0, 2.0]);
        h.observe(1.0);
        h.observe(2.0);
        h.observe(99.0);
        let text = r.snapshot().to_prometheus();
        let expected = "# HELP fttt_match_evaluations fttt.match.evaluations\n\
                        # TYPE fttt_match_evaluations counter\n\
                        fttt_match_evaluations 9\n\
                        # HELP fttt_session_samples_k fttt.session.samples_k\n\
                        # TYPE fttt_session_samples_k gauge\n\
                        fttt_session_samples_k 5\n\
                        # HELP fttt_match_tie_width fttt.match.tie_width\n\
                        # TYPE fttt_match_tie_width histogram\n\
                        fttt_match_tie_width_bucket{le=\"1\"} 1\n\
                        fttt_match_tie_width_bucket{le=\"2\"} 2\n\
                        fttt_match_tie_width_bucket{le=\"+Inf\"} 3\n\
                        fttt_match_tie_width_sum 102\n\
                        fttt_match_tie_width_count 3\n";
        assert_eq!(text, expected);
        assert_eq!(crate::validate_prometheus_text(&text), Ok(7));
    }

    #[test]
    fn prometheus_sanitizes_hostile_names() {
        let r = Registry::new();
        r.counter("7seg-rate").inc(); // leading digit + dash
        r.counter("").inc(); // empty name
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE _7seg_rate counter\n"), "{text}");
        assert!(text.contains("\n_7seg_rate 1\n"), "{text}");
        assert!(text.contains("# TYPE _ counter\n"), "{text}");
        crate::validate_prometheus_text(&text).unwrap();
    }

    #[test]
    fn prometheus_collisions_get_deterministic_suffixes_not_double_decls() {
        let r = Registry::new();
        // All three sanitize to `a_b`.
        r.counter("a.b").add(1);
        r.counter("a-b").add(2);
        r.gauge("a b").set(3.0);
        // A counter that squats on histogram `h`'s implicit series name.
        r.counter("h_count").add(4);
        r.histogram("h", &[1.0]).observe(0.5);
        let text = r.snapshot().to_prometheus();
        // `a-b` sorts before `a.b` in the counter section.
        assert!(text.contains("# TYPE a_b counter\n"), "{text}");
        assert!(text.contains("# HELP a_b a-b\n"), "{text}");
        assert!(text.contains("# TYPE a_b_dup2 counter\n"), "{text}");
        assert!(text.contains("# TYPE a_b_dup3 gauge\n"), "{text}");
        // Histogram `h` is displaced off the clean name by `h_count`.
        assert!(text.contains("# TYPE h_dup2 histogram\n"), "{text}");
        assert!(text.contains("h_dup2_count 1\n"), "{text}");
        crate::validate_prometheus_text(&text).unwrap();
    }

    #[test]
    fn prometheus_help_escapes_backslash_and_newline() {
        let r = Registry::new();
        r.counter("weird\\name\nwith.newline").inc();
        let text = r.snapshot().to_prometheus();
        assert!(
            text.contains("# HELP weird_name_with_newline weird\\\\name\\nwith.newline\n"),
            "{text}"
        );
        crate::validate_prometheus_text(&text).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_exposition() {
        for (text, needle) in [
            ("no_type_decl 1\n", "no declared TYPE"),
            (
                "# TYPE x counter\n# TYPE x counter\nx 1\n",
                "duplicate TYPE",
            ),
            ("x 1\n# TYPE x counter\n", "no declared TYPE"),
            ("# TYPE x counter\nx one\n", "bad value"),
            ("# TYPE x counter\nx{bad-label=\"v\"} 1\n", "invalid label"),
            ("# TYPE x counter\nx{l=\"v} 1\n", "unterminated"),
            (
                "# TYPE x histogram\nx_bucket{foo=\"1\"} 1\n",
                "lacks le label",
            ),
            ("# TYPE x widget\n", "unknown type"),
            ("# HELP x a\n# HELP x b\n", "duplicate HELP"),
            ("# TYPE x counter\n9bad 1\n", "invalid metric name"),
        ] {
            let (line, err) = crate::validate_prometheus_text(text).unwrap_err();
            assert!(err.contains(needle), "{text:?}: {err:?} lacks {needle:?}");
            assert!(line >= 1);
        }
    }

    #[test]
    fn validator_accepts_labels_timestamps_and_blank_lines() {
        let text = "# scraped from somewhere\n\
                    # TYPE x counter\n\
                    x{shard=\"3\",host=\"a\\\"b\"} 12 1700000000\n\
                    \n\
                    # TYPE lat histogram\n\
                    lat_bucket{le=\"0.5\"} 1\n\
                    lat_bucket{le=\"+Inf\"} 2\n\
                    lat_sum 3.5\n\
                    lat_count 2\n";
        assert_eq!(crate::validate_prometheus_text(text), Ok(5));
    }
}

#[cfg(test)]
mod roundtrip_tests {
    use crate::registry::{HistogramSnapshot, Snapshot};

    fn sample() -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.insert("a.events".into(), 12);
        s.counters.insert("b.big".into(), (1u64 << 53) - 1);
        s.gauges.insert("g.tenth".into(), 0.1);
        s.gauges.insert("g.tiny".into(), 1e-308);
        s.gauges.insert("g.negzero".into(), -0.0);
        s.gauges.insert("g.pi".into(), std::f64::consts::PI);
        s.histograms.insert(
            "h.lat".into(),
            HistogramSnapshot {
                bounds: vec![0.1, 1.0, 10.0],
                counts: vec![1, 2, 0, 3],
                count: 6,
                sum: 123.456789,
            },
        );
        s
    }

    #[test]
    fn export_reparse_is_lossless_for_finite_values() {
        let snap = sample();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges.len(), snap.gauges.len());
        for (k, v) in &snap.gauges {
            let r = back.gauges[k];
            assert_eq!(r.to_bits(), v.to_bits(), "gauge {k} mangled: {v} -> {r}");
        }
        assert_eq!(back.histograms, snap.histograms);
    }

    #[test]
    fn embedded_and_indented_forms_reparse_too() {
        let snap = sample();
        let embedded = format!("{{\n  \"metrics\": {}\n}}", snap.to_json_indented("  "));
        let doc = crate::json::JsonValue::parse(&embedded).unwrap();
        let back = Snapshot::from_json_value(doc.get("metrics").unwrap()).unwrap();
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.histograms, snap.histograms);
    }

    #[test]
    fn non_finite_gauges_round_trip_to_nan_by_contract() {
        let mut s = Snapshot::default();
        s.gauges.insert("g.inf".into(), f64::INFINITY);
        let back = Snapshot::from_json(&s.to_json()).unwrap();
        assert!(back.gauges["g.inf"].is_nan());
    }

    /// The shard-merge path end to end: export → reparse → merge must
    /// behave exactly like merging the in-memory snapshots — counters
    /// add, gauges last-write-wins, equal-bounds histograms add, and
    /// mismatched-bounds histograms refuse with the same named error.
    #[test]
    fn reparsed_merge_matches_in_memory_merge() {
        let a = sample();
        let mut b = sample();
        b.counters.insert("a.events".into(), 30);
        b.gauges.insert("g.pi".into(), 2.5);

        let mut in_memory = a.clone();
        in_memory.try_merge(&b).unwrap();

        let mut reparsed = Snapshot::from_json(&a.to_json()).unwrap();
        reparsed
            .try_merge(&Snapshot::from_json(&b.to_json()).unwrap())
            .unwrap();

        assert_eq!(reparsed.counters, in_memory.counters);
        assert_eq!(reparsed.histograms, in_memory.histograms);
        assert_eq!(
            reparsed.counters["a.events"], 42,
            "counters add across shards"
        );
        assert_eq!(reparsed.gauges["g.pi"], 2.5, "gauges last-write-wins");
        assert_eq!(reparsed.histograms["h.lat"].count, 12, "histograms add");

        // A shard exported by a different telemetry version (other bucket
        // ladder) must fail the reparsed merge with the same named error
        // as the in-memory path — not silently fold garbage.
        let mut c = sample();
        c.histograms.insert(
            "h.lat".into(),
            HistogramSnapshot {
                bounds: vec![0.5, 5.0], // mismatched bounds vs `a`
                counts: vec![4, 0, 1],
                count: 5,
                sum: 9.25,
            },
        );
        let in_memory_err = a.clone().try_merge(&c).unwrap_err();
        let reparsed_err = Snapshot::from_json(&a.to_json())
            .unwrap()
            .try_merge(&Snapshot::from_json(&c.to_json()).unwrap())
            .unwrap_err();
        assert_eq!(in_memory_err, reparsed_err);
    }

    #[test]
    fn malformed_documents_are_rejected_with_named_cause() {
        for (text, needle) in [
            ("{}", "missing \"counters\""),
            (
                r#"{"counters": {"c": 1.5}, "gauges": {}, "histograms": {}}"#,
                "non-negative integer",
            ),
            (
                r#"{"counters": {}, "gauges": {}, "histograms":
                    {"h": {"bounds": [1], "counts": [1], "count": 1, "sum": 1}}}"#,
                "need bounds + overflow",
            ),
        ] {
            let err = Snapshot::from_json(text).unwrap_err();
            assert!(err.contains(needle), "{err:?} lacks {needle:?}");
        }
    }
}
