//! Snapshot exporters: hand-formatted JSON and Prometheus text exposition.
//!
//! Both are written by hand (no serde) so the crate stays dependency-free;
//! the JSON shape is stable and embedded verbatim inside the repo's
//! `BENCH_core.json` / `BENCH_robustness.json` artifacts.

use crate::json::JsonValue;
use crate::registry::{HistogramSnapshot, Snapshot};
use std::fmt::Write as _;

// The canonical formatters live in `crate::json` (public — the bench
// artifacts reuse them); these aliases keep the crate-internal call sites.
pub(crate) use crate::json::{format_f64 as json_f64, format_str as json_str};

/// `a.b-c` → `a_b_c`: Prometheus metric names allow `[a-zA-Z0-9_:]`.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl Snapshot {
    /// The snapshot as pretty-printed JSON (two-space indent, sorted keys,
    /// no trailing newline).
    pub fn to_json(&self) -> String {
        self.to_json_indented("")
    }

    /// Like [`Snapshot::to_json`], with every line after the first prefixed
    /// by `base` — for embedding inside a larger hand-formatted JSON
    /// document at `base` indentation.
    pub fn to_json_indented(&self, base: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("{base}    {}: {v}", json_str(k)))
            .collect();
        let _ = write!(out, "{base}  \"counters\": ");
        push_block(&mut out, base, &counters);
        out.push_str(",\n");
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("{base}    {}: {}", json_str(k), json_f64(*v)))
            .collect();
        let _ = write!(out, "{base}  \"gauges\": ");
        push_block(&mut out, base, &gauges);
        out.push_str(",\n");
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let bounds: Vec<String> = h.bounds.iter().map(|b| json_f64(*b)).collect();
                let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
                format!(
                    "{base}    {}: {{ \"bounds\": [{}], \"counts\": [{}], \"count\": {}, \"sum\": {} }}",
                    json_str(k),
                    bounds.join(", "),
                    counts.join(", "),
                    h.count,
                    json_f64(h.sum),
                )
            })
            .collect();
        let _ = write!(out, "{base}  \"histograms\": ");
        push_block(&mut out, base, &histograms);
        let _ = write!(out, "\n{base}}}");
        out
    }

    /// The snapshot in the Prometheus text exposition format (version
    /// 0.0.4): `# TYPE` headers, cumulative `le` buckets, `_sum`/`_count`
    /// series. Dots and dashes in metric names become underscores.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {}", json_f64(*v));
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for (bound, count) in h.bounds.iter().zip(&h.counts) {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{n}_bucket{{le=\"{}\"}} {cumulative}",
                    json_f64(*bound)
                );
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", json_f64(h.sum));
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        out
    }
}

impl Snapshot {
    /// Parses a snapshot back from its [`Snapshot::to_json`] form — the
    /// inverse the multi-process campaign merge path needs: each shard
    /// exports its snapshot to disk, the coordinator re-parses and
    /// [`Snapshot::merge`]s them.
    ///
    /// Round-trip contract (covered by tests):
    /// * counters are exact for values < 2⁵³ (JSON numbers are f64; the
    ///   parser rejects non-integral counter/count values rather than
    ///   silently rounding);
    /// * gauges and histogram bounds/sums round-trip bit-exactly for
    ///   finite values because the writer emits shortest-round-trip
    ///   `Display` strings; non-finite gauges/sums are written as `null`
    ///   and re-parse as NaN (documented lossiness: the sign and payload
    ///   of the non-finite value are gone);
    /// * histogram `counts` keep the overflow bucket (`bounds.len() + 1`
    ///   entries) so merged bucket shapes stay compatible.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let doc = JsonValue::parse(text).map_err(|e| format!("snapshot JSON: {e}"))?;
        Snapshot::from_json_value(&doc)
    }

    /// Like [`Snapshot::from_json`], over an already-parsed document (for
    /// snapshots embedded inside a larger artifact).
    pub fn from_json_value(doc: &JsonValue) -> Result<Snapshot, String> {
        let mut snap = Snapshot::default();
        for (name, v) in object_of(doc, "counters")? {
            let n = v
                .as_u64()
                .ok_or_else(|| format!("counter {name:?}: not a non-negative integer"))?;
            snap.counters.insert(name.clone(), n);
        }
        for (name, v) in object_of(doc, "gauges")? {
            snap.gauges.insert(name.clone(), f64_or_nan(v, name)?);
        }
        for (name, v) in object_of(doc, "histograms")? {
            let bounds = array_of(v, name, "bounds")?
                .iter()
                .map(|b| {
                    b.as_f64()
                        .ok_or_else(|| format!("histogram {name:?}: non-numeric bound"))
                })
                .collect::<Result<Vec<f64>, String>>()?;
            let counts = array_of(v, name, "counts")?
                .iter()
                .map(|c| {
                    c.as_u64()
                        .ok_or_else(|| format!("histogram {name:?}: non-integer bucket count"))
                })
                .collect::<Result<Vec<u64>, String>>()?;
            if counts.len() != bounds.len() + 1 {
                return Err(format!(
                    "histogram {name:?}: {} counts for {} bounds (need bounds + overflow)",
                    counts.len(),
                    bounds.len()
                ));
            }
            let count = v
                .get("count")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("histogram {name:?}: missing integral \"count\""))?;
            let sum = v
                .get("sum")
                .map(|s| f64_or_nan(s, name))
                .transpose()?
                .ok_or_else(|| format!("histogram {name:?}: missing \"sum\""))?;
            snap.histograms.insert(
                name.clone(),
                HistogramSnapshot {
                    bounds,
                    counts,
                    count,
                    sum,
                },
            );
        }
        Ok(snap)
    }
}

fn object_of<'a>(
    doc: &'a JsonValue,
    key: &str,
) -> Result<&'a std::collections::BTreeMap<String, JsonValue>, String> {
    match doc.get(key) {
        Some(JsonValue::Obj(map)) => Ok(map),
        _ => Err(format!("snapshot JSON: missing {key:?} object")),
    }
}

fn array_of<'a>(v: &'a JsonValue, name: &str, key: &str) -> Result<&'a [JsonValue], String> {
    v.get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("histogram {name:?}: missing {key:?} array"))
}

/// The writer spells NaN/∞ as `null`; re-parse it as NaN so a round-trip
/// stays a gauge rather than an error.
fn f64_or_nan(v: &JsonValue, name: &str) -> Result<f64, String> {
    match v {
        JsonValue::Null => Ok(f64::NAN),
        other => other
            .as_f64()
            .ok_or_else(|| format!("{name:?}: not a number or null")),
    }
}

/// Append a `{...}` object body whose entries are pre-rendered lines.
fn push_block(out: &mut String, base: &str, entries: &[String]) {
    if entries.is_empty() {
        out.push_str("{}");
    } else {
        out.push_str("{\n");
        out.push_str(&entries.join(",\n"));
        let _ = write!(out, "\n{base}  }}");
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn json_golden_output() {
        let r = Registry::new();
        r.counter("match.evaluations").add(12);
        r.counter("build.faces").add(3);
        r.gauge("session.samples_k").set(7.0);
        r.histogram("match.tie_width", &[1.0, 2.0]).observe(1.0);
        r.histogram("match.tie_width", &[1.0, 2.0]).observe(5.0);
        let json = r.snapshot().to_json();
        let expected = "{\n\
                        \x20 \"counters\": {\n\
                        \x20   \"build.faces\": 3,\n\
                        \x20   \"match.evaluations\": 12\n\
                        \x20 },\n\
                        \x20 \"gauges\": {\n\
                        \x20   \"session.samples_k\": 7\n\
                        \x20 },\n\
                        \x20 \"histograms\": {\n\
                        \x20   \"match.tie_width\": { \"bounds\": [1, 2], \"counts\": [1, 0, 1], \"count\": 2, \"sum\": 6 }\n\
                        \x20 }\n\
                        }";
        assert_eq!(json, expected);
    }

    #[test]
    fn json_empty_sections_collapse() {
        let json = Registry::new().snapshot().to_json();
        assert_eq!(
            json,
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}"
        );
    }

    #[test]
    fn json_indented_prefixes_continuation_lines() {
        let r = Registry::new();
        r.counter("c").inc();
        let json = r.snapshot().to_json_indented("  ");
        for line in json.lines().skip(1) {
            assert!(line.starts_with("  "), "line {line:?} not indented");
        }
        assert!(json.ends_with("  }"));
    }

    #[test]
    fn prometheus_golden_output() {
        let r = Registry::new();
        r.counter("fttt.match.evaluations").add(9);
        r.gauge("fttt.session.samples_k").set(5.0);
        let h = r.histogram("fttt.match.tie_width", &[1.0, 2.0]);
        h.observe(1.0);
        h.observe(2.0);
        h.observe(99.0);
        let text = r.snapshot().to_prometheus();
        let expected = "# TYPE fttt_match_evaluations counter\n\
                        fttt_match_evaluations 9\n\
                        # TYPE fttt_session_samples_k gauge\n\
                        fttt_session_samples_k 5\n\
                        # TYPE fttt_match_tie_width histogram\n\
                        fttt_match_tie_width_bucket{le=\"1\"} 1\n\
                        fttt_match_tie_width_bucket{le=\"2\"} 2\n\
                        fttt_match_tie_width_bucket{le=\"+Inf\"} 3\n\
                        fttt_match_tie_width_sum 102\n\
                        fttt_match_tie_width_count 3\n";
        assert_eq!(text, expected);
    }
}

#[cfg(test)]
mod roundtrip_tests {
    use crate::registry::{HistogramSnapshot, Snapshot};

    fn sample() -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.insert("a.events".into(), 12);
        s.counters.insert("b.big".into(), (1u64 << 53) - 1);
        s.gauges.insert("g.tenth".into(), 0.1);
        s.gauges.insert("g.tiny".into(), 1e-308);
        s.gauges.insert("g.negzero".into(), -0.0);
        s.gauges.insert("g.pi".into(), std::f64::consts::PI);
        s.histograms.insert(
            "h.lat".into(),
            HistogramSnapshot {
                bounds: vec![0.1, 1.0, 10.0],
                counts: vec![1, 2, 0, 3],
                count: 6,
                sum: 123.456789,
            },
        );
        s
    }

    #[test]
    fn export_reparse_is_lossless_for_finite_values() {
        let snap = sample();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges.len(), snap.gauges.len());
        for (k, v) in &snap.gauges {
            let r = back.gauges[k];
            assert_eq!(r.to_bits(), v.to_bits(), "gauge {k} mangled: {v} -> {r}");
        }
        assert_eq!(back.histograms, snap.histograms);
    }

    #[test]
    fn embedded_and_indented_forms_reparse_too() {
        let snap = sample();
        let embedded = format!("{{\n  \"metrics\": {}\n}}", snap.to_json_indented("  "));
        let doc = crate::json::JsonValue::parse(&embedded).unwrap();
        let back = Snapshot::from_json_value(doc.get("metrics").unwrap()).unwrap();
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.histograms, snap.histograms);
    }

    #[test]
    fn non_finite_gauges_round_trip_to_nan_by_contract() {
        let mut s = Snapshot::default();
        s.gauges.insert("g.inf".into(), f64::INFINITY);
        let back = Snapshot::from_json(&s.to_json()).unwrap();
        assert!(back.gauges["g.inf"].is_nan());
    }

    /// The shard-merge path end to end: export → reparse → merge must
    /// behave exactly like merging the in-memory snapshots — counters
    /// add, gauges last-write-wins, equal-bounds histograms add, and
    /// mismatched-bounds histograms are replaced wholesale.
    #[test]
    fn reparsed_merge_matches_in_memory_merge() {
        let a = sample();
        let mut b = sample();
        b.counters.insert("a.events".into(), 30);
        b.gauges.insert("g.pi".into(), 2.5);
        b.histograms.insert(
            "h.lat".into(),
            HistogramSnapshot {
                bounds: vec![0.5, 5.0], // mismatched bounds vs `a`
                counts: vec![4, 0, 1],
                count: 5,
                sum: 9.25,
            },
        );

        let mut in_memory = a.clone();
        in_memory.merge(&b);

        let mut reparsed = Snapshot::from_json(&a.to_json()).unwrap();
        reparsed.merge(&Snapshot::from_json(&b.to_json()).unwrap());

        assert_eq!(reparsed.counters, in_memory.counters);
        assert_eq!(reparsed.histograms, in_memory.histograms);
        assert_eq!(
            reparsed.counters["a.events"], 42,
            "counters add across shards"
        );
        assert_eq!(reparsed.gauges["g.pi"], 2.5, "gauges last-write-wins");
        assert_eq!(
            reparsed.histograms["h.lat"].bounds,
            vec![0.5, 5.0],
            "mismatched bounds replace wholesale"
        );
    }

    #[test]
    fn malformed_documents_are_rejected_with_named_cause() {
        for (text, needle) in [
            ("{}", "missing \"counters\""),
            (
                r#"{"counters": {"c": 1.5}, "gauges": {}, "histograms": {}}"#,
                "non-negative integer",
            ),
            (
                r#"{"counters": {}, "gauges": {}, "histograms":
                    {"h": {"bounds": [1], "counts": [1], "count": 1, "sum": 1}}}"#,
                "need bounds + overflow",
            ),
        ] {
            let err = Snapshot::from_json(text).unwrap_err();
            assert!(err.contains(needle), "{err:?} lacks {needle:?}");
        }
    }
}
