//! The three metric primitives: counters, gauges, histograms.
//!
//! All three are lock-free over `std` atomics so hot paths can update them
//! from `wsn-parallel` worker threads without coordination. Floating-point
//! state (gauge values, histogram sums) is stored as `f64` bit patterns in
//! `AtomicU64` cells; the histogram sum is accumulated with a CAS loop.

use std::sync::atomic::{AtomicU64, Ordering};

/// Default buckets for span durations, in microseconds: 1 µs … 1 s in a
/// 1/2.5/5 decade ladder, plus the implicit `+Inf` overflow bucket.
pub const DURATION_US_BUCKETS: &[f64] = &[
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5,
    2.5e5, 5e5, 1e6,
];

/// Default buckets for small cardinalities (tie widths, rounds, expansion
/// counts): powers of two up to 1024, plus the implicit `+Inf` bucket.
pub const COUNT_BUCKETS: &[f64] = &[
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
];

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to the count.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one to the count.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins level, stored as `f64` bits in an atomic cell.
///
/// # Concurrency contract
///
/// [`Gauge::set`] is a single relaxed atomic store of the value's bit
/// pattern. Two consequences, both by design:
///
/// * **Last write wins.** Concurrent setters race; whichever store lands
///   last in the cell's modification order is the value readers see, and
///   there is no ordering guarantee *between* threads about which that is.
///   A gauge models "the current level" (e.g. `fttt.session.samples_k`);
///   racing writers are both claiming the level, and either claim is a
///   valid answer. Use a [`Counter`] when contributions must all survive.
/// * **Never torn.** The full 8-byte bit pattern is stored atomically, so
///   a reader gets some value that was actually written — never a mix of
///   two writes' bytes. `metrics::tests::gauge_concurrent_sets_never_tear`
///   pins both properties.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at `0.0`.
    pub fn new() -> Self {
        Self(AtomicU64::new(0.0_f64.to_bits()))
    }

    /// Overwrite the level.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// A fixed-bucket histogram with Prometheus semantics: a value `v` lands in
/// the first bucket whose upper bound satisfies `v <= bound` (`le`), and
/// values above the last bound land in an implicit `+Inf` overflow bucket.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One cell per bound plus the trailing `+Inf` bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum of observed values, as `f64` bits (CAS-accumulated).
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A histogram over the given strictly ascending, finite upper bounds.
    ///
    /// # Panics
    ///
    /// If `bounds` is empty, contains a non-finite value, or is not strictly
    /// ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly ascending: {bounds:?}"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0_f64.to_bits()),
        }
    }

    /// The configured upper bounds (excluding the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, value: f64) {
        // First bucket whose bound is >= value; bounds.len() == +Inf bucket.
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Per-bucket counts (non-cumulative), last entry being the `+Inf`
    /// overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_increments() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(7.5);
        g.set(-3.25);
        assert_eq!(g.get(), -3.25);
    }

    #[test]
    fn histogram_buckets_use_le_semantics() {
        let h = Histogram::new(&[1.0, 5.0, 10.0]);
        // Exactly on a bound counts into that bound's bucket (v <= bound).
        for v in [0.5, 1.0, 1.0000001, 5.0, 9.9, 10.0, 10.1, 1e9] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), vec![2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
        let expected_sum = 0.5 + 1.0 + 1.0000001 + 5.0 + 9.9 + 10.0 + 10.1 + 1e9;
        assert!((h.sum() - expected_sum).abs() < 1e-6 * expected_sum);
    }

    #[test]
    fn default_bucket_ladders_are_valid() {
        // Histogram::new re-validates: finite, strictly ascending.
        let _ = Histogram::new(DURATION_US_BUCKETS);
        let _ = Histogram::new(COUNT_BUCKETS);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_are_rejected() {
        let _ = Histogram::new(&[1.0, 1.0]);
    }

    /// Golden pin of the bucket boundary semantics over the real ladders:
    /// a value exactly equal to a bound lands in that bound's `le` bucket
    /// (Prometheus-style `v <= bound`), and the next representable value
    /// above it lands in the following bucket.
    #[test]
    fn boundary_values_land_in_their_le_bucket_golden() {
        for ladder in [DURATION_US_BUCKETS, COUNT_BUCKETS] {
            for (i, &bound) in ladder.iter().enumerate() {
                let h = Histogram::new(ladder);
                h.observe(bound);
                let mut expected = vec![0u64; ladder.len() + 1];
                expected[i] = 1;
                assert_eq!(
                    h.bucket_counts(),
                    expected,
                    "value {bound} must land in its own le bucket {i}"
                );
                // Epsilon above the bound spills into the next bucket
                // (the +Inf overflow bucket after the last bound).
                h.observe(f64::next_up(bound));
                expected[i + 1] += 1;
                assert_eq!(
                    h.bucket_counts(),
                    expected,
                    "next_up({bound}) must land in bucket {}",
                    i + 1
                );
            }
        }
        // Below the first bound, including zero and negatives: bucket 0.
        let h = Histogram::new(COUNT_BUCKETS);
        h.observe(0.0);
        h.observe(-3.0);
        h.observe(f64::next_down(1.0));
        assert_eq!(h.bucket_counts()[0], 3);
    }

    /// The Gauge concurrency contract (see the type docs): racing `set`
    /// calls are never torn — every read returns a bit pattern some
    /// thread actually stored — and the settled value is one writer's
    /// last write.
    #[test]
    fn gauge_concurrent_sets_never_tear() {
        use std::sync::Arc;

        let gauge = Arc::new(Gauge::new());
        // Each thread writes a distinctive pattern whose halves would be
        // recognizably mixed if a store could tear.
        let written: Vec<f64> = (0..4)
            .map(|i| f64::from_bits(0x0101_0101_0101_0101 * (i + 1)))
            .collect();
        let writers: Vec<_> = written
            .iter()
            .map(|&v| {
                let g = Arc::clone(&gauge);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        g.set(v);
                    }
                })
            })
            .collect();
        let valid = {
            let mut v: Vec<u64> = written.iter().map(|w| w.to_bits()).collect();
            v.push(0.0_f64.to_bits());
            v
        };
        for _ in 0..10_000 {
            let seen = gauge.get().to_bits();
            assert!(valid.contains(&seen), "torn gauge read: {seen:#018x}");
        }
        for w in writers {
            w.join().unwrap();
        }
        // After all writers finish, the level is some writer's value:
        // last write wins, and which writer won is unspecified.
        assert!(valid[..valid.len() - 1].contains(&gauge.get().to_bits()));
    }
}
