//! The trace journal: a lock-light, fixed-capacity ring buffer of typed
//! events with Chrome-trace and JSONL exporters.
//!
//! Metrics (the other half of this crate) answer "how much / how often";
//! the journal answers *what happened on round 317*. Instrumented code
//! emits [`TraceEvent`]s — span begin/end pairs with parent ids, instants,
//! and round markers — into a process-wide [`Journal`] installed via
//! [`crate::install_journal`]. Design constraints, in order:
//!
//! * **Never block the hot path.** Each event claims a monotonic sequence
//!   number with one `fetch_add` and writes into slot `seq % capacity`
//!   under a `try_lock`; a contended slot (two writers `capacity` events
//!   apart racing the same cell) *drops the event and counts it* instead
//!   of waiting. Overwritten events (ring overflow) are counted the same
//!   way, so `retained + dropped == emitted` always holds exactly.
//! * **No tearing.** A slot is only ever read or written under its own
//!   (practically uncontended) mutex, so a drained event is always one
//!   that some thread wrote in full.
//! * **Plain-data export.** [`Journal::snapshot`] returns a [`TraceLog`]
//!   sorted by sequence number, which renders as Chrome trace-event JSON
//!   ([`TraceLog::to_chrome_json`], loadable in Perfetto / `chrome://tracing`)
//!   or as line-delimited JSON ([`TraceLog::to_jsonl`]).

use crate::export::{json_f64, json_str};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default journal capacity used by the CLI surfaces: large enough for a
/// full fault-campaign run's round events, small enough to stay a few MB.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1 << 16;

/// A typed argument value attached to a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (counts, ids, round numbers).
    U64(u64),
    /// Floating-point value (times, fractions, similarities).
    F64(f64),
    /// Boolean flag (health-check verdicts).
    Bool(bool),
    /// Free-form text (cause labels, hop paths).
    Str(String),
}

impl ArgValue {
    fn render_json(&self) -> String {
        match self {
            ArgValue::U64(v) => v.to_string(),
            ArgValue::F64(v) => json_f64(*v),
            ArgValue::Bool(v) => v.to_string(),
            ArgValue::Str(s) => json_str(s),
        }
    }
}

/// What kind of event a [`TraceEvent`] is.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// A span opened; `id` is unique per journal, `parent` is the id of
    /// the span enclosing it on the same thread (if any).
    SpanBegin {
        /// Journal-unique span id.
        id: u64,
        /// Enclosing span on the emitting thread, if any.
        parent: Option<u64>,
    },
    /// The span `id` closed.
    SpanEnd {
        /// Id of the span being closed.
        id: u64,
    },
    /// A point-in-time marker.
    Instant,
    /// A tracking-round marker (one per [`fttt` session] round).
    Round {
        /// Session round index.
        round: u64,
    },
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotonic sequence number (journal-wide claim order).
    pub seq: u64,
    /// Microseconds since the journal's creation.
    pub t_us: f64,
    /// Small per-process thread ordinal (not the OS thread id).
    pub thread: u64,
    /// Event name, dot-separated like metric names.
    pub name: &'static str,
    /// Event kind.
    pub kind: TraceKind,
    /// Typed key/value payload.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Monotonic per-process thread ordinals, assigned on first emission.
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ORDINAL: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    /// Stack of open span ids on this thread, for parent linking.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|t| *t)
}

/// A lock-light, fixed-capacity ring-buffer event journal.
///
/// See the module docs for the concurrency contract. The journal is
/// usually installed process-wide ([`crate::install_journal`]) and fed
/// through the free functions [`crate::trace_instant`] /
/// [`crate::trace_round`] and the journal half of [`crate::span`], but it
/// can also be used directly.
#[derive(Debug)]
pub struct Journal {
    epoch: Instant,
    slots: Vec<Mutex<Option<TraceEvent>>>,
    next_seq: AtomicU64,
    next_span: AtomicU64,
    dropped: AtomicU64,
}

impl Journal {
    /// A journal holding at most `capacity` events (older and contended
    /// events are dropped, and counted, once the ring wraps).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "journal needs at least one slot");
        Self {
            epoch: Instant::now(),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next_seq: AtomicU64::new(0),
            next_span: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// A journal with [`DEFAULT_JOURNAL_CAPACITY`] slots.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever emitted to this journal (retained or dropped).
    pub fn emitted(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Events lost so far: overwritten by ring wrap-around plus the rare
    /// try-lock collisions. `emitted() == retained + dropped()` exactly.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records one event. Never blocks: a contended slot drops the event
    /// and counts it in [`Journal::dropped`].
    pub fn record(&self, name: &'static str, kind: TraceKind, args: Vec<(&'static str, ArgValue)>) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let event = TraceEvent {
            seq,
            t_us: self.epoch.elapsed().as_secs_f64() * 1e6,
            thread: thread_ordinal(),
            name,
            kind,
            args,
        };
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        match slot.try_lock() {
            Ok(mut guard) => {
                if guard.replace(event).is_some() {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Opens a span: assigns a journal-unique id, links it to the
    /// enclosing span on this thread and records the begin event.
    /// Pair with [`Journal::end_span`] (the RAII [`crate::span`] does).
    pub fn begin_span(&self, name: &'static str) -> u64 {
        let id = self.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        self.record(name, TraceKind::SpanBegin { id, parent }, Vec::new());
        id
    }

    /// Closes the span `id` opened by [`Journal::begin_span`].
    pub fn end_span(&self, name: &'static str, id: u64) {
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last() == Some(&id) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|&v| v == id) {
                stack.remove(pos);
            }
        });
        self.record(name, TraceKind::SpanEnd { id }, Vec::new());
    }

    /// A point-in-time copy of the retained events, sorted by sequence
    /// number. The journal keeps recording; the log does not change.
    pub fn snapshot(&self) -> TraceLog {
        let mut events: Vec<TraceEvent> = self
            .slots
            .iter()
            .filter_map(|slot| {
                slot.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .as_ref()
                    .cloned()
            })
            .collect();
        events.sort_by_key(|e| e.seq);
        TraceLog {
            events,
            dropped: self.dropped(),
            capacity: self.capacity(),
        }
    }
}

impl Default for Journal {
    fn default() -> Self {
        Self::new()
    }
}

/// A plain-data copy of a journal's retained events, in sequence order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLog {
    /// Retained events, ascending by `seq`.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring wrap-around or slot contention.
    pub dropped: u64,
    /// Ring capacity of the source journal.
    pub capacity: usize,
}

impl TraceLog {
    /// Total events emitted to the source journal (retained + dropped).
    pub fn emitted(&self) -> u64 {
        self.events.len() as u64 + self.dropped
    }

    /// The log in the Chrome trace-event JSON format (object form with
    /// `traceEvents`), loadable in Perfetto and `chrome://tracing`.
    ///
    /// Span begin/end map to `ph: "B"`/`"E"`, instants and round markers
    /// to `ph: "i"`; `ts` is microseconds, `tid` the thread ordinal. The
    /// sequence number, span ids and round index travel in `args` so no
    /// information is lost relative to [`TraceLog::to_jsonl`].
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"displayTimeUnit\": \"ms\",\n");
        let _ = writeln!(
            out,
            "  \"otherData\": {{ \"capacity\": {}, \"dropped\": {}, \"emitted\": {} }},",
            self.capacity,
            self.dropped,
            self.emitted()
        );
        out.push_str("  \"traceEvents\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            let ph = match e.kind {
                TraceKind::SpanBegin { .. } => "B",
                TraceKind::SpanEnd { .. } => "E",
                TraceKind::Instant | TraceKind::Round { .. } => "i",
            };
            let mut args = format!("\"seq\": {}", e.seq);
            match &e.kind {
                TraceKind::SpanBegin { id, parent } => {
                    let _ = write!(args, ", \"span\": {id}");
                    match parent {
                        Some(p) => {
                            let _ = write!(args, ", \"parent\": {p}");
                        }
                        None => args.push_str(", \"parent\": null"),
                    }
                }
                TraceKind::SpanEnd { id } => {
                    let _ = write!(args, ", \"span\": {id}");
                }
                TraceKind::Round { round } => {
                    let _ = write!(args, ", \"round\": {round}");
                }
                TraceKind::Instant => {}
            }
            for (k, v) in &e.args {
                let _ = write!(args, ", {}: {}", json_str(k), v.render_json());
            }
            let instant_scope = if ph == "i" { ", \"s\": \"t\"" } else { "" };
            let _ = write!(
                out,
                "    {{ \"name\": {}, \"cat\": \"fttt\", \"ph\": \"{ph}\"{instant_scope}, \
                 \"ts\": {}, \"pid\": 0, \"tid\": {}, \"args\": {{ {args} }} }}",
                json_str(e.name),
                json_f64(e.t_us),
                e.thread,
            );
            out.push_str(if i + 1 == self.events.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The log as line-delimited JSON: one meta line (`kind: "meta"` with
    /// capacity/dropped/emitted) followed by one object per event.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"kind\":\"meta\",\"capacity\":{},\"dropped\":{},\"emitted\":{}}}",
            self.capacity,
            self.dropped,
            self.emitted()
        );
        for e in &self.events {
            let _ = write!(
                out,
                "{{\"seq\":{},\"ts_us\":{},\"thread\":{},\"name\":{}",
                e.seq,
                json_f64(e.t_us),
                e.thread,
                json_str(e.name)
            );
            match &e.kind {
                TraceKind::SpanBegin { id, parent } => {
                    let _ = write!(out, ",\"kind\":\"span_begin\",\"span\":{id},\"parent\":");
                    match parent {
                        Some(p) => {
                            let _ = write!(out, "{p}");
                        }
                        None => out.push_str("null"),
                    }
                }
                TraceKind::SpanEnd { id } => {
                    let _ = write!(out, ",\"kind\":\"span_end\",\"span\":{id}");
                }
                TraceKind::Instant => out.push_str(",\"kind\":\"instant\""),
                TraceKind::Round { round } => {
                    let _ = write!(out, ",\"kind\":\"round\",\"round\":{round}");
                }
            }
            out.push_str(",\"args\":{");
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_str(k), v.render_json());
            }
            out.push_str("}}\n");
        }
        out
    }

    /// The log in the *canonical* line-delimited form used by the
    /// determinism tests and the replay diff: everything that depends on
    /// scheduling rather than on simulation state is stripped — wall-clock
    /// `ts_us`, global sequence numbers, per-thread ordinals, and span ids
    /// (begin/end keep only their kind tag) — and the event lines are
    /// sorted lexicographically, so per-thread interleaving and racy
    /// sequence assignment cannot reorder the output. Time survives only
    /// where it is *virtual*: the round index on round markers and any
    /// simulation-time `t` the emitter put in `args`.
    ///
    /// Two identically-seeded runs whose emitters use stable (not
    /// process-global) session ids produce byte-identical canonical logs
    /// under any `par_map_threads` width, provided no events were dropped;
    /// the leading meta line carries the drop count so a diff surfaces a
    /// lossy capture instead of silently passing on a truncated log.
    pub fn to_canonical_jsonl(&self) -> String {
        let mut lines: Vec<String> = Vec::with_capacity(self.events.len());
        for e in &self.events {
            let mut line = format!("{{\"name\":{}", json_str(e.name));
            match &e.kind {
                TraceKind::SpanBegin { .. } => line.push_str(",\"kind\":\"span_begin\""),
                TraceKind::SpanEnd { .. } => line.push_str(",\"kind\":\"span_end\""),
                TraceKind::Instant => line.push_str(",\"kind\":\"instant\""),
                TraceKind::Round { round } => {
                    let _ = write!(line, ",\"kind\":\"round\",\"round\":{round}");
                }
            }
            line.push_str(",\"args\":{");
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                let _ = write!(line, "{}:{}", json_str(k), v.render_json());
            }
            line.push_str("}}");
            lines.push(line);
        }
        lines.sort_unstable();
        let mut out = format!(
            "{{\"kind\":\"meta\",\"events\":{},\"dropped\":{}}}\n",
            lines.len(),
            self.dropped
        );
        for line in &lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant(journal: &Journal, name: &'static str) {
        journal.record(name, TraceKind::Instant, Vec::new());
    }

    #[test]
    fn events_are_sequenced_and_timestamped() {
        let j = Journal::with_capacity(8);
        instant(&j, "a");
        instant(&j, "b");
        let log = j.snapshot();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.events[0].seq, 0);
        assert_eq!(log.events[1].seq, 1);
        assert!(log.events[0].t_us <= log.events[1].t_us);
        assert_eq!(log.dropped, 0);
        assert_eq!(log.emitted(), 2);
    }

    #[test]
    fn overflow_keeps_newest_and_counts_exactly() {
        let j = Journal::with_capacity(4);
        for _ in 0..11 {
            instant(&j, "e");
        }
        let log = j.snapshot();
        // Retained: the last `capacity` sequence numbers, oldest first.
        assert_eq!(
            log.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
        assert_eq!(log.dropped, 7, "11 emitted - 4 retained");
        assert_eq!(log.emitted(), 11);
    }

    #[test]
    fn spans_nest_with_parent_ids() {
        let j = Journal::with_capacity(16);
        let outer = j.begin_span("outer");
        let inner = j.begin_span("inner");
        j.end_span("inner", inner);
        j.end_span("outer", outer);
        let log = j.snapshot();
        assert_eq!(
            log.events[0].kind,
            TraceKind::SpanBegin {
                id: outer,
                parent: None
            }
        );
        assert_eq!(
            log.events[1].kind,
            TraceKind::SpanBegin {
                id: inner,
                parent: Some(outer)
            }
        );
        assert_eq!(log.events[2].kind, TraceKind::SpanEnd { id: inner });
        assert_eq!(log.events[3].kind, TraceKind::SpanEnd { id: outer });
    }

    #[test]
    fn out_of_order_span_end_keeps_stack_consistent() {
        let j = Journal::with_capacity(16);
        let a = j.begin_span("a");
        let b = j.begin_span("b");
        // Close the outer span first: the inner one must still link to it
        // and later close without corrupting the thread stack.
        j.end_span("a", a);
        let c = j.begin_span("c");
        j.end_span("c", c);
        j.end_span("b", b);
        let log = j.snapshot();
        assert_eq!(
            log.events[3].kind,
            TraceKind::SpanBegin {
                id: c,
                parent: Some(b)
            }
        );
        let d = j.begin_span("d");
        assert_eq!(
            j.snapshot().events.last().unwrap().kind,
            TraceKind::SpanBegin {
                id: d,
                parent: None
            }
        );
    }

    /// Golden test for the Chrome exporter: a hand-built log with fixed
    /// timestamps must render byte-for-byte (Perfetto loads this shape).
    #[test]
    fn chrome_export_golden() {
        let log = TraceLog {
            events: vec![
                TraceEvent {
                    seq: 0,
                    t_us: 1.5,
                    thread: 0,
                    name: "fttt.build.total",
                    kind: TraceKind::SpanBegin {
                        id: 0,
                        parent: None,
                    },
                    args: Vec::new(),
                },
                TraceEvent {
                    seq: 1,
                    t_us: 2.0,
                    thread: 0,
                    name: "fttt.session.round",
                    kind: TraceKind::Round { round: 3 },
                    args: vec![
                        ("cause", ArgValue::Str("starved".into())),
                        ("missing", ArgValue::F64(0.75)),
                        ("held", ArgValue::Bool(false)),
                        ("k_after", ArgValue::U64(7)),
                    ],
                },
                TraceEvent {
                    seq: 2,
                    t_us: 9.25,
                    thread: 1,
                    name: "fttt.build.total",
                    kind: TraceKind::SpanEnd { id: 0 },
                    args: Vec::new(),
                },
            ],
            dropped: 1,
            capacity: 8,
        };
        let expected = "{\n\
            \x20 \"displayTimeUnit\": \"ms\",\n\
            \x20 \"otherData\": { \"capacity\": 8, \"dropped\": 1, \"emitted\": 4 },\n\
            \x20 \"traceEvents\": [\n\
            \x20   { \"name\": \"fttt.build.total\", \"cat\": \"fttt\", \"ph\": \"B\", \"ts\": 1.5, \"pid\": 0, \"tid\": 0, \"args\": { \"seq\": 0, \"span\": 0, \"parent\": null } },\n\
            \x20   { \"name\": \"fttt.session.round\", \"cat\": \"fttt\", \"ph\": \"i\", \"s\": \"t\", \"ts\": 2, \"pid\": 0, \"tid\": 0, \"args\": { \"seq\": 1, \"round\": 3, \"cause\": \"starved\", \"missing\": 0.75, \"held\": false, \"k_after\": 7 } },\n\
            \x20   { \"name\": \"fttt.build.total\", \"cat\": \"fttt\", \"ph\": \"E\", \"ts\": 9.25, \"pid\": 0, \"tid\": 1, \"args\": { \"seq\": 2, \"span\": 0 } }\n\
            \x20 ]\n\
            }\n";
        assert_eq!(log.to_chrome_json(), expected);
    }

    #[test]
    fn jsonl_export_golden() {
        let log = TraceLog {
            events: vec![TraceEvent {
                seq: 4,
                t_us: 3.5,
                thread: 2,
                name: "wsn.regime.apply",
                kind: TraceKind::Instant,
                args: vec![("dropped", ArgValue::U64(12))],
            }],
            dropped: 0,
            capacity: 16,
        };
        let expected = "{\"kind\":\"meta\",\"capacity\":16,\"dropped\":0,\"emitted\":1}\n\
            {\"seq\":4,\"ts_us\":3.5,\"thread\":2,\"name\":\"wsn.regime.apply\",\"kind\":\"instant\",\"args\":{\"dropped\":12}}\n";
        assert_eq!(log.to_jsonl(), expected);
    }

    /// The canonical export strips every scheduling-dependent field (seq,
    /// ts, thread, span ids) and sorts lines — so two logs holding the
    /// same events in different interleavings with different sequence
    /// numbers render byte-identically.
    #[test]
    fn canonical_jsonl_is_interleaving_invariant() {
        let round = TraceEvent {
            seq: 1,
            t_us: 2.0,
            thread: 0,
            name: "fttt.session.round",
            kind: TraceKind::Round { round: 3 },
            args: vec![
                ("session", ArgValue::U64(7)),
                ("cause", ArgValue::Str("starved".into())),
            ],
        };
        let begin = TraceEvent {
            seq: 0,
            t_us: 1.5,
            thread: 0,
            name: "fttt.build.total",
            kind: TraceKind::SpanBegin {
                id: 0,
                parent: None,
            },
            args: Vec::new(),
        };
        let a = TraceLog {
            events: vec![begin.clone(), round.clone()],
            dropped: 0,
            capacity: 8,
        };
        // Same events, swapped order, different seq/thread/ts/span ids.
        let mut begin2 = begin;
        begin2.seq = 9;
        begin2.thread = 3;
        begin2.t_us = 99.0;
        begin2.kind = TraceKind::SpanBegin {
            id: 5,
            parent: Some(4),
        };
        let mut round2 = round;
        round2.seq = 2;
        round2.t_us = 41.5;
        let b = TraceLog {
            events: vec![round2, begin2],
            dropped: 0,
            capacity: 32,
        };
        let canon = a.to_canonical_jsonl();
        assert_eq!(canon, b.to_canonical_jsonl());
        let expected = "{\"kind\":\"meta\",\"events\":2,\"dropped\":0}\n\
            {\"name\":\"fttt.build.total\",\"kind\":\"span_begin\",\"args\":{}}\n\
            {\"name\":\"fttt.session.round\",\"kind\":\"round\",\"round\":3,\"args\":{\"session\":7,\"cause\":\"starved\"}}\n";
        assert_eq!(canon, expected);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        let _ = Journal::with_capacity(0);
    }
}
