//! Zero-dependency, low-overhead instrumentation for the FTTT suite.
//!
//! The suite's hot paths (face-map builds, vector matching, tracking
//! sessions, fault regimes) report what they do through this crate:
//!
//! * [`Counter`] — monotonic `u64` event counts (`fttt.match.evaluations`).
//! * [`Gauge`] — last-write-wins `f64` levels (`fttt.session.samples_k`).
//! * [`Histogram`] — fixed-bucket distributions with Prometheus `le`
//!   (value ≤ bound) semantics (`fttt.match.tie_width`, span durations).
//! * [`span`] — RAII wall-clock timers that record microseconds into a
//!   histogram when dropped.
//!
//! Metrics live in a [`Registry`]. Instrumented code talks to a **global
//! sink**: a process-wide `Option<Arc<Registry>>` behind an `AtomicBool`
//! fast flag. When no sink is installed every entry point reduces to one
//! relaxed atomic load and an untaken branch — no clock reads, no locks,
//! no allocation — so instrumentation can stay compiled into release
//! binaries (the bench suite asserts this stays within noise).
//!
//! ```
//! use std::sync::Arc;
//! use wsn_telemetry as telemetry;
//!
//! let registry = Arc::new(telemetry::Registry::new());
//! telemetry::install(registry.clone());
//! telemetry::counter_add("demo.events", 3);
//! {
//!     let _span = telemetry::span("demo.phase");
//!     // ... timed work ...
//! }
//! telemetry::uninstall();
//! let snap = registry.snapshot();
//! assert_eq!(snap.counters["demo.events"], 3);
//! println!("{}", snap.to_json());
//! ```
//!
//! Snapshots ([`Registry::snapshot`]) are plain data: they merge across
//! trials ([`Snapshot::merge`]) and export as JSON ([`Snapshot::to_json`],
//! embedded in the `BENCH_*.json` artifacts) or Prometheus text
//! ([`Snapshot::to_prometheus`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod metrics;
mod registry;

pub use metrics::{Counter, Gauge, Histogram, COUNT_BUCKETS, DURATION_US_BUCKETS};
pub use registry::{HistogramSnapshot, Registry, Snapshot};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Fast-path flag: `true` iff a sink is installed. Checked (relaxed) before
/// any other telemetry work so uninstrumented runs pay a single atomic load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-wide metrics sink. Only consulted after [`ENABLED`] reads
/// `true`, so the lock is never touched on the disabled path.
static SINK: RwLock<Option<Arc<Registry>>> = RwLock::new(None);

/// Install `registry` as the process-wide metrics sink and enable
/// instrumentation. Replaces any previously installed sink.
pub fn install(registry: Arc<Registry>) {
    *SINK.write().expect("telemetry sink lock poisoned") = Some(registry);
    ENABLED.store(true, Ordering::Release);
}

/// Disable instrumentation and return the previously installed sink, if any.
pub fn uninstall() -> Option<Arc<Registry>> {
    ENABLED.store(false, Ordering::Release);
    SINK.write().expect("telemetry sink lock poisoned").take()
}

/// Whether a metrics sink is currently installed.
///
/// This is the cheap enabled-check instrumented code guards on: a single
/// relaxed atomic load. Hot paths accumulate into locals and only touch the
/// registry when this returns `true`.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Run `f` against the installed sink, or do nothing if there is none.
pub fn with_sink<F: FnOnce(&Registry)>(f: F) {
    if !enabled() {
        return;
    }
    if let Ok(guard) = SINK.read() {
        if let Some(registry) = guard.as_ref() {
            f(registry);
        }
    }
}

/// Add `n` to the counter `name` in the installed sink (no-op when disabled).
#[inline]
pub fn counter_add(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    with_sink(|r| r.counter(name).add(n));
}

/// Set the gauge `name` to `value` in the installed sink (no-op when disabled).
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_sink(|r| r.gauge(name).set(value));
}

/// Record `value` into the histogram `name` with the given bucket `bounds`
/// (no-op when disabled). The bounds are only consulted the first time the
/// histogram is created in the sink.
#[inline]
pub fn observe(name: &str, bounds: &[f64], value: f64) {
    if !enabled() {
        return;
    }
    with_sink(|r| r.histogram(name, bounds).observe(value));
}

/// An RAII span timer: created by [`span`], records its elapsed wall-clock
/// time in microseconds into the histogram `name` (bounds
/// [`DURATION_US_BUCKETS`]) when dropped.
///
/// When telemetry is disabled at creation the span holds nothing — no
/// `Instant::now()` is taken and drop is free.
#[must_use = "a span records its duration when dropped; binding it to _ drops it immediately"]
#[derive(Debug)]
pub struct Span {
    armed: Option<(&'static str, Instant)>,
}

/// Start a span timer named `name`. The histogram count doubles as the call
/// count of the instrumented phase, so spans need no separate counter.
pub fn span(name: &'static str) -> Span {
    Span {
        armed: enabled().then(|| (name, Instant::now())),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, start)) = self.armed.take() {
            let micros = start.elapsed().as_secs_f64() * 1e6;
            observe(name, DURATION_US_BUCKETS, micros);
        }
    }
}
