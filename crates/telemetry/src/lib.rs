//! Zero-dependency, low-overhead instrumentation for the FTTT suite.
//!
//! The suite's hot paths (face-map builds, vector matching, tracking
//! sessions, fault regimes) report what they do through this crate:
//!
//! * [`Counter`] — monotonic `u64` event counts (`fttt.match.evaluations`).
//! * [`Gauge`] — last-write-wins `f64` levels (`fttt.session.samples_k`).
//! * [`Histogram`] — fixed-bucket distributions with Prometheus `le`
//!   (value ≤ bound) semantics (`fttt.match.tie_width`, span durations).
//! * [`span`] — RAII wall-clock timers that record microseconds into a
//!   histogram when dropped.
//!
//! Metrics live in a [`Registry`]. Instrumented code talks to a **global
//! sink**: a process-wide `Option<Arc<Registry>>` behind an `AtomicBool`
//! fast flag. When no sink is installed every entry point reduces to one
//! relaxed atomic load and an untaken branch — no clock reads, no locks,
//! no allocation — so instrumentation can stay compiled into release
//! binaries (the bench suite asserts this stays within noise).
//!
//! ```
//! use std::sync::Arc;
//! use wsn_telemetry as telemetry;
//!
//! let registry = Arc::new(telemetry::Registry::new());
//! telemetry::install(registry.clone());
//! telemetry::counter_add("demo.events", 3);
//! {
//!     let _span = telemetry::span("demo.phase");
//!     // ... timed work ...
//! }
//! telemetry::uninstall();
//! let snap = registry.snapshot();
//! assert_eq!(snap.counters["demo.events"], 3);
//! println!("{}", snap.to_json());
//! ```
//!
//! Snapshots ([`Registry::snapshot`]) are plain data: they merge across
//! trials ([`Snapshot::try_merge`]) and export as JSON ([`Snapshot::to_json`],
//! embedded in the `BENCH_*.json` artifacts) or Prometheus text
//! ([`Snapshot::to_prometheus`]).
//!
//! Alongside the metrics sink lives a second, independent global: the
//! **trace journal** ([`trace`] module) — a fixed-capacity ring buffer of
//! typed events (span begin/end with parent ids, instants, round markers)
//! installed via [`install_journal`] and exported as Chrome trace-event
//! JSON or JSONL ([`TraceLog`]). Metrics aggregate; the journal keeps the
//! per-round causal story. The [`json`] module is the matching reader used
//! by downstream tools (`fttt-sim explain`, the bench regression gate) to
//! load these artifacts back, since the vendored serde stack cannot parse.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
mod export;
pub mod json;
mod metrics;
mod registry;
pub mod trace;

pub use artifacts::{ensure_writable_dir, ensure_writable_file, write_file_atomic};
pub use export::validate_prometheus_text;
pub use metrics::{Counter, Gauge, Histogram, COUNT_BUCKETS, DURATION_US_BUCKETS};
pub use registry::{HistogramSnapshot, MergeError, Registry, Snapshot};
pub use trace::{ArgValue, Journal, TraceEvent, TraceKind, TraceLog, DEFAULT_JOURNAL_CAPACITY};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Fast-path flag: `true` iff a sink is installed. Checked (relaxed) before
/// any other telemetry work so uninstrumented runs pay a single atomic load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-wide metrics sink. Only consulted after [`ENABLED`] reads
/// `true`, so the lock is never touched on the disabled path.
static SINK: RwLock<Option<Arc<Registry>>> = RwLock::new(None);

/// Install `registry` as the process-wide metrics sink and enable
/// instrumentation. Replaces any previously installed sink.
pub fn install(registry: Arc<Registry>) {
    *SINK.write().expect("telemetry sink lock poisoned") = Some(registry);
    ENABLED.store(true, Ordering::Release);
}

/// Disable instrumentation and return the previously installed sink, if any.
pub fn uninstall() -> Option<Arc<Registry>> {
    ENABLED.store(false, Ordering::Release);
    SINK.write().expect("telemetry sink lock poisoned").take()
}

/// Whether a metrics sink is currently installed.
///
/// This is the cheap enabled-check instrumented code guards on: a single
/// relaxed atomic load. Hot paths accumulate into locals and only touch the
/// registry when this returns `true`.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Run `f` against the installed sink, or do nothing if there is none.
pub fn with_sink<F: FnOnce(&Registry)>(f: F) {
    if !enabled() {
        return;
    }
    if let Ok(guard) = SINK.read() {
        if let Some(registry) = guard.as_ref() {
            f(registry);
        }
    }
}

/// Add `n` to the counter `name` in the installed sink (no-op when disabled).
#[inline]
pub fn counter_add(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    with_sink(|r| r.counter(name).add(n));
}

/// Set the gauge `name` to `value` in the installed sink (no-op when disabled).
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_sink(|r| r.gauge(name).set(value));
}

/// Record `value` into the histogram `name` with the given bucket `bounds`
/// (no-op when disabled). The bounds are only consulted the first time the
/// histogram is created in the sink.
#[inline]
pub fn observe(name: &str, bounds: &[f64], value: f64) {
    if !enabled() {
        return;
    }
    with_sink(|r| r.histogram(name, bounds).observe(value));
}

/// Fast-path flag for the trace journal, mirroring [`ENABLED`]: `true` iff
/// a journal is installed. With neither sink nor journal installed a
/// [`span`] costs two relaxed atomic loads and two untaken branches.
static TRACING: AtomicBool = AtomicBool::new(false);

/// The process-wide trace journal. Only consulted after [`TRACING`] reads
/// `true`, so the lock is never touched on the disabled path.
static JOURNAL: RwLock<Option<Arc<Journal>>> = RwLock::new(None);

/// Install `journal` as the process-wide trace journal and enable event
/// emission. Replaces any previously installed journal.
pub fn install_journal(journal: Arc<Journal>) {
    *JOURNAL.write().expect("telemetry journal lock poisoned") = Some(journal);
    TRACING.store(true, Ordering::Release);
}

/// Disable event emission and return the previously installed journal, if
/// any. Existing [`Span`]s keep an `Arc` to it, so in-flight spans still
/// record their end events harmlessly.
pub fn uninstall_journal() -> Option<Arc<Journal>> {
    TRACING.store(false, Ordering::Release);
    JOURNAL
        .write()
        .expect("telemetry journal lock poisoned")
        .take()
}

/// Whether a trace journal is currently installed (one relaxed atomic
/// load — the guard instrumented code checks before assembling event args).
#[inline]
pub fn journal_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Run `f` against the installed journal, or do nothing if there is none.
pub fn with_journal<F: FnOnce(&Journal)>(f: F) {
    if !journal_enabled() {
        return;
    }
    if let Ok(guard) = JOURNAL.read() {
        if let Some(journal) = guard.as_ref() {
            f(journal);
        }
    }
}

fn current_journal() -> Option<Arc<Journal>> {
    JOURNAL
        .read()
        .ok()
        .and_then(|guard| guard.as_ref().cloned())
}

/// Record a point-in-time event `name` with `args` into the installed
/// journal (no-op when none is installed).
#[inline]
pub fn trace_instant(name: &'static str, args: Vec<(&'static str, ArgValue)>) {
    if !journal_enabled() {
        return;
    }
    with_journal(|j| j.record(name, TraceKind::Instant, args));
}

/// Record a tracking-round marker `name` for `round` with `args` into the
/// installed journal (no-op when none is installed).
#[inline]
pub fn trace_round(name: &'static str, round: u64, args: Vec<(&'static str, ArgValue)>) {
    if !journal_enabled() {
        return;
    }
    with_journal(|j| j.record(name, TraceKind::Round { round }, args));
}

/// An RAII span timer: created by [`span`], records its elapsed wall-clock
/// time in microseconds into the histogram `name` (bounds
/// [`DURATION_US_BUCKETS`]) when dropped. When a trace journal is
/// installed the span additionally emits begin/end events with parent
/// links, so one `span()` call site feeds both the metrics and the
/// journal.
///
/// When both telemetry and tracing are disabled at creation the span holds
/// nothing — no `Instant::now()` is taken and drop is free.
#[must_use = "a span records its duration when dropped; binding it to _ drops it immediately"]
#[derive(Debug)]
pub struct Span {
    armed: Option<(&'static str, Instant)>,
    traced: Option<(Arc<Journal>, &'static str, u64)>,
}

/// Start a span timer named `name`. The histogram count doubles as the call
/// count of the instrumented phase, so spans need no separate counter.
pub fn span(name: &'static str) -> Span {
    let traced = if journal_enabled() {
        current_journal().map(|j| {
            let id = j.begin_span(name);
            (j, name, id)
        })
    } else {
        None
    };
    Span {
        armed: enabled().then(|| (name, Instant::now())),
        traced,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, start)) = self.armed.take() {
            let micros = start.elapsed().as_secs_f64() * 1e6;
            observe(name, DURATION_US_BUCKETS, micros);
        }
        if let Some((journal, name, id)) = self.traced.take() {
            journal.end_span(name, id);
        }
    }
}
