//! Indexed parallel map with dynamic chunk dispatch.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use by default: the machine's available
/// parallelism, capped at 16 (the workloads here stop scaling long before
/// the cap matters, and oversubscribing CI runners only adds noise).
pub fn recommended_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Parallel, order-preserving map over `items` using
/// [`recommended_threads`] workers.
///
/// Equivalent to `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()`
/// — same values, same order — but executed on a scoped thread pool with
/// dynamic load balancing (workers claim fixed-size chunks from an atomic
/// counter, so a few slow items cannot serialize the sweep).
///
/// ```
/// use wsn_parallel::par_map;
///
/// let squares = par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_threads(recommended_threads(), items, f)
}

/// [`par_map`] with an explicit worker count (`threads == 1` runs inline,
/// useful for debugging and for measuring scaling).
///
/// Results land in a slot vector preallocated to the exact chunk count:
/// each worker claims a chunk index from the shared cursor, maps that
/// contiguous item range, and stores the values in the chunk's own slot
/// (one uncontended lock per chunk). Reassembly is a flat in-order drain —
/// no channel and no per-item `Option` bookkeeping.
///
/// # Panics
///
/// Panics if `threads == 0`, or re-panics if `f` panicked on any worker.
pub fn par_map_threads<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if items.is_empty() {
        return Vec::new();
    }
    if threads == 1 || items.len() == 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    // Aim for ~8 chunks per worker so stragglers re-balance, while keeping
    // dispatch overhead negligible.
    let chunk = (items.len() / (threads * 8)).max(1);
    let n_chunks = items.len().div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(items.len());

    let slots: Vec<Mutex<Vec<U>>> = (0..n_chunks).map(|_| Mutex::new(Vec::new())).collect();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let slots = &slots;
                let f = &f;
                s.spawn(move || loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    let start = idx * chunk;
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + chunk).min(items.len());
                    let values: Vec<U> = items[start..end]
                        .iter()
                        .enumerate()
                        .map(|(k, x)| f(start + k, x))
                        .collect();
                    // Each chunk index is claimed exactly once, so this lock
                    // is always uncontended.
                    *slots[idx].lock().unwrap_or_else(|e| e.into_inner()) = values;
                })
            })
            .collect();
        for handle in handles {
            if handle.join().is_err() {
                panic!("parallel map worker panicked");
            }
        }
    });

    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        out.append(&mut slot.into_inner().unwrap_or_else(|e| e.into_inner()));
    }
    debug_assert_eq!(out.len(), items.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..10_000).collect();
        let expected: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x * 3 + i as u64)
            .collect();
        for threads in [1, 2, 3, 8, 16] {
            let got = par_map_threads(threads, &items, |i, x| x * 3 + i as u64);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<i32> = vec![];
        assert_eq!(par_map(&empty, |_, x| *x), Vec::<i32>::new());
        assert_eq!(par_map(&[5], |i, x| x + i as i32), vec![5]);
    }

    #[test]
    fn every_item_visited_exactly_once() {
        let n = 5_000;
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..n).collect();
        let out = par_map_threads(4, &items, |i, &x| {
            counter.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), n);
        assert_eq!(out.len(), n);
    }

    #[test]
    fn unbalanced_work_still_completes() {
        // A few very slow items early in the list: dynamic dispatch must
        // not starve the remaining work.
        let items: Vec<u32> = (0..64).collect();
        let out = par_map_threads(4, &items, |_, &x| {
            if x < 2 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x * 2
        });
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_items() {
        // Worker count must clamp to the item count without deadlocking.
        let items: Vec<u32> = (0..5).collect();
        let out = par_map_threads(32, &items, |_, &x| x + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..100).collect();
        let _ = par_map_threads(4, &items, |_, &x| {
            if x == 57 {
                panic!("injected failure");
            }
            x
        });
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = par_map_threads(0, &[1, 2, 3], |_, x| *x);
    }

    #[test]
    fn seeded_parallel_monte_carlo_is_thread_count_invariant() {
        use crate::seed::seed_for;
        use rand::{Rng, SeedableRng};
        let trials: Vec<u64> = (0..200).collect();
        let run = |threads: usize| -> Vec<f64> {
            par_map_threads(threads, &trials, |i, _| {
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed_for(99, i as u64));
                (0..100).map(|_| rng.gen::<f64>()).sum::<f64>()
            })
        };
        let reference = run(1);
        for threads in [2, 3, 5, 7, 13, 16] {
            assert_eq!(reference, run(threads), "threads={threads}");
        }
    }
}
