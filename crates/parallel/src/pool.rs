//! Indexed parallel map with dynamic chunk dispatch.

use crossbeam::channel;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use by default: the machine's available
/// parallelism, capped at 16 (the workloads here stop scaling long before
/// the cap matters, and oversubscribing CI runners only adds noise).
pub fn recommended_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(16)
}

/// Parallel, order-preserving map over `items` using
/// [`recommended_threads`] workers.
///
/// Equivalent to `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()`
/// — same values, same order — but executed on a scoped thread pool with
/// dynamic load balancing (workers claim fixed-size chunks from an atomic
/// counter, so a few slow items cannot serialize the sweep).
///
/// ```
/// use wsn_parallel::par_map;
///
/// let squares = par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_threads(recommended_threads(), items, f)
}

/// [`par_map`] with an explicit worker count (`threads == 1` runs inline,
/// useful for debugging and for measuring scaling).
///
/// # Panics
///
/// Panics if `threads == 0`, or re-panics if `f` panicked on any worker.
pub fn par_map_threads<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if items.is_empty() {
        return Vec::new();
    }
    if threads == 1 || items.len() == 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    // Aim for ~8 chunks per worker so stragglers re-balance, while keeping
    // dispatch overhead negligible.
    let chunk = (items.len() / (threads * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(items.len());
    let (tx, rx) = channel::unbounded::<(usize, Vec<U>)>();

    crossbeam::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            s.spawn(move |_| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= items.len() {
                    break;
                }
                let end = (start + chunk).min(items.len());
                let values: Vec<U> =
                    items[start..end].iter().enumerate().map(|(k, x)| f(start + k, x)).collect();
                // The receiver outlives the scope; a send failure can only
                // mean the parent is unwinding already.
                let _ = tx.send((start, values));
            });
        }
        drop(tx);
    })
    .expect("parallel map worker panicked");

    // Reassemble in index order.
    let mut out: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    for (start, values) in rx.try_iter() {
        for (k, v) in values.into_iter().enumerate() {
            out[start + k] = Some(v);
        }
    }
    out.into_iter()
        .map(|slot| slot.expect("every index must be produced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..10_000).collect();
        let expected: Vec<u64> = items.iter().enumerate().map(|(i, x)| x * 3 + i as u64).collect();
        for threads in [1, 2, 3, 8] {
            let got = par_map_threads(threads, &items, |i, x| x * 3 + i as u64);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<i32> = vec![];
        assert_eq!(par_map(&empty, |_, x| *x), Vec::<i32>::new());
        assert_eq!(par_map(&[5], |i, x| x + i as i32), vec![5]);
    }

    #[test]
    fn every_item_visited_exactly_once() {
        let n = 5_000;
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..n).collect();
        let out = par_map_threads(4, &items, |i, &x| {
            counter.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), n);
        assert_eq!(out.len(), n);
    }

    #[test]
    fn unbalanced_work_still_completes() {
        // A few very slow items early in the list: dynamic dispatch must
        // not starve the remaining work.
        let items: Vec<u32> = (0..64).collect();
        let out = par_map_threads(4, &items, |_, &x| {
            if x < 2 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x * 2
        });
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..100).collect();
        let _ = par_map_threads(4, &items, |_, &x| {
            if x == 57 {
                panic!("injected failure");
            }
            x
        });
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = par_map_threads(0, &[1, 2, 3], |_, x| *x);
    }

    #[test]
    fn seeded_parallel_monte_carlo_is_thread_count_invariant() {
        use crate::seed::seed_for;
        use rand::{Rng, SeedableRng};
        let trials: Vec<u64> = (0..200).collect();
        let run = |threads: usize| -> Vec<f64> {
            par_map_threads(threads, &trials, |i, _| {
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed_for(99, i as u64));
                (0..100).map(|_| rng.gen::<f64>()).sum::<f64>()
            })
        };
        assert_eq!(run(1), run(7));
    }
}
