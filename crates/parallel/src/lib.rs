//! A minimal, deterministic data-parallel runtime.
//!
//! The face-map rasterization (cells × pairs classifications) and the
//! Monte-Carlo experiment sweeps are embarrassingly parallel. Rather than
//! pulling in rayon, this crate implements the one primitive the suite
//! needs — an indexed parallel map with dynamic load balancing — on
//! `std::thread::scope` plus an atomic chunk dispenser, following the
//! scoped-threads + atomics idioms of the session's HPC guides.
//!
//! Guarantees:
//!
//! * **Determinism** — `par_map(items, f)` returns exactly
//!   `items.iter().map(f).collect()` in order, regardless of thread count
//!   or scheduling (workers tag chunks with their start index).
//! * **Panic propagation** — a panicking closure aborts the whole map and
//!   re-panics on the caller's thread.
//! * **Seed hygiene** — [`seed_for`] derives independent per-item RNG seeds
//!   from a master seed with SplitMix64, so parallel Monte-Carlo trials
//!   reproduce bit-for-bit at any parallelism level.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod seed;

pub use pool::{par_map, par_map_threads, recommended_threads};
pub use seed::seed_for;
