//! Per-item seed derivation for parallel Monte-Carlo work.

/// SplitMix64 step: a fast, well-mixed 64-bit permutation. Used purely for
/// seed derivation, never as the simulation RNG itself.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG seed for trial `index` of an experiment with `master`
/// seed.
///
/// Two invocations with the same `(master, index)` always agree, and
/// distinct indices give statistically independent streams — so a sweep can
/// be chopped across threads in any way without changing its results.
#[inline]
pub fn seed_for(master: u64, index: u64) -> u64 {
    // Mix the index in twice through the permutation so that consecutive
    // indices land far apart even for master = 0.
    splitmix64(splitmix64(master ^ index.wrapping_mul(0xA076_1D64_78BD_642F)).wrapping_add(index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(seed_for(42, 7), seed_for(42, 7));
    }

    #[test]
    fn distinct_across_indices_and_masters() {
        let mut seen = HashSet::new();
        for master in 0..8u64 {
            for index in 0..1024u64 {
                assert!(
                    seen.insert(seed_for(master, index)),
                    "collision at ({master},{index})"
                );
            }
        }
    }

    /// Golden values, pinned to exact constants.
    ///
    /// Every campaign checksum in `crates/bench/baselines/` is downstream
    /// of these outputs: trial `i` of a campaign with master seed `s` is
    /// seeded with `seed_for(s, i)`, single-process and sharded runs
    /// alike. A refactor of the parallel layer that changes any of these
    /// values silently invalidates every committed golden checksum — this
    /// test turns that into a loud, named failure at the source.
    #[test]
    fn golden_values_are_pinned() {
        for (master, index, expected) in [
            (0u64, 0u64, 0xa706dd2f4d197e6fu64),
            (0, 1, 0xa7f76c06f869c6af),
            (0, 2, 0xda7d353b51e2ad79),
            (42, 0, 0x57e1faba65107204),
            (42, 1, 0x029a8eaf241c23a8),
            (42, 5, 0x0c09ac792540aa23),
            (0xDEAD_BEEF, 123, 0xd6bb3b7c7fc7e983),
            (u64::MAX, u64::MAX, 0xbe84892bcba6184a),
        ] {
            assert_eq!(
                seed_for(master, index),
                expected,
                "seed_for({master}, {index}) drifted — committed campaign \
                 checksums are now invalid"
            );
        }
    }

    /// Pairwise distinct over realistic campaign sizes: every master seed
    /// the repo's benches use, crossed with far more trial indices than
    /// any campaign runs, with no collision within or across masters.
    #[test]
    fn pairwise_distinct_over_realistic_trial_counts() {
        let mut seen = HashSet::new();
        for master in [0u64, 1, 7, 42, 123, 0xDEAD_BEEF, u64::MAX] {
            for index in 0..16_384u64 {
                assert!(
                    seen.insert(seed_for(master, index)),
                    "collision at ({master},{index})"
                );
            }
        }
    }

    #[test]
    fn no_trivial_structure_for_zero_master() {
        // Consecutive indices under master=0 should differ in many bits.
        let a = seed_for(0, 0);
        let b = seed_for(0, 1);
        assert!((a ^ b).count_ones() > 10, "{a:x} vs {b:x}");
    }

    #[test]
    fn bits_look_balanced() {
        // Across many derived seeds each bit should be set roughly half the
        // time — a smoke test against a broken mixer.
        let n = 4096u64;
        for bit in 0..64 {
            let ones = (0..n).filter(|&i| seed_for(1, i) >> bit & 1 == 1).count();
            let frac = ones as f64 / n as f64;
            assert!((frac - 0.5).abs() < 0.06, "bit {bit}: {frac}");
        }
    }
}
