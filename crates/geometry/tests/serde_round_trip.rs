//! Serde round-trips for the geometry types (only with `--features serde`).
#![cfg(feature = "serde")]

use wsn_geometry::{CellIndex, Circle, Grid, Point, Rect, Segment, UncertainBoundary, Vector};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn point_and_vector() {
    let p = Point::new(1.5, -2.25);
    assert_eq!(round_trip(&p), p);
    let v = Vector::new(0.0, 9.75);
    assert_eq!(round_trip(&v), v);
}

#[test]
fn circle_rect_segment() {
    let c = Circle::new(Point::new(3.0, 4.0), 2.5);
    assert_eq!(round_trip(&c), c);
    let r = Rect::square(100.0);
    assert_eq!(round_trip(&r), r);
    let s = Segment::new(Point::ORIGIN, Point::new(5.0, 5.0));
    assert_eq!(round_trip(&s), s);
}

#[test]
fn grid_preserves_lattice() {
    let g = Grid::cover(Rect::square(50.0), 2.0);
    let back = round_trip(&g);
    assert_eq!(back, g);
    assert_eq!(back.cell_count(), g.cell_count());
    assert_eq!(
        back.center(CellIndex::new(3, 4)),
        g.center(CellIndex::new(3, 4))
    );
}

#[test]
fn uncertain_boundary() {
    let ub = UncertainBoundary::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0), 1.3).unwrap();
    let back = round_trip(&ub);
    // JSON float formatting may drop the last ULP; semantic equality is
    // what matters for this composite type.
    assert_eq!(back.a, ub.a);
    assert_eq!(back.b, ub.b);
    assert_eq!(back.c, ub.c);
    assert!((back.near_first.radius - ub.near_first.radius).abs() < 1e-12);
    assert!((back.near_second.center.x - ub.near_second.center.x).abs() < 1e-12);
    assert_eq!(
        back.classify(Point::new(5.0, 0.0)),
        ub.classify(Point::new(5.0, 0.0))
    );
}
