//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use wsn_geometry::{apollonius_circle, Grid, PairRegion, Point, Rect, Segment};

fn finite_coord() -> impl Strategy<Value = f64> {
    -1e3..1e3f64
}

fn point() -> impl Strategy<Value = Point> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    /// Triangle inequality for the distance metric.
    #[test]
    fn triangle_inequality(a in point(), b in point(), c in point()) {
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }

    /// Points sampled on an Apollonius circle have the claimed distance ratio.
    #[test]
    fn apollonius_ratio_holds(
        a in point(),
        b in point(),
        k in prop_oneof![0.05..0.95f64, 1.05..20.0f64],
        theta in 0.0..std::f64::consts::TAU,
    ) {
        prop_assume!(a.distance(b) > 1e-3);
        let circ = apollonius_circle(a, b, k).unwrap();
        prop_assume!(circ.radius < 1e6); // k ≈ 1 blows the circle up; skip ill-conditioned cases
        let p = circ.point_at(theta);
        let ratio = p.distance(a) / p.distance(b);
        prop_assert!((ratio - k).abs() < 1e-5 * k.max(1.0), "ratio {ratio} vs k {k}");
    }

    /// Classification is antisymmetric under swapping the pair.
    #[test]
    fn classify_antisymmetric(p in point(), a in point(), b in point(), c in 1.0..4.0f64) {
        prop_assume!(a.distance(b) > 1e-6);
        let fwd = PairRegion::classify(p, a, b, c);
        let rev = PairRegion::classify(p, b, a, c);
        prop_assert_eq!(fwd.flipped(), rev);
    }

    /// Widening C never turns an uncertain point certain: regions are nested.
    #[test]
    fn uncertain_region_monotone_in_c(
        p in point(), a in point(), b in point(),
        c_lo in 1.0..3.0f64, dc in 0.0..2.0f64,
    ) {
        prop_assume!(a.distance(b) > 1e-6);
        let lo = PairRegion::classify(p, a, b, c_lo);
        let hi = PairRegion::classify(p, a, b, c_lo + dc);
        if lo == PairRegion::Uncertain {
            prop_assert_eq!(hi, PairRegion::Uncertain);
        }
        if hi != PairRegion::Uncertain {
            prop_assert_eq!(lo, hi);
        }
    }

    /// Grid index/centre round-trips for arbitrary in-field points:
    /// the centre of the cell containing p is within half a cell diagonal.
    #[test]
    fn grid_cell_contains_its_points(
        x in 0.0..100.0f64, y in 0.0..100.0f64, cell in 0.1..10.0f64,
    ) {
        let g = Grid::cover(Rect::square(100.0), cell);
        let p = Point::new(x, y);
        let idx = g.index_of(p).expect("in-field point must land in a cell");
        let center = g.center(idx);
        prop_assert!((p.x - center.x).abs() <= cell / 2.0 + 1e-9);
        prop_assert!((p.y - center.y).abs() <= cell / 2.0 + 1e-9);
    }

    /// Segment arc-length walking is metric-consistent.
    #[test]
    fn segment_arclength(a in point(), b in point(), s in 0.0..1e3f64) {
        let seg = Segment::new(a, b);
        let p = seg.point_at_distance(s);
        let expect = s.min(seg.length());
        prop_assert!((a.distance(p) - expect).abs() < 1e-6);
    }

    /// Rect clamp is idempotent and lands inside.
    #[test]
    fn rect_clamp_idempotent(p in point()) {
        let r = Rect::square(50.0);
        let q = r.clamp(p);
        prop_assert!(r.contains(q));
        prop_assert_eq!(r.clamp(q), q);
    }
}
