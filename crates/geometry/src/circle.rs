//! Circles with containment and intersection predicates.

use crate::point::Point;

/// A circle in the plane.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Circle {
    /// Centre of the circle.
    pub center: Point,
    /// Radius in metres (non-negative).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle; `radius` must be non-negative and finite.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite (a malformed radius here
    /// would silently corrupt every face classification downstream).
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "circle radius must be finite and non-negative, got {radius}"
        );
        Self { center, radius }
    }

    /// `true` if `p` lies strictly inside the circle.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.center.distance_squared(p) < self.radius * self.radius
    }

    /// `true` if `p` lies inside or on the circle.
    #[inline]
    pub fn contains_closed(&self, p: Point) -> bool {
        self.center.distance_squared(p) <= self.radius * self.radius
    }

    /// Signed distance from `p` to the circle boundary: negative inside,
    /// zero on the boundary, positive outside.
    #[inline]
    pub fn signed_distance(&self, p: Point) -> f64 {
        self.center.distance(p) - self.radius
    }

    /// `true` if the two circles intersect or touch (closed test).
    pub fn intersects(&self, other: &Circle) -> bool {
        let d2 = self.center.distance_squared(other.center);
        let rsum = self.radius + other.radius;
        let rdiff = (self.radius - other.radius).abs();
        d2 <= rsum * rsum && d2 >= rdiff * rdiff
    }

    /// Area of the disc.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Point on the circle at angle `theta` (radians, measured from +x).
    #[inline]
    pub fn point_at(&self, theta: f64) -> Point {
        Point::new(
            self.center.x + self.radius * theta.cos(),
            self.center.y + self.radius * theta.sin(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_open_vs_closed() {
        let c = Circle::new(Point::new(0.0, 0.0), 2.0);
        let on_boundary = Point::new(2.0, 0.0);
        assert!(!c.contains(on_boundary));
        assert!(c.contains_closed(on_boundary));
        assert!(c.contains(Point::new(1.0, 1.0)));
        assert!(!c.contains(Point::new(2.0, 2.0)));
    }

    #[test]
    fn signed_distance_sign_convention() {
        let c = Circle::new(Point::new(1.0, 1.0), 1.0);
        assert!(c.signed_distance(Point::new(1.0, 1.0)) < 0.0);
        assert!((c.signed_distance(Point::new(2.0, 1.0))).abs() < 1e-12);
        assert!(c.signed_distance(Point::new(4.0, 1.0)) > 0.0);
    }

    #[test]
    fn intersection_cases() {
        let a = Circle::new(Point::new(0.0, 0.0), 1.0);
        // Overlapping.
        assert!(a.intersects(&Circle::new(Point::new(1.5, 0.0), 1.0)));
        // Externally tangent.
        assert!(a.intersects(&Circle::new(Point::new(2.0, 0.0), 1.0)));
        // Disjoint.
        assert!(!a.intersects(&Circle::new(Point::new(3.0, 0.0), 1.0)));
        // One strictly inside the other: boundaries do not meet.
        assert!(!a.intersects(&Circle::new(Point::new(0.0, 0.0), 0.25)));
        // Internally tangent.
        assert!(a.intersects(&Circle::new(Point::new(0.5, 0.0), 0.5)));
    }

    #[test]
    fn point_at_lies_on_boundary() {
        let c = Circle::new(Point::new(3.0, -1.0), 2.5);
        for i in 0..8 {
            let theta = i as f64 * std::f64::consts::FRAC_PI_4;
            let p = c.point_at(theta);
            assert!((c.center.distance(p) - c.radius).abs() < 1e-12);
        }
    }

    #[test]
    fn area_of_unit_circle() {
        let c = Circle::new(Point::ORIGIN, 1.0);
        assert!((c.area() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "radius must be finite")]
    fn negative_radius_rejected() {
        let _ = Circle::new(Point::ORIGIN, -1.0);
    }
}
