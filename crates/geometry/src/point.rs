//! Planar points and vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point in the monitored plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Horizontal coordinate (metres).
    pub x: f64,
    /// Vertical coordinate (metres).
    pub y: f64,
}

/// A displacement between two [`Point`]s, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vector {
    /// Horizontal component (metres).
    pub x: f64,
    /// Vertical component (metres).
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this in hot predicates: the pairwise-region classification in
    /// [`crate::apollonius`] is expressed entirely in squared distances to
    /// avoid a `sqrt` per grid cell per pair.
    #[inline]
    pub fn distance_squared(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint of the segment `self..other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }

    /// Linear interpolation: `t = 0` gives `self`, `t = 1` gives `other`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }

    /// Both coordinates are finite (neither NaN nor infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vector {
    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The zero vector.
    pub const ZERO: Vector = Vector::new(0.0, 0.0);

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_squared().sqrt()
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vector) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (z-component of the 3D cross product).
    #[inline]
    pub fn cross(self, other: Vector) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction, or `None` for (near-)zero vectors.
    #[inline]
    pub fn normalized(self) -> Option<Vector> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// Rotated 90° counter-clockwise.
    #[inline]
    pub fn perp(self) -> Vector {
        Vector::new(-self.y, self.x)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vector) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign<Vector> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub<Vector> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Vector) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign<Vector> for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Vector) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Sub for Point {
    type Output = Vector;
    #[inline]
    fn sub(self, rhs: Point) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add for Vector {
    type Output = Vector;
    #[inline]
    fn add(self, rhs: Vector) -> Vector {
        Vector::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vector {
    type Output = Vector;
    #[inline]
    fn sub(self, rhs: Vector) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Vector {
    type Output = Vector;
    #[inline]
    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn mul(self, rhs: f64) -> Vector {
        Vector::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vector> for f64 {
    type Output = Vector;
    #[inline]
    fn mul(self, rhs: Vector) -> Vector {
        rhs * self
    }
}

impl Div<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn div(self, rhs: f64) -> Vector {
        Vector::new(self.x / rhs, self.y / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn distance_squared_matches_distance() {
        let a = Point::new(-3.0, 0.5);
        let b = Point::new(2.0, -7.0);
        let d = a.distance(b);
        assert!((a.distance_squared(b) - d * d).abs() < 1e-12);
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -4.0);
        assert_eq!(a.midpoint(b), a.lerp(b, 0.5));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn vector_algebra() {
        let v = Vector::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_squared(), 25.0);
        assert_eq!(v.dot(Vector::new(1.0, 0.0)), 3.0);
        assert_eq!(v.cross(Vector::new(1.0, 0.0)), -4.0);
        assert_eq!(-v, Vector::new(-3.0, -4.0));
        assert_eq!(v * 2.0, Vector::new(6.0, 8.0));
        assert_eq!(2.0 * v, v * 2.0);
        assert_eq!(v / 2.0, Vector::new(1.5, 2.0));
    }

    #[test]
    fn normalized_handles_zero() {
        assert!(Vector::ZERO.normalized().is_none());
        let u = Vector::new(0.0, -2.0).normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert_eq!(u, Vector::new(0.0, -1.0));
    }

    #[test]
    fn perp_is_ccw_quarter_turn() {
        let v = Vector::new(1.0, 0.0);
        assert_eq!(v.perp(), Vector::new(0.0, 1.0));
        assert_eq!(v.perp().perp(), -v);
        assert_eq!(v.dot(v.perp()), 0.0);
    }

    #[test]
    fn point_vector_round_trip() {
        let p = Point::new(2.0, 3.0);
        let v = Vector::new(-1.0, 4.0);
        let q = p + v;
        assert_eq!(q - p, v);
        assert_eq!(q - v, p);
        let mut r = p;
        r += v;
        assert_eq!(r, q);
        r -= v;
        assert_eq!(r, p);
    }

    #[test]
    fn is_finite_flags_nan_and_inf() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
