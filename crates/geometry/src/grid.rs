//! Square-grid rasterization of the monitored field.
//!
//! The exact face arrangement induced by all pairs' Apollonius circles is a
//! hard computational-geometry problem; the paper instead rasterizes the
//! field into square cells, labels each cell centre with its signature
//! vector, and groups equal labels into faces whose location estimate is the
//! centroid of their cells (Section 4.3, Fig. 6, eq. 5). [`Grid`] is that
//! rasterization: an immutable description of the cell lattice with
//! index ↔ coordinate conversions and 4-neighbourhood queries (used to build
//! the neighbor-face links of Definition 8).

use crate::aabb::Rect;
use crate::point::Point;

/// Index of one grid cell: column `ix`, row `iy`, both zero-based from the
/// lower-left corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CellIndex {
    /// Column (x direction).
    pub ix: u32,
    /// Row (y direction).
    pub iy: u32,
}

impl CellIndex {
    /// Creates a cell index.
    #[inline]
    pub const fn new(ix: u32, iy: u32) -> Self {
        Self { ix, iy }
    }
}

/// An immutable square-cell lattice covering a rectangle.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Grid {
    rect: Rect,
    cell: f64,
    nx: u32,
    ny: u32,
}

impl Grid {
    /// Covers `rect` with square cells of side `cell`. The last column/row
    /// may extend past `rect.max` (cells never shrink).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is non-positive/non-finite or the grid would exceed
    /// `u32` cells per axis.
    pub fn cover(rect: Rect, cell: f64) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "cell size must be positive, got {cell}"
        );
        let nx = (rect.width() / cell).ceil().max(1.0);
        let ny = (rect.height() / cell).ceil().max(1.0);
        assert!(
            nx <= u32::MAX as f64 && ny <= u32::MAX as f64,
            "grid too large"
        );
        Self {
            rect,
            cell,
            nx: nx as u32,
            ny: ny as u32,
        }
    }

    /// The covered rectangle (the monitored field).
    #[inline]
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// Cell side length in metres.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of columns.
    #[inline]
    pub fn nx(&self) -> u32 {
        self.nx
    }

    /// Number of rows.
    #[inline]
    pub fn ny(&self) -> u32 {
        self.ny
    }

    /// Total number of cells.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.nx as usize * self.ny as usize
    }

    /// Centre of cell `idx`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `idx` is out of range.
    #[inline]
    pub fn center(&self, idx: CellIndex) -> Point {
        debug_assert!(
            idx.ix < self.nx && idx.iy < self.ny,
            "cell index out of range"
        );
        Point::new(
            self.rect.min.x + (idx.ix as f64 + 0.5) * self.cell,
            self.rect.min.y + (idx.iy as f64 + 0.5) * self.cell,
        )
    }

    /// Cell containing `p`, or `None` if `p` lies outside the lattice.
    pub fn index_of(&self, p: Point) -> Option<CellIndex> {
        if p.x < self.rect.min.x || p.y < self.rect.min.y {
            return None;
        }
        let ix = ((p.x - self.rect.min.x) / self.cell).floor();
        let iy = ((p.y - self.rect.min.y) / self.cell).floor();
        if ix >= self.nx as f64 || iy >= self.ny as f64 || !ix.is_finite() || !iy.is_finite() {
            return None;
        }
        Some(CellIndex::new(ix as u32, iy as u32))
    }

    /// Row-major linear index of `idx` (rows are y, columns x).
    #[inline]
    pub fn linear(&self, idx: CellIndex) -> usize {
        idx.iy as usize * self.nx as usize + idx.ix as usize
    }

    /// Inverse of [`Grid::linear`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lin` is out of range.
    #[inline]
    pub fn from_linear(&self, lin: usize) -> CellIndex {
        debug_assert!(lin < self.cell_count(), "linear index out of range");
        CellIndex::new(
            (lin % self.nx as usize) as u32,
            (lin / self.nx as usize) as u32,
        )
    }

    /// Iterates all cells in row-major order with their centres.
    pub fn iter_centers(&self) -> impl Iterator<Item = (CellIndex, Point)> + '_ {
        (0..self.cell_count()).map(move |lin| {
            let idx = self.from_linear(lin);
            (idx, self.center(idx))
        })
    }

    /// The 4-neighbourhood of `idx` (left/right/down/up, in-range only).
    pub fn neighbors4(&self, idx: CellIndex) -> impl Iterator<Item = CellIndex> + '_ {
        let (ix, iy) = (idx.ix as i64, idx.iy as i64);
        let (nx, ny) = (self.nx as i64, self.ny as i64);
        [(ix - 1, iy), (ix + 1, iy), (ix, iy - 1), (ix, iy + 1)]
            .into_iter()
            .filter(move |&(x, y)| x >= 0 && y >= 0 && x < nx && y < ny)
            .map(|(x, y)| CellIndex::new(x as u32, y as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_10x10() -> Grid {
        Grid::cover(Rect::square(10.0), 1.0)
    }

    #[test]
    fn cover_dimensions() {
        let g = grid_10x10();
        assert_eq!(g.nx(), 10);
        assert_eq!(g.ny(), 10);
        assert_eq!(g.cell_count(), 100);
        assert_eq!(g.cell_size(), 1.0);
    }

    #[test]
    fn cover_rounds_up_partial_cells() {
        let g = Grid::cover(Rect::square(10.0), 3.0);
        assert_eq!(g.nx(), 4);
        assert_eq!(g.ny(), 4);
    }

    #[test]
    fn center_and_index_round_trip() {
        let g = grid_10x10();
        for (idx, center) in g.iter_centers() {
            assert_eq!(g.index_of(center), Some(idx));
            assert_eq!(g.from_linear(g.linear(idx)), idx);
        }
    }

    #[test]
    fn first_cell_center_per_paper_convention() {
        // Paper Fig. 6: the bottom-left cell centre is the lattice origin of
        // the coordinate system; with a field starting at (0,0) and 1 m
        // cells, that centre sits at (0.5, 0.5).
        let g = grid_10x10();
        assert_eq!(g.center(CellIndex::new(0, 0)), Point::new(0.5, 0.5));
    }

    #[test]
    fn index_of_outside_is_none() {
        let g = grid_10x10();
        assert_eq!(g.index_of(Point::new(-0.01, 5.0)), None);
        assert_eq!(g.index_of(Point::new(5.0, 10.01)), None);
        assert!(g.index_of(Point::new(9.99, 9.99)).is_some());
    }

    #[test]
    fn neighbors4_corner_edge_interior() {
        let g = grid_10x10();
        assert_eq!(g.neighbors4(CellIndex::new(0, 0)).count(), 2);
        assert_eq!(g.neighbors4(CellIndex::new(5, 0)).count(), 3);
        assert_eq!(g.neighbors4(CellIndex::new(5, 5)).count(), 4);
        let nbrs: Vec<_> = g.neighbors4(CellIndex::new(9, 9)).collect();
        assert_eq!(nbrs.len(), 2);
        assert!(nbrs.contains(&CellIndex::new(8, 9)));
        assert!(nbrs.contains(&CellIndex::new(9, 8)));
    }

    #[test]
    fn iter_centers_is_row_major_and_complete() {
        let g = Grid::cover(Rect::square(3.0), 1.0);
        let cells: Vec<_> = g.iter_centers().map(|(i, _)| i).collect();
        assert_eq!(cells.len(), 9);
        assert_eq!(cells[0], CellIndex::new(0, 0));
        assert_eq!(cells[1], CellIndex::new(1, 0));
        assert_eq!(cells[3], CellIndex::new(0, 1));
        assert_eq!(cells[8], CellIndex::new(2, 2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_size_rejected() {
        let _ = Grid::cover(Rect::square(1.0), 0.0);
    }
}
