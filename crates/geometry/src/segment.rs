//! Line segments (mobility path legs).

use crate::point::{Point, Vector};

/// A directed line segment from `start` to `end`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Segment {
    /// Start point.
    pub start: Point,
    /// End point.
    pub end: Point,
}

impl Segment {
    /// Creates a segment.
    #[inline]
    pub const fn new(start: Point, end: Point) -> Self {
        Self { start, end }
    }

    /// Segment length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.start.distance(self.end)
    }

    /// Displacement from start to end.
    #[inline]
    pub fn direction(&self) -> Vector {
        self.end - self.start
    }

    /// Point at parameter `t ∈ [0, 1]` (clamped).
    #[inline]
    pub fn point_at(&self, t: f64) -> Point {
        self.start.lerp(self.end, t.clamp(0.0, 1.0))
    }

    /// Point at arc-length `s` metres from the start (clamped to the
    /// segment). For zero-length segments returns `start`.
    pub fn point_at_distance(&self, s: f64) -> Point {
        let len = self.length();
        if len <= f64::EPSILON {
            self.start
        } else {
            self.point_at(s / len)
        }
    }

    /// Shortest distance from point `p` to the segment.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        let d = self.direction();
        let len2 = d.norm_squared();
        if len2 <= f64::EPSILON {
            return self.start.distance(p);
        }
        let t = ((p - self.start).dot(d) / len2).clamp(0.0, 1.0);
        self.point_at(t).distance(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_and_direction() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.direction(), Vector::new(3.0, 4.0));
    }

    #[test]
    fn point_at_clamps() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.point_at(0.5), Point::new(5.0, 0.0));
        assert_eq!(s.point_at(-1.0), s.start);
        assert_eq!(s.point_at(2.0), s.end);
    }

    #[test]
    fn point_at_distance_walks_arc_length() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        let p = s.point_at_distance(2.5);
        assert!((s.start.distance(p) - 2.5).abs() < 1e-12);
        // Clamped beyond the end.
        assert_eq!(s.point_at_distance(100.0), s.end);
        // Degenerate segment.
        let z = Segment::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0));
        assert_eq!(z.point_at_distance(5.0), z.start);
    }

    #[test]
    fn distance_to_point_cases() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        // Perpendicular foot inside the segment.
        assert!((s.distance_to_point(Point::new(5.0, 3.0)) - 3.0).abs() < 1e-12);
        // Beyond the end: distance to endpoint.
        assert!((s.distance_to_point(Point::new(13.0, 4.0)) - 5.0).abs() < 1e-12);
        // Before the start.
        assert!((s.distance_to_point(Point::new(-3.0, 4.0)) - 5.0).abs() < 1e-12);
    }
}
