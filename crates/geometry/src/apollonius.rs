//! Circles of Apollonius and pairwise uncertain-region classification.
//!
//! For a node pair `(a, b)` the paper derives (Section 3.2) that RSS readings
//! of the two nodes cannot be reliably ordered whenever the distance ratio
//! `d(p, a) / d(p, b)` lies within `[1/C, C]`, where `C > 1` is the
//! *uncertainty constant* computed from the radio model (eq. 3, provided by
//! `wsn-signal`). The two boundary loci `d(p,a)/d(p,b) = 1/C` and `= C` are
//! circles of Apollonius (eq. 4, Fig. 2); the band between them — containing
//! the perpendicular bisector — is the pair's **uncertain area**.
//!
//! This module provides:
//!
//! * [`apollonius_circle`] — the Apollonius circle for an arbitrary pair and
//!   ratio (the paper derives only the symmetric `(±d, 0)` case; deployments
//!   are arbitrary, so we need the general form),
//! * [`PairRegion`] / [`PairRegion::classify`] — the `sqrt`-free three-way
//!   classification used when rasterizing faces,
//! * [`UncertainBoundary`] — both boundary circles of a pair, for
//!   visualization and geometric queries.

use crate::circle::Circle;
use crate::point::Point;

/// Where a point lies relative to a node pair's uncertain area.
///
/// `NearFirst` means firmly nearer to the first node of the pair (the paper
/// assigns such points the signature component `+1`, with "first" being the
/// smaller node ID); `NearSecond` is the symmetric case (`-1`); `Uncertain`
/// is the band between the two Apollonius circles (`0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PairRegion {
    /// `d(p,a)/d(p,b) < 1/C`: the RSS order is reliably `a` before `b`.
    NearFirst,
    /// `1/C ≤ d(p,a)/d(p,b) ≤ C`: the order may flip between samples.
    Uncertain,
    /// `d(p,a)/d(p,b) > C`: the order is reliably `b` before `a`.
    NearSecond,
}

impl PairRegion {
    /// Classifies point `p` against the pair `(a, b)` with uncertainty
    /// constant `c ≥ 1`.
    ///
    /// Expressed entirely in squared distances, so it costs two
    /// subtractions, four multiplies and two compares per call — this is the
    /// inner loop of face-map rasterization (`cells × pairs` calls).
    ///
    /// With `c == 1` the uncertain band degenerates to the perpendicular
    /// bisector itself, which models the *certain*-sequence baselines.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `c < 1` or `c` is not finite.
    #[inline]
    pub fn classify(p: Point, a: Point, b: Point, c: f64) -> PairRegion {
        debug_assert!(
            c.is_finite() && c >= 1.0,
            "uncertainty constant must be ≥ 1"
        );
        let da2 = p.distance_squared(a);
        let db2 = p.distance_squared(b);
        let c2 = c * c;
        // ratio < 1/C  ⟺  da²·C² < db²     (firmly nearer to a)
        if da2 * c2 < db2 {
            PairRegion::NearFirst
        // ratio > C    ⟺  da² > C²·db²     (firmly nearer to b)
        } else if da2 > c2 * db2 {
            PairRegion::NearSecond
        } else {
            PairRegion::Uncertain
        }
    }

    /// The classification seen when the pair is enumerated in the opposite
    /// order (`NearFirst` ↔ `NearSecond`).
    #[inline]
    pub fn flipped(self) -> PairRegion {
        match self {
            PairRegion::NearFirst => PairRegion::NearSecond,
            PairRegion::Uncertain => PairRegion::Uncertain,
            PairRegion::NearSecond => PairRegion::NearFirst,
        }
    }

    /// The signature-vector component for this region (Definition 6):
    /// `+1`, `0`, or `-1`.
    #[inline]
    pub fn signature_component(self) -> i8 {
        match self {
            PairRegion::NearFirst => 1,
            PairRegion::Uncertain => 0,
            PairRegion::NearSecond => -1,
        }
    }
}

/// The Apollonius circle `{ p : d(p,a)/d(p,b) = k }` for `k > 0`, `k ≠ 1`.
///
/// Centre `(a − k²·b) / (1 − k²)` and radius `k·|ab| / |1 − k²|`. For
/// `k < 1` the circle encloses `a`; for `k > 1` it encloses `b`. Returns
/// `None` when `k == 1` (the locus is the perpendicular bisector, not a
/// circle) or when the inputs are degenerate (`a == b`, or non-positive /
/// non-finite `k`).
///
/// ```
/// use wsn_geometry::{apollonius_circle, Point};
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(10.0, 0.0);
/// let circle = apollonius_circle(a, b, 0.5).unwrap();
/// // Every point on the circle is twice as close to `a` as to `b`.
/// let p = circle.point_at(1.0);
/// assert!((p.distance(a) / p.distance(b) - 0.5).abs() < 1e-9);
/// assert!(apollonius_circle(a, b, 1.0).is_none()); // bisector, not a circle
/// ```
pub fn apollonius_circle(a: Point, b: Point, k: f64) -> Option<Circle> {
    if !k.is_finite() || k <= 0.0 {
        return None;
    }
    let ab = b - a;
    let d = ab.norm();
    if d <= f64::EPSILON {
        return None;
    }
    let k2 = k * k;
    let denom = 1.0 - k2;
    if denom.abs() <= f64::EPSILON {
        return None;
    }
    let cx = (a.x - k2 * b.x) / denom;
    let cy = (a.y - k2 * b.y) / denom;
    let radius = k * d / denom.abs();
    Some(Circle::new(Point::new(cx, cy), radius))
}

/// Both Apollonius circles bounding a pair's uncertain area (Definition 2).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UncertainBoundary {
    /// First node of the pair.
    pub a: Point,
    /// Second node of the pair.
    pub b: Point,
    /// Uncertainty constant `C > 1`.
    pub c: f64,
    /// Circle `d(p,a)/d(p,b) = 1/C`; its interior is the `NearFirst` region.
    pub near_first: Circle,
    /// Circle `d(p,a)/d(p,b) = C`; its interior is the `NearSecond` region.
    pub near_second: Circle,
}

impl UncertainBoundary {
    /// Builds the boundary for pair `(a, b)` and constant `c`.
    ///
    /// Returns `None` for `c ≤ 1` (no band — use
    /// [`PairRegion::classify`] with `c = 1` for the bisector-only model) or
    /// coincident nodes.
    pub fn new(a: Point, b: Point, c: f64) -> Option<Self> {
        if !c.is_finite() || c <= 1.0 {
            return None;
        }
        let near_first = apollonius_circle(a, b, 1.0 / c)?;
        let near_second = apollonius_circle(a, b, c)?;
        Some(Self {
            a,
            b,
            c,
            near_first,
            near_second,
        })
    }

    /// Classifies `p` (must agree with [`PairRegion::classify`]).
    pub fn classify(&self, p: Point) -> PairRegion {
        PairRegion::classify(p, self.a, self.b, self.c)
    }

    /// Width of the uncertain band along the segment `a..b`, in metres:
    /// the gap between the two circles on the line through the nodes.
    ///
    /// This is the quantity that grows with `C` and shrinks as the pair
    /// moves apart *relative to their separation* (Fig. 3's transition from
    /// thin bands to bands swallowing all certain faces).
    pub fn band_width_on_axis(&self) -> f64 {
        let d = self.a.distance(self.b);
        // On the axis, the NearFirst circle crosses at distance d/(C+1)·C… —
        // derive from the ratio directly: points x ∈ [0, d] from a, ratio
        // x/(d-x) = 1/C  ⟹  x = d/(C+1); ratio = C ⟹ x = dC/(C+1).
        let x_lo = d / (self.c + 1.0);
        let x_hi = d * self.c / (self.c + 1.0);
        x_hi - x_lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper eq. (4): nodes at (±d, 0) give a boundary circle with centre
    /// `((C²+1)/(C²−1)·d, 0)` (on one side) and radius `2Cd/(C²−1)`.
    #[test]
    fn matches_paper_symmetric_form() {
        let d = 7.5;
        let c = 1.4;
        let a = Point::new(d, 0.0);
        let b = Point::new(-d, 0.0);
        // Circle of points with d(p,a)/d(p,b) = C: encloses b (negative x side).
        let circ = apollonius_circle(a, b, c).unwrap();
        let c2 = c * c;
        let expect_cx = -(c2 + 1.0) / (c2 - 1.0) * d;
        let expect_r = 2.0 * c * d / (c2 - 1.0);
        assert!(
            (circ.center.x - expect_cx).abs() < 1e-9,
            "{} vs {expect_cx}",
            circ.center.x
        );
        assert!(circ.center.y.abs() < 1e-12);
        assert!((circ.radius - expect_r).abs() < 1e-9);
        // And the mirror circle for ratio 1/C encloses a, symmetrically.
        let mirror = apollonius_circle(a, b, 1.0 / c).unwrap();
        assert!((mirror.center.x + expect_cx).abs() < 1e-9);
        assert!((mirror.radius - expect_r).abs() < 1e-9);
    }

    #[test]
    fn circle_points_have_the_claimed_ratio() {
        let a = Point::new(2.0, 3.0);
        let b = Point::new(-4.0, 1.0);
        for &k in &[0.3, 0.8, 1.7, 4.0] {
            let circ = apollonius_circle(a, b, k).unwrap();
            for i in 0..16 {
                let theta = i as f64 * std::f64::consts::PI / 8.0;
                let p = circ.point_at(theta);
                let ratio = p.distance(a) / p.distance(b);
                assert!(
                    (ratio - k).abs() < 1e-6,
                    "k={k} theta={theta}: ratio {ratio}"
                );
            }
        }
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(5.0, -2.0);
        assert!(apollonius_circle(a, b, 1.0).is_none());
        assert!(apollonius_circle(a, a, 2.0).is_none());
        assert!(apollonius_circle(a, b, 0.0).is_none());
        assert!(apollonius_circle(a, b, -3.0).is_none());
        assert!(apollonius_circle(a, b, f64::NAN).is_none());
        assert!(UncertainBoundary::new(a, b, 1.0).is_none());
        assert!(UncertainBoundary::new(a, a, 2.0).is_none());
    }

    #[test]
    fn classify_three_regions_on_axis() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let c = 1.5;
        // Right next to a: firmly near a.
        assert_eq!(
            PairRegion::classify(Point::new(1.0, 0.0), a, b, c),
            PairRegion::NearFirst
        );
        // Midpoint: ratio 1 ∈ [1/C, C] — uncertain.
        assert_eq!(
            PairRegion::classify(Point::new(5.0, 0.0), a, b, c),
            PairRegion::Uncertain
        );
        // Right next to b: firmly near b.
        assert_eq!(
            PairRegion::classify(Point::new(9.0, 0.0), a, b, c),
            PairRegion::NearSecond
        );
        // The band edges: x/(10−x) = 1/1.5 ⟹ x = 4, and x = 6 on the other side.
        assert_eq!(
            PairRegion::classify(Point::new(3.99, 0.0), a, b, c),
            PairRegion::NearFirst
        );
        assert_eq!(
            PairRegion::classify(Point::new(4.01, 0.0), a, b, c),
            PairRegion::Uncertain
        );
        assert_eq!(
            PairRegion::classify(Point::new(5.99, 0.0), a, b, c),
            PairRegion::Uncertain
        );
        assert_eq!(
            PairRegion::classify(Point::new(6.01, 0.0), a, b, c),
            PairRegion::NearSecond
        );
    }

    #[test]
    fn classify_c1_degenerates_to_bisector() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 0.0);
        assert_eq!(
            PairRegion::classify(Point::new(1.9, 7.0), a, b, 1.0),
            PairRegion::NearFirst
        );
        assert_eq!(
            PairRegion::classify(Point::new(2.0, -3.0), a, b, 1.0),
            PairRegion::Uncertain
        );
        assert_eq!(
            PairRegion::classify(Point::new(2.1, 7.0), a, b, 1.0),
            PairRegion::NearSecond
        );
    }

    #[test]
    fn classify_agrees_with_boundary_circles() {
        let a = Point::new(-3.0, 2.0);
        let b = Point::new(6.0, -1.0);
        let c = 1.25;
        let ub = UncertainBoundary::new(a, b, c).unwrap();
        // Sample a lattice of points; circle membership must match classify.
        for ix in -20..=20 {
            for iy in -20..=20 {
                let p = Point::new(ix as f64 * 0.7, iy as f64 * 0.7);
                let expected = if ub.near_first.contains(p) {
                    PairRegion::NearFirst
                } else if ub.near_second.contains(p) {
                    PairRegion::NearSecond
                } else {
                    PairRegion::Uncertain
                };
                assert_eq!(ub.classify(p), expected, "at {p}");
            }
        }
    }

    #[test]
    fn flipped_is_involutive_and_consistent() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(5.0, 5.0);
        let c = 1.3;
        for ix in -10..=10 {
            for iy in -10..=10 {
                let p = Point::new(ix as f64, iy as f64);
                let fwd = PairRegion::classify(p, a, b, c);
                let rev = PairRegion::classify(p, b, a, c);
                assert_eq!(fwd.flipped(), rev);
                assert_eq!(fwd.flipped().flipped(), fwd);
            }
        }
    }

    #[test]
    fn signature_components() {
        assert_eq!(PairRegion::NearFirst.signature_component(), 1);
        assert_eq!(PairRegion::Uncertain.signature_component(), 0);
        assert_eq!(PairRegion::NearSecond.signature_component(), -1);
    }

    #[test]
    fn band_width_grows_with_c() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let narrow = UncertainBoundary::new(a, b, 1.1)
            .unwrap()
            .band_width_on_axis();
        let wide = UncertainBoundary::new(a, b, 2.0)
            .unwrap()
            .band_width_on_axis();
        assert!(narrow < wide);
        // C = 1.5 on a 10 m pair: edges at 4 m and 6 m ⟹ 2 m band.
        let w = UncertainBoundary::new(a, b, 1.5)
            .unwrap()
            .band_width_on_axis();
        assert!((w - 2.0).abs() < 1e-9);
    }
}
