//! Planar geometry substrate for the FTTT target-tracking suite.
//!
//! This crate provides the geometric primitives the paper's construction
//! rests on:
//!
//! * [`Point`] / [`Vector`] — double-precision planar points and vectors.
//! * [`Circle`] — circles with containment predicates.
//! * [`apollonius`] — **circles of Apollonius**: for a node pair `(a, b)` and
//!   a distance-ratio constant `C > 1` (derived from the radio model, see the
//!   `wsn-signal` crate), the locus `d(p,a)/d(p,b) = C` is a circle, and the
//!   region `1/C ≤ d(p,a)/d(p,b) ≤ C` between the two symmetric circles is
//!   the pair's *uncertain area* (paper Definition 1/2, eq. 4).
//! * [`Grid`] — the approximate square-grid division of the monitored field
//!   used to rasterize faces (paper Section 4.3, Fig. 6).
//! * [`Rect`] / [`Segment`] — axis-aligned boxes and line segments used by
//!   deployments and mobility traces.
//!
//! Everything here is pure: no randomness, no I/O, no global state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aabb;
pub mod apollonius;
pub mod circle;
pub mod grid;
pub mod point;
pub mod segment;

pub use aabb::Rect;
pub use apollonius::{apollonius_circle, PairRegion, UncertainBoundary};
pub use circle::Circle;
pub use grid::{CellIndex, Grid};
pub use point::{Point, Vector};
pub use segment::Segment;
