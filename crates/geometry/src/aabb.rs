//! Axis-aligned rectangles (the monitored field, deployment regions).

use crate::point::Point;

/// An axis-aligned rectangle `[min.x, max.x] × [min.y, max.y]`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners.
    ///
    /// # Panics
    ///
    /// Panics if the corners are not ordered (`min.x > max.x` etc.) or not
    /// finite.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(
            min.is_finite() && max.is_finite(),
            "rect corners must be finite"
        );
        assert!(
            min.x <= max.x && min.y <= max.y,
            "rect corners must be ordered: {min} !<= {max}"
        );
        Self { min, max }
    }

    /// The paper's square field: `[0, side] × [0, side]` (Table 1 uses
    /// `side = 100` m).
    pub fn square(side: f64) -> Self {
        Rect::new(Point::ORIGIN, Point::new(side, side))
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Closed containment test.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps `p` into the rectangle (used to keep mobility traces in-field).
    #[inline]
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::new(
            Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        )
    }

    /// Smallest rectangle containing both `self` and the point `p`.
    pub fn union_point(&self, p: Point) -> Rect {
        Rect::new(
            Point::new(self.min.x.min(p.x), self.min.y.min(p.y)),
            Point::new(self.max.x.max(p.x), self.max.y.max(p.y)),
        )
    }

    /// A degenerate rectangle containing only `p`.
    pub fn point(p: Point) -> Rect {
        Rect::new(p, p)
    }

    /// Shortest distance between the two (closed) rectangles; zero if they
    /// touch or overlap.
    pub fn distance_to(&self, other: &Rect) -> f64 {
        let dx = (self.min.x - other.max.x)
            .max(other.min.x - self.max.x)
            .max(0.0);
        let dy = (self.min.y - other.max.y)
            .max(other.min.y - self.max.y)
            .max(0.0);
        (dx * dx + dy * dy).sqrt()
    }

    /// Grows the rectangle by `margin` on every side (negative shrinks).
    ///
    /// # Panics
    ///
    /// Panics if shrinking past a degenerate rectangle.
    pub fn inflate(&self, margin: f64) -> Rect {
        Rect::new(
            Point::new(self.min.x - margin, self.min.y - margin),
            Point::new(self.max.x + margin, self.max.y + margin),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_field_dimensions() {
        let f = Rect::square(100.0);
        assert_eq!(f.width(), 100.0);
        assert_eq!(f.height(), 100.0);
        assert_eq!(f.area(), 10_000.0);
        assert_eq!(f.center(), Point::new(50.0, 50.0));
    }

    #[test]
    fn containment_is_closed() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 3.0));
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(2.0, 3.0)));
        assert!(r.contains(Point::new(1.0, 1.5)));
        assert!(!r.contains(Point::new(-0.001, 1.0)));
        assert!(!r.contains(Point::new(1.0, 3.001)));
    }

    #[test]
    fn clamp_projects_outside_points() {
        let r = Rect::square(10.0);
        assert_eq!(r.clamp(Point::new(-5.0, 5.0)), Point::new(0.0, 5.0));
        assert_eq!(r.clamp(Point::new(12.0, 15.0)), Point::new(10.0, 10.0));
        let inside = Point::new(3.0, 4.0);
        assert_eq!(r.clamp(inside), inside);
    }

    #[test]
    fn inflate_grows_symmetrically() {
        let r = Rect::square(10.0).inflate(2.0);
        assert_eq!(r.min, Point::new(-2.0, -2.0));
        assert_eq!(r.max, Point::new(12.0, 12.0));
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn unordered_corners_rejected() {
        let _ = Rect::new(Point::new(1.0, 0.0), Point::new(0.0, 1.0));
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let b = Rect::new(Point::new(2.0, -1.0), Point::new(3.0, 0.5));
        let u = a.union(&b);
        assert_eq!(u.min, Point::new(0.0, -1.0));
        assert_eq!(u.max, Point::new(3.0, 1.0));
        let up = a.union_point(Point::new(-2.0, 5.0));
        assert_eq!(up.min, Point::new(-2.0, 0.0));
        assert_eq!(up.max, Point::new(1.0, 5.0));
    }

    #[test]
    fn rect_distance_cases() {
        let a = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        // Overlapping / touching: zero.
        assert_eq!(a.distance_to(&a), 0.0);
        let touching = Rect::new(Point::new(1.0, 0.0), Point::new(2.0, 1.0));
        assert_eq!(a.distance_to(&touching), 0.0);
        // Separated horizontally.
        let right = Rect::new(Point::new(4.0, 0.0), Point::new(5.0, 1.0));
        assert_eq!(a.distance_to(&right), 3.0);
        assert_eq!(right.distance_to(&a), 3.0);
        // Diagonal separation: Euclidean corner distance.
        let diag = Rect::new(Point::new(4.0, 5.0), Point::new(6.0, 7.0));
        assert_eq!(a.distance_to(&diag), 5.0);
    }
}
