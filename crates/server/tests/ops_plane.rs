//! Failure-path tests for the live ops plane: a bind conflict must be a
//! named error that leaves the serve loop running, hostile HTTP must be
//! answered 400 and dropped without touching server state, session
//! inspection must distinguish active/retired/unknown with the epochs in
//! the body, and a deliberately stalled shard must flip `/healthz` to
//! degraded, count a watchdog stall, and leave a flight dump behind.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use wsn_network::GroupSampling;
use wsn_server::{Connection, FlightConfig, OpsError, ReadingRound, Server, ServerConfig};
use wsn_signal::Rss;

/// One HTTP/1.1 GET against the ops plane; returns (status, whole body).
fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect ops");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    read_response(stream)
}

/// Sends raw bytes and reads whatever comes back (empty = dropped).
fn http_raw(addr: &str, bytes: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect ops");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let _ = stream.write_all(bytes);
    read_response(stream)
}

fn read_response(mut stream: TcpStream) -> (u16, String) {
    let mut text = String::new();
    let _ = stream.read_to_string(&mut text);
    let status = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or(0);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fttt-ops-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn one_round(t: f64) -> ReadingRound {
    let mut group = GroupSampling::empty(8, 3);
    for instant in 0..3 {
        for node in 0..8 {
            let dbm = -42.0 - 1.5 * node as f64 - 0.25 * instant as f64;
            group.set(instant, node, Some(Rss::new(dbm)));
        }
    }
    ReadingRound { t, group }
}

#[test]
fn ops_bind_conflict_is_named_and_the_serve_loop_lives() {
    let squatter = TcpListener::bind("127.0.0.1:0").unwrap();
    let taken = squatter.local_addr().unwrap().to_string();
    let server = Server::bind("127.0.0.1:0", ServerConfig::fast()).unwrap();
    let Err(err) = server.serve_ops(&taken) else {
        panic!("binding an occupied port must fail");
    };
    let OpsError::Bind { ref addr, .. } = err;
    assert_eq!(*addr, taken);
    let msg = err.to_string();
    assert!(msg.contains("cannot bind ops listener"), "{msg}");
    assert!(msg.contains(&taken), "{msg}");
    // The tracking serve loop is unaffected: a full session lifecycle
    // still works, and a second serve_ops on a free port succeeds.
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let info = conn.open_session(7, false).unwrap();
    conn.push_rounds(info.session, vec![one_round(0.0)])
        .unwrap();
    let (rounds, _) = conn.close_session(info.session).unwrap();
    assert_eq!(rounds, 1);
    let ops = server.serve_ops("127.0.0.1:0").unwrap();
    let (status, _) = http_get(&ops.local_addr().to_string(), "/healthz");
    assert_eq!(status, 200);
}

#[test]
fn hostile_http_gets_400_and_the_server_is_unharmed() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::fast()).unwrap();
    let ops = server.serve_ops("127.0.0.1:0").unwrap();
    let addr = ops.local_addr().to_string();

    // Binary garbage (not UTF-8).
    let (status, body) = http_raw(&addr, b"\x16\x03\x01\xff junk\r\n\r\n");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("bad request"), "{body}");
    // An oversized head: more than the 8 KiB cap with no terminator.
    let big = vec![b'A'; wsn_server::ops::MAX_REQUEST_BYTES + 1024];
    let (status, body) = http_raw(&addr, &big);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("exceeds"), "{body}");
    // Wrong method.
    let (status, body) = http_raw(&addr, b"POST /metrics HTTP/1.1\r\n\r\n");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("only GET"), "{body}");
    // Non-numeric session id and an unknown path.
    let (status, body) = http_get(&addr, "/sessions/abc");
    assert_eq!(status, 400, "{body}");
    let (status, body) = http_get(&addr, "/nope");
    assert_eq!(status, 404, "{body}");

    // None of that touched server state, and the plane still answers.
    assert_eq!(server.session_count(), 0);
    let (status, _) = http_get(&addr, "/healthz");
    assert_eq!(status, 200);
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let info = conn.open_session(1, false).unwrap();
    let (rounds, _) = conn.close_session(info.session).unwrap();
    assert_eq!(rounds, 0);
}

#[test]
fn session_endpoint_distinguishes_active_retired_and_unknown() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::fast()).unwrap();
    let ops = server.serve_ops("127.0.0.1:0").unwrap();
    let addr = ops.local_addr().to_string();
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let info = conn.open_session(3, false).unwrap();
    conn.push_rounds(info.session, vec![one_round(0.0)])
        .unwrap();

    // Active: status, rounds and the last estimate are reported.
    let (status, body) = http_get(&addr, &format!("/sessions/{}", info.session));
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"active\""), "{body}");
    assert!(body.contains("\"rounds\":1"), "{body}");
    assert!(body.contains("\"last\":{"), "{body}");

    // Unknown id: 404 with the current epoch in the body.
    let (status, body) = http_get(&addr, "/sessions/999999");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("\"status\":\"unknown\""), "{body}");
    assert!(
        body.contains(&format!("\"current_epoch\":{}", server.epoch())),
        "{body}"
    );

    // Churn the map: the epoch moves and the session is now retired —
    // still 404, but with both epochs so the caller can see why.
    let opened = info.epoch;
    conn.churn(0, true).unwrap();
    assert!(server.epoch() > opened);
    let (status, body) = http_get(&addr, &format!("/sessions/{}", info.session));
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("\"status\":\"retired\""), "{body}");
    assert!(
        body.contains(&format!("\"opened_epoch\":{opened}")),
        "{body}"
    );
    assert!(
        body.contains(&format!("\"current_epoch\":{}", server.epoch())),
        "{body}"
    );
}

/// A worker pinned by `ingest_stall` longer than the watchdog threshold:
/// `/healthz` must flip to 503/degraded naming the stalled shard, the
/// stall counter must move, a flight dump must land in the configured
/// dir, and once the job finishes health must recover to 200.
#[test]
fn stalled_shard_degrades_healthz_and_dumps_flight_data() {
    let dir = scratch("stall");
    let mut config = ServerConfig::fast();
    config.shards = 2;
    config.ingest_stall = Some(Duration::from_millis(600));
    config.watchdog_interval = Duration::from_millis(25);
    config.watchdog_stall = Duration::from_millis(100);
    config.flight = Some(FlightConfig::new(&dir));
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let ops = server.serve_ops("127.0.0.1:0").unwrap();
    let addr = ops.local_addr().to_string();

    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let info = conn.open_session(1, false).unwrap();
    // Push from a helper thread: the reply only comes back after the
    // stalled worker wakes, and we need to poll /healthz meanwhile.
    let session = info.session;
    let pusher = std::thread::spawn(move || {
        conn.push_rounds(session, vec![one_round(0.0)]).unwrap();
        conn
    });

    let deadline = Instant::now() + Duration::from_secs(5);
    let mut saw_degraded = false;
    while Instant::now() < deadline {
        let (status, body) = http_get(&addr, "/healthz");
        if status == 503 {
            assert!(body.contains("\"status\":\"degraded\""), "{body}");
            assert!(body.contains("\"stalled\":true"), "{body}");
            saw_degraded = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(saw_degraded, "watchdog never degraded /healthz");
    let stalls = server.metrics_snapshot().counters["fttt.server.watchdog.stalls"];
    assert!(stalls >= 1, "stall counter must move, got {stalls}");

    let mut conn = pusher.join().unwrap();
    let (rounds, _) = conn.close_session(session).unwrap();
    assert_eq!(rounds, 1);

    // The stall produced a bounded flight dump: journal + metrics pair.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut dumped = Vec::new();
    while Instant::now() < deadline {
        dumped = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        if dumped.iter().any(|n| n.ends_with(".metrics.json")) {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        dumped.iter().any(|n| n.starts_with("flight-")
            && n.contains("-stall")
            && n.ends_with(".metrics.json")),
        "no flight metrics dump in {dumped:?}"
    );
    assert!(
        dumped.iter().any(|n| n.ends_with(".trace.jsonl")),
        "no flight trace dump in {dumped:?}"
    );
    assert!(
        !dumped.iter().any(|n| n.ends_with(".tmp")),
        "atomic write left a tmp file behind: {dumped:?}"
    );

    // The worker woke up and drained: health recovers on its own.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut recovered = false;
    while Instant::now() < deadline {
        if http_get(&addr, "/healthz").0 == 200 {
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(recovered, "health never recovered after the stall cleared");
    drop(ops);
    let _ = std::fs::remove_dir_all(&dir);
}
