//! Property tests for the wire protocol: every frame type round-trips
//! bit-exactly, and adversarial byte streams (truncations, hostile length
//! prefixes, wrong versions, trailing garbage) decode to typed errors —
//! never panics.

use proptest::prelude::*;
use wsn_network::GroupSampling;
use wsn_server::wire::{flags, WireError};
use wsn_server::{read_frame, ErrorCode, Frame, ReadingRound, RecvError, RoundResult};
use wsn_signal::Rss;

fn arb_u64() -> impl Strategy<Value = u64> {
    (0u64..u64::MAX, 0u8..2).prop_map(|(v, hi)| if hi == 1 { u64::MAX - v % 7 } else { v })
}

/// Full-bit-pattern f64s: normals, subnormals, infinities and NaNs all
/// appear — the wire carries bit patterns, so all must survive.
fn arb_f64_bits() -> impl Strategy<Value = f64> {
    arb_u64().prop_map(f64::from_bits)
}

fn arb_bool() -> impl Strategy<Value = bool> {
    (0u8..2).prop_map(|b| b == 1)
}

fn arb_group() -> impl Strategy<Value = GroupSampling> {
    (1usize..6, 1usize..5, arb_u64()).prop_map(|(nodes, instants, mask)| {
        let mut g = GroupSampling::empty(nodes, instants);
        for instant in 0..instants {
            for node in 0..nodes {
                let i = instant * nodes + node;
                if mask >> (i % 64) & 1 == 1 {
                    // A deterministic, full-precision dBm value per cell.
                    let dbm = -30.0 - (i as f64) * 7.25 - (mask % 97) as f64 * 0.125;
                    g.set(instant, node, Some(Rss::new(dbm)));
                }
            }
        }
        g
    })
}

fn arb_round() -> impl Strategy<Value = ReadingRound> {
    (arb_f64_bits(), arb_group()).prop_map(|(t, group)| ReadingRound { t, group })
}

fn arb_result() -> impl Strategy<Value = RoundResult> {
    (
        (arb_u64(), arb_f64_bits(), arb_f64_bits(), arb_f64_bits()),
        (0u8..3, 0u8..3, 0u8..5, 0u8..64),
        (
            arb_u64(),
            prop_oneof![Just(None), arb_f64_bits().prop_map(Some)],
        ),
        (arb_f64_bits(), arb_f64_bits()),
        (0u32..u32::MAX, 0u32..u32::MAX),
    )
        .prop_map(
            |(
                (round, t, x, y),
                (status_before, status, cause, flag_bits),
                (face, similarity),
                (missing_fraction, zero_fraction),
                (samples, k_after),
            )| RoundResult {
                round,
                t,
                x,
                y,
                status_before,
                status,
                cause,
                face,
                similarity,
                missing_fraction,
                zero_fraction,
                samples,
                k_after,
                flags: flag_bits,
            },
        )
}

fn arb_detail() -> impl Strategy<Value = String> {
    proptest::collection::vec(32u8..127, 0..40)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (arb_u64(), arb_bool()).prop_map(|(client_tag, extended)| Frame::Open {
            client_tag,
            extended
        }),
        (arb_u64(), proptest::collection::vec(arb_round(), 0..4))
            .prop_map(|(session, rounds)| Frame::Push { session, rounds }),
        arb_u64().prop_map(|session| Frame::Close { session }),
        (0u32..u32::MAX, arb_bool()).prop_map(|(node, death)| Frame::Churn { node, death }),
        Just(Frame::Shutdown),
        (arb_u64(), arb_u64(), arb_u64(), arb_u64()).prop_map(
            |(client_tag, session, epoch, map_digest)| Frame::OpenAck {
                client_tag,
                session,
                epoch,
                map_digest
            }
        ),
        (
            arb_u64(),
            proptest::collection::vec(arb_result(), 0..4),
            arb_u64()
        )
            .prop_map(|(session, results, digest)| Frame::Rounds {
                session,
                results,
                digest
            }),
        (arb_u64(), arb_u64(), arb_u64()).prop_map(|(session, rounds, digest)| Frame::CloseAck {
            session,
            rounds,
            digest,
        }),
        (arb_u64(), arb_u64())
            .prop_map(|(epoch, map_digest)| Frame::ChurnAck { epoch, map_digest }),
        Just(Frame::ShutdownAck),
        (
            (0u16..u16::MAX).prop_map(ErrorCode::from_u16),
            arb_u64(),
            arb_detail()
        )
            .prop_map(|(code, context, detail)| Frame::Error {
                code,
                context,
                detail,
            }),
    ]
}

/// NaN-tolerant frame equality: the wire moves f64 bit patterns, so two
/// frames are equal when their encodings are — which `PartialEq` on `f64`
/// would deny for NaN payloads.
fn assert_wire_eq(a: &Frame, b: &Frame) {
    assert_eq!(a.encode(), b.encode(), "{a:?} vs {b:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity for every frame type, including
    /// non-finite floats (bit patterns travel, not values).
    #[test]
    fn every_frame_round_trips(frame in arb_frame()) {
        let bytes = frame.encode();
        // Header invariant: the length prefix counts the payload exactly.
        let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        prop_assert_eq!(len, bytes.len() - 4);
        let decoded = Frame::decode(&bytes[4..]).expect("own encoding must decode");
        assert_wire_eq(&decoded, &frame);
    }

    /// Every truncation of a valid payload is a typed error, not a panic.
    #[test]
    fn truncations_never_panic(frame in arb_frame(), cut in 0usize..200) {
        let bytes = frame.encode();
        let payload = &bytes[4..];
        if cut < payload.len() {
            // A prefix may parse as a smaller valid frame only if it is
            // byte-identical under re-encoding; otherwise it must error.
            if let Ok(f) = Frame::decode(&payload[..cut]) {
                prop_assert_eq!(&f.encode()[4..], &payload[..cut]);
            }
        }
    }

    /// Arbitrary byte soup decodes to a typed error or to a frame that
    /// re-encodes to the same bytes — never a panic.
    #[test]
    fn random_bytes_never_panic(payload in proptest::collection::vec(0u8..=255, 0..300)) {
        if let Ok(f) = Frame::decode(&payload) {
            prop_assert_eq!(&f.encode()[4..], &payload[..]);
        }
    }

    /// The version byte is checked before anything else. Both accepted
    /// versions are excluded: v2 (traced) reinterprets the following
    /// bytes as kind + trace id, which is exercised by the wire unit
    /// tests instead.
    #[test]
    fn wrong_version_is_rejected(frame in arb_frame(), v in 0u8..=255) {
        prop_assume!(v != wsn_server::WIRE_VERSION && v != wsn_server::WIRE_VERSION_TRACED);
        let mut bytes = frame.encode();
        bytes[4] = v;
        prop_assert_eq!(Frame::decode(&bytes[4..]), Err(WireError::BadVersion(v)));
    }

    /// Trailing garbage after a complete frame is malformed.
    #[test]
    fn trailing_bytes_are_rejected(frame in arb_frame(), extra in 1usize..8) {
        let mut bytes = frame.encode()[4..].to_vec();
        bytes.extend(std::iter::repeat_n(0xAA, extra));
        prop_assert!(Frame::decode(&bytes).is_err());
    }
}

#[test]
fn oversized_length_prefix_fails_before_allocating() {
    for claim in [u32::MAX, 1 << 30, (1 << 20) + 1] {
        let mut stream = Vec::new();
        stream.extend_from_slice(&claim.to_le_bytes());
        stream.extend_from_slice(&[1u8; 16]);
        let mut cursor = std::io::Cursor::new(stream);
        match read_frame(&mut cursor, 1 << 20) {
            Err(RecvError::Protocol(WireError::Oversize { len, max })) => {
                assert_eq!(len, claim);
                assert_eq!(max, 1 << 20);
            }
            other => panic!("claim {claim}: expected oversize, got {other:?}"),
        }
    }
}

#[test]
fn eof_between_frames_is_closed_mid_frame_is_truncated() {
    let bytes = Frame::Shutdown.encode();
    // Clean boundary → Closed.
    let mut empty = std::io::Cursor::new(Vec::<u8>::new());
    assert!(matches!(
        read_frame(&mut empty, 1024),
        Err(RecvError::Closed)
    ));
    // Inside the header or payload → Truncated.
    for cut in 1..bytes.len() {
        let mut cursor = std::io::Cursor::new(bytes[..cut].to_vec());
        assert!(
            matches!(
                read_frame(&mut cursor, 1024),
                Err(RecvError::Protocol(WireError::Truncated))
            ),
            "cut at {cut}"
        );
    }
}

#[test]
fn push_rejects_degenerate_grouping_dimensions() {
    // Hand-build a push whose grouping claims 0 × 5 cells: the decoder
    // must refuse rather than construct (GroupSampling::empty would
    // panic on zero dims — the decoder guards before it).
    let mut payload = vec![wsn_server::WIRE_VERSION, 0x02];
    payload.extend_from_slice(&7u64.to_le_bytes()); // session
    payload.extend_from_slice(&1u16.to_le_bytes()); // one round
    payload.extend_from_slice(&1.0f64.to_bits().to_le_bytes()); // t
    payload.extend_from_slice(&0u16.to_le_bytes()); // nodes = 0
    payload.extend_from_slice(&5u16.to_le_bytes()); // instants = 5
    assert_eq!(
        Frame::decode(&payload),
        Err(WireError::BadValue("empty grouping dimensions"))
    );
}

#[test]
fn round_result_survives_engine_round_trip() {
    // RoundResult ↔ SessionRound is lossless for every status/cause/flag
    // combination the engine can emit.
    use fttt::session::{RoundTrace, SessionRound, TrackStatus};
    use fttt::FaceId;
    use wsn_geometry::Point;
    for status in [
        TrackStatus::Tracking,
        TrackStatus::Degraded,
        TrackStatus::Lost,
    ] {
        for cause in ["healthy", "blackout", "stranded", "starved", "teleported"] {
            for face in [None, Some(FaceId(0)), Some(FaceId(41))] {
                let round = SessionRound {
                    t: 12.5,
                    estimate: Point::new(3.25, -8.75),
                    status,
                    samples: 5,
                    face,
                    similarity: face.map(|_| 0.625),
                    missing_fraction: 0.25,
                    reacquired: cause == "stranded",
                    held: status == TrackStatus::Lost,
                    trace: RoundTrace {
                        round: 9,
                        status_before: status,
                        cause,
                        blackout: cause == "blackout",
                        stranded: cause == "stranded",
                        starved: cause == "starved",
                        teleported: cause == "teleported",
                        zero_fraction: 0.125,
                        k_after: 7,
                    },
                };
                let wire = RoundResult::from_round(&round);
                assert_eq!(wire.to_session_round().unwrap(), round);
                // Spot-check the flag encoding is the documented bits.
                assert_eq!(wire.flags & flags::HELD != 0, round.held);
                assert_eq!(wire.flags & flags::BLACKOUT != 0, round.trace.blackout);
            }
        }
    }
}
