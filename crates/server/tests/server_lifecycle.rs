//! Live-server tests over loopback TCP: backpressure sheds, epoch
//! invalidation, protocol abuse, and the no-leaked-slots contract.

use std::io::Write;
use std::time::{Duration, Instant};
use wsn_network::GroupSampling;
use wsn_server::{ClientError, Connection, ErrorCode, Frame, ReadingRound, Server, ServerConfig};
use wsn_signal::Rss;

fn reading_round(t: f64, nodes: usize) -> ReadingRound {
    let mut group = GroupSampling::empty(nodes, 3);
    for instant in 0..3 {
        for node in 0..nodes {
            let dbm = -40.0 - 2.0 * node as f64 - 0.5 * instant as f64;
            group.set(instant, node, Some(Rss::new(dbm)));
        }
    }
    ReadingRound { t, group }
}

fn wait_for_session_count(server: &Server, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.session_count() != want {
        assert!(
            Instant::now() < deadline,
            "session count stuck at {} (want {want})",
            server.session_count()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn open_push_close_round_trip() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::fast()).unwrap();
    let nodes = 8;
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let info = conn.open_session(99, false).unwrap();
    assert_eq!(info.epoch, server.epoch());
    assert_eq!(info.map_digest, server.map_digest());
    assert_eq!(server.session_count(), 1);

    let (results, digest) = conn
        .push_rounds(
            info.session,
            vec![reading_round(0.0, nodes), reading_round(1.0, nodes)],
        )
        .unwrap();
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].round, 0);
    assert_eq!(results[1].round, 1);
    let (rounds, final_digest) = conn.close_session(info.session).unwrap();
    assert_eq!(rounds, 2);
    assert_eq!(final_digest, digest);
    wait_for_session_count(&server, 0);

    let metrics = server.metrics_snapshot();
    assert_eq!(metrics.counters["fttt.server.sessions_opened"], 1);
    assert_eq!(metrics.counters["fttt.server.rounds"], 2);
}

#[test]
fn unknown_session_is_a_typed_error() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::fast()).unwrap();
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    match conn.push_rounds(424242, vec![reading_round(0.0, 8)]) {
        Err(ClientError::Server { code, context, .. }) => {
            assert_eq!(code, ErrorCode::UnknownSession);
            assert_eq!(context, 424242);
        }
        other => panic!("expected UnknownSession, got {other:?}"),
    }
}

#[test]
fn churn_invalidates_stale_sessions_and_frees_their_slots() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::fast()).unwrap();
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let stale = conn.open_session(1, false).unwrap();

    let (epoch, map_digest) = conn.churn(3, true).unwrap();
    assert!(epoch > stale.epoch);
    assert_eq!(server.epoch(), epoch);
    assert_eq!(server.map_digest(), map_digest);

    // The pre-churn session is rejected and its slot freed.
    match conn.push_rounds(stale.session, vec![reading_round(0.0, 8)]) {
        Err(ClientError::Server { code, context, .. }) => {
            assert_eq!(code, ErrorCode::StaleEpoch);
            assert_eq!(context, stale.session);
        }
        other => panic!("expected StaleEpoch, got {other:?}"),
    }
    wait_for_session_count(&server, 0);

    // A fresh session binds to the new epoch and works.
    let fresh = conn.open_session(2, false).unwrap();
    assert_eq!(fresh.epoch, epoch);
    let (results, _) = conn
        .push_rounds(fresh.session, vec![reading_round(0.0, 8)])
        .unwrap();
    assert_eq!(results.len(), 1);

    // Reviving restores the full deployment for later tests' sanity.
    let (epoch2, _) = conn.churn(3, false).unwrap();
    assert!(epoch2 > epoch);
    let metrics = server.metrics_snapshot();
    assert_eq!(metrics.counters["fttt.server.sessions_invalidated"], 1);
    assert_eq!(metrics.counters["fttt.server.churn_repairs"], 2);
}

#[test]
fn bad_churn_requests_are_refused_not_panics() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::fast()).unwrap();
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    // Out-of-range node.
    match conn.churn(10_000, true) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadChurn),
        other => panic!("expected BadChurn, got {other:?}"),
    }
    // Reviving a node that is already live.
    match conn.churn(0, false) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadChurn),
        other => panic!("expected BadChurn, got {other:?}"),
    }
    // The connection survives typed refusals.
    assert!(conn.open_session(1, false).is_ok());
}

#[test]
fn full_shard_queue_sheds_with_overloaded() {
    let mut config = ServerConfig::fast();
    config.shards = 1;
    config.queue_depth = 2;
    // The fault-injection stall makes the worker drain far slower than
    // the reader enqueues, so the bounded queue fills deterministically.
    config.ingest_stall = Some(Duration::from_millis(40));
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let info = conn.open_session(7, false).unwrap();

    // Fire a burst of pushes without reading any replies.
    let burst = 12usize;
    for i in 0..burst {
        conn.send(&Frame::Push {
            session: info.session,
            rounds: vec![reading_round(i as f64, 8)],
        })
        .unwrap();
    }
    let mut served = 0usize;
    let mut shed = 0usize;
    for _ in 0..burst {
        match conn.recv().unwrap() {
            Frame::Rounds { session, .. } => {
                assert_eq!(session, info.session);
                served += 1;
            }
            Frame::Error { code, context, .. } => {
                assert_eq!(code, ErrorCode::Overloaded);
                assert_eq!(context, info.session);
                shed += 1;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(shed > 0, "a 12-deep burst into a 2-deep queue must shed");
    assert!(served > 0, "queued batches must still be served");
    // Shed batches never touched the session: rounds served == engine
    // rounds stepped.
    let (rounds, _) = conn.close_session(info.session).unwrap();
    assert_eq!(rounds as usize, served);
    let metrics = server.metrics_snapshot();
    assert_eq!(metrics.counters["fttt.server.shed"], shed as u64);
}

#[test]
fn malformed_frame_errors_close_the_conn_and_free_the_slot() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::fast()).unwrap();
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let _info = conn.open_session(5, false).unwrap();
    assert_eq!(server.session_count(), 1);

    // A garbage frame: valid length prefix, junk payload.
    conn.send(&Frame::Open {
        client_tag: 0,
        extended: false,
    })
    .ok();
    let _ = conn.recv(); // drain the second open's ack
    let mut raw = Vec::new();
    raw.extend_from_slice(&6u32.to_le_bytes());
    raw.extend_from_slice(&[9, 9, 9, 9, 9, 9]); // bad version byte

    // Reach the raw stream through a fresh connection to keep the typed
    // helper API clean.
    let mut bad = std::net::TcpStream::connect(server.local_addr()).unwrap();
    bad.write_all(&raw).unwrap();
    let mut bad_conn = Connection::connect(server.local_addr()).unwrap();
    drop(bad_conn.open_session(1, false)); // ensure server is responsive
    drop(bad);

    // The abusive connection owned no sessions; the polite one owns two.
    // Drop it and verify every slot is swept.
    drop(conn);
    drop(bad_conn);
    wait_for_session_count(&server, 0);
    let metrics = server.metrics_snapshot();
    assert!(metrics.counters["fttt.server.decode_errors"] >= 1);
    assert!(
        metrics
            .counters
            .get("fttt.server.sessions_dropped")
            .copied()
            .unwrap_or(0)
            >= 2
    );
}

#[test]
fn bad_version_answers_unsupported_version_then_closes() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::fast()).unwrap();
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    // Send a frame with a bogus version byte.
    let mut bytes = Frame::Shutdown.encode();
    bytes[4] = 77;
    conn.send(&Frame::Open {
        client_tag: 1,
        extended: false,
    })
    .unwrap();
    let _ = conn.recv().unwrap();
    // Raw write past the typed API.
    use std::io::Write as _;
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(&bytes).unwrap();
    let mut raw_reader = raw.try_clone().unwrap();
    let reply = wsn_server::read_frame(&mut raw_reader, 1 << 20).unwrap();
    match reply {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::UnsupportedVersion),
        other => panic!("expected version error, got {other:?}"),
    }
    // The server then closes that connection.
    match wsn_server::read_frame(&mut raw_reader, 1 << 20) {
        Err(wsn_server::RecvError::Closed) => {}
        other => panic!("expected close after framing violation, got {other:?}"),
    }
}

#[test]
fn session_limit_is_enforced_per_open() {
    let mut config = ServerConfig::fast();
    config.max_sessions = 3;
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let mut opened = Vec::new();
    for tag in 0..3 {
        opened.push(conn.open_session(tag, false).unwrap());
    }
    match conn.open_session(99, false) {
        Err(ClientError::Server { code, context, .. }) => {
            assert_eq!(code, ErrorCode::SessionLimit);
            assert_eq!(context, 99);
        }
        other => panic!("expected SessionLimit, got {other:?}"),
    }
    // Closing one frees capacity.
    conn.close_session(opened[0].session).unwrap();
    assert!(conn.open_session(100, false).is_ok());
}

/// A reading sized for a different deployment must be rejected with
/// `Malformed` — not panic the shard worker. The session (and every
/// other session on the shard) must keep working afterwards, with the
/// digest unaffected by the rejected batch.
#[test]
fn wrong_dimension_reading_is_rejected_not_fatal() {
    let config = ServerConfig::fast(); // 8-node map
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let info = conn.open_session(1, false).unwrap();

    match conn.push_rounds(info.session, vec![reading_round(0.0, 10)]) {
        Err(ClientError::Server {
            code,
            context,
            detail,
        }) => {
            assert_eq!(code, ErrorCode::Malformed);
            assert_eq!(context, info.session);
            assert!(detail.contains("10 nodes"), "{detail}");
            assert!(detail.contains('8'), "{detail}");
        }
        other => panic!("expected Malformed, got {other:?}"),
    }

    // The shard survived and the rejected batch never touched the
    // session: a correct push works and counts from round 0.
    let (results, _) = conn
        .push_rounds(info.session, vec![reading_round(0.0, 8)])
        .unwrap();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].round, 0);
    let (rounds, _) = conn.close_session(info.session).unwrap();
    assert_eq!(rounds, 1);
}
