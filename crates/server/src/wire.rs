//! The length-prefixed binary wire protocol.
//!
//! Every frame on the wire is
//!
//! ```text
//! ┌────────────┬─────────────┬──────────┬───────────┐
//! │ len: u32 LE│ version: u8 │ kind: u8 │ body ...  │
//! └────────────┴─────────────┴──────────┴───────────┘
//! ```
//!
//! where `len` counts the payload (version byte onward). All integers are
//! little-endian; every `f64` travels as its IEEE-754 bit pattern
//! ([`f64::to_bits`]), so readings and estimates round-trip **bit-exactly**
//! — the property the replay digests check end-to-end.
//!
//! Robustness contract (the trust-model stance of the ISSUE): a decoder
//! must never panic and never allocate proportionally to an attacker's
//! length prefix. Oversized frames are rejected from the 4-byte header
//! alone ([`WireError::Oversize`]); every read is bounds-checked
//! ([`WireError::Truncated`]); unknown versions and kinds are typed
//! errors, not UB. A server answers a bad frame with [`Frame::Error`] and
//! closes the connection — sessions owned by that connection are swept,
//! so a malformed client can't leak slots.

use fttt::session::{SessionRound, TrackStatus};
use fttt::FaceId;
use wsn_geometry::Point;
use wsn_network::GroupSampling;
use wsn_signal::Rss;

/// Baseline protocol version carried in every untraced frame.
pub const WIRE_VERSION: u8 = 1;

/// Traced protocol minor version: identical to [`WIRE_VERSION`] except
/// that a non-zero 64-bit trace id follows the kind byte. Both sides
/// accept v1 and v2 interchangeably, so old clients keep working; a v2
/// frame whose trace id is zero is rejected as non-canonical (untraced
/// frames must travel as v1), mirroring the zero-padding checks on every
/// other optional field.
pub const WIRE_VERSION_TRACED: u8 = 2;

/// Default upper bound on a payload, bytes. A push of
/// [`MAX_ROUNDS_PER_PUSH`] rounds at the paper's dimensions is ~100 KiB,
/// so 1 MiB leaves generous headroom without letting a hostile length
/// prefix reserve real memory.
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// Maximum rounds in one `Push` / results in one `Rounds` frame.
pub const MAX_ROUNDS_PER_PUSH: usize = 256;

/// Maximum `nodes × instants` cells in one encoded grouping.
pub const MAX_GROUP_CELLS: usize = 1 << 16;

/// Frame kind bytes (client → server in `0x0*`, server → client `0x8*`).
mod kind {
    pub const OPEN: u8 = 0x01;
    pub const PUSH: u8 = 0x02;
    pub const CLOSE: u8 = 0x03;
    pub const CHURN: u8 = 0x04;
    pub const SHUTDOWN: u8 = 0x05;
    pub const OPEN_ACK: u8 = 0x81;
    pub const ROUNDS: u8 = 0x82;
    pub const CLOSE_ACK: u8 = 0x83;
    pub const CHURN_ACK: u8 = 0x84;
    pub const SHUTDOWN_ACK: u8 = 0x85;
    pub const ERROR: u8 = 0xEE;
}

/// Why a server refused a frame (the `code` of [`Frame::Error`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame failed to decode (truncated, bad value, unknown kind).
    Malformed,
    /// The frame's version byte names no supported protocol version.
    UnsupportedVersion,
    /// The length prefix exceeded the connection's frame bound.
    Oversize,
    /// The session id is not (or no longer) registered.
    UnknownSession,
    /// The owning shard's ingest queue was full; the batch was shed and
    /// never reached the session — retry after draining replies.
    Overloaded,
    /// The session was opened against an older map epoch and has been
    /// invalidated by a churn repair; re-open to continue.
    StaleEpoch,
    /// The server is at its configured session capacity.
    SessionLimit,
    /// A churn request named an invalid node or transition.
    BadChurn,
    /// The server is draining and will not accept new work. Unlike
    /// [`ErrorCode::Overloaded`] this is *not* retryable — the shard
    /// that owned the work is gone.
    ShuttingDown,
    /// A code this client does not know (forward compatibility).
    Other(u16),
}

impl ErrorCode {
    /// The wire representation.
    pub fn as_u16(self) -> u16 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::UnsupportedVersion => 2,
            ErrorCode::Oversize => 3,
            ErrorCode::UnknownSession => 4,
            ErrorCode::Overloaded => 5,
            ErrorCode::StaleEpoch => 6,
            ErrorCode::SessionLimit => 7,
            ErrorCode::BadChurn => 8,
            ErrorCode::ShuttingDown => 9,
            ErrorCode::Other(c) => c,
        }
    }

    /// Decodes a wire code; unknown values round-trip via
    /// [`ErrorCode::Other`].
    pub fn from_u16(c: u16) -> Self {
        match c {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::Oversize,
            4 => ErrorCode::UnknownSession,
            5 => ErrorCode::Overloaded,
            6 => ErrorCode::StaleEpoch,
            7 => ErrorCode::SessionLimit,
            8 => ErrorCode::BadChurn,
            9 => ErrorCode::ShuttingDown,
            other => ErrorCode::Other(other),
        }
    }
}

/// One timestamped grouping sampling pushed to a session.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadingRound {
    /// Round timestamp, seconds.
    pub t: f64,
    /// The readings matrix (missing cells = non-responding sensors).
    pub group: GroupSampling,
}

/// One session round as reported over the wire — the full
/// [`SessionRound`] + trace surface, flattened to plain scalars.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundResult {
    /// Zero-based round index within the session.
    pub round: u64,
    /// Round timestamp, seconds.
    pub t: f64,
    /// Reported estimate.
    pub x: f64,
    /// Reported estimate.
    pub y: f64,
    /// Status before the round's checks, encoded via [`status_to_u8`].
    pub status_before: u8,
    /// Status after the round's checks.
    pub status: u8,
    /// Failure cause, encoded via [`cause_to_u8`].
    pub cause: u8,
    /// Matched face + 1; `0` = blackout hold (the replay convention).
    pub face: u64,
    /// Match similarity, `None` on a blackout hold.
    pub similarity: Option<f64>,
    /// Fraction of `*` components in the sampling vector.
    pub missing_fraction: f64,
    /// Fraction of known components that sampled exactly zero.
    pub zero_fraction: f64,
    /// Sampling times `k` this round ran with.
    pub samples: u32,
    /// Sampling times requested for the next round.
    pub k_after: u32,
    /// Verdict bits, see [`flags`].
    pub flags: u8,
}

/// Bit positions of [`RoundResult::flags`].
pub mod flags {
    /// The grouping was empty / all-missing.
    pub const BLACKOUT: u8 = 1 << 0;
    /// Similarity fell below the relative re-acquisition threshold.
    pub const STRANDED: u8 = 1 << 1;
    /// Missing fraction exceeded the monitor's bound.
    pub const STARVED: u8 = 1 << 2;
    /// The estimate jumped farther than the target could travel.
    pub const TELEPORTED: u8 = 1 << 3;
    /// The reported estimate is a hold, not a fresh localization.
    pub const HELD: u8 = 1 << 4;
    /// The session forced an exhaustive-quality re-acquisition.
    pub const REACQUIRED: u8 = 1 << 5;
}

/// [`TrackStatus`] → wire byte.
pub fn status_to_u8(s: TrackStatus) -> u8 {
    match s {
        TrackStatus::Tracking => 0,
        TrackStatus::Degraded => 1,
        TrackStatus::Lost => 2,
    }
}

/// Wire byte → [`TrackStatus`].
pub fn status_from_u8(b: u8) -> Result<TrackStatus, WireError> {
    match b {
        0 => Ok(TrackStatus::Tracking),
        1 => Ok(TrackStatus::Degraded),
        2 => Ok(TrackStatus::Lost),
        _ => Err(WireError::BadValue("track status")),
    }
}

/// Round cause → wire byte (the priority order of the session monitor).
pub fn cause_to_u8(cause: &str) -> u8 {
    match cause {
        "healthy" => 0,
        "blackout" => 1,
        "stranded" => 2,
        "starved" => 3,
        "teleported" => 4,
        _ => u8::MAX,
    }
}

/// Wire byte → cause label.
pub fn cause_from_u8(b: u8) -> Result<&'static str, WireError> {
    match b {
        0 => Ok("healthy"),
        1 => Ok("blackout"),
        2 => Ok("stranded"),
        3 => Ok("starved"),
        4 => Ok("teleported"),
        _ => Err(WireError::BadValue("round cause")),
    }
}

impl RoundResult {
    /// Flattens an engine round for the wire, preserving every field the
    /// replay digest folds.
    pub fn from_round(r: &SessionRound) -> Self {
        let t = &r.trace;
        let mut f = 0u8;
        if t.blackout {
            f |= flags::BLACKOUT;
        }
        if t.stranded {
            f |= flags::STRANDED;
        }
        if t.starved {
            f |= flags::STARVED;
        }
        if t.teleported {
            f |= flags::TELEPORTED;
        }
        if r.held {
            f |= flags::HELD;
        }
        if r.reacquired {
            f |= flags::REACQUIRED;
        }
        RoundResult {
            round: t.round,
            t: r.t,
            x: r.estimate.x,
            y: r.estimate.y,
            status_before: status_to_u8(t.status_before),
            status: status_to_u8(r.status),
            cause: cause_to_u8(t.cause),
            face: r.face.map_or(0, |f| f.0 as u64 + 1),
            similarity: r.similarity,
            missing_fraction: r.missing_fraction,
            zero_fraction: t.zero_fraction,
            samples: r.samples as u32,
            k_after: t.k_after as u32,
            flags: f,
        }
    }

    /// Reconstructs the engine-side round this result flattened, for
    /// digesting and field-by-field comparison against an in-process run.
    pub fn to_session_round(&self) -> Result<SessionRound, WireError> {
        Ok(SessionRound {
            t: self.t,
            estimate: Point::new(self.x, self.y),
            status: status_from_u8(self.status)?,
            samples: self.samples as usize,
            face: match self.face {
                0 => None,
                id => {
                    if id - 1 > u32::MAX as u64 {
                        return Err(WireError::BadValue("face id"));
                    }
                    Some(FaceId((id - 1) as u32))
                }
            },
            similarity: self.similarity,
            missing_fraction: self.missing_fraction,
            reacquired: self.flags & flags::REACQUIRED != 0,
            held: self.flags & flags::HELD != 0,
            trace: fttt::session::RoundTrace {
                round: self.round,
                status_before: status_from_u8(self.status_before)?,
                cause: cause_from_u8(self.cause)?,
                blackout: self.flags & flags::BLACKOUT != 0,
                stranded: self.flags & flags::STRANDED != 0,
                starved: self.flags & flags::STARVED != 0,
                teleported: self.flags & flags::TELEPORTED != 0,
                zero_fraction: self.zero_fraction,
                k_after: self.k_after as usize,
            },
        })
    }
}

/// Every frame of the protocol (versions 1 and 2 share one frame set;
/// v2 additionally carries a trace id, see [`WIRE_VERSION_TRACED`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client: open a session. `client_tag` is echoed in the ack so
    /// pipelined opens can be matched up.
    Open {
        /// Caller's correlation tag, echoed verbatim.
        client_tag: u64,
        /// Use extended (Section 6) sampling vectors.
        extended: bool,
    },
    /// Client: feed rounds of readings to a session.
    Push {
        /// Target session id (from [`Frame::OpenAck`]).
        session: u64,
        /// Batched rounds, oldest first.
        rounds: Vec<ReadingRound>,
    },
    /// Client: close a session and collect its digest.
    Close {
        /// Target session id.
        session: u64,
    },
    /// Client: kill (`death`) or revive a deployment node on the shared
    /// map. Bumps the epoch; sessions opened before it become stale.
    Churn {
        /// Deployment node index.
        node: u32,
        /// `true` = kill, `false` = revive.
        death: bool,
    },
    /// Client (admin): ask the process to finish up and exit.
    Shutdown,
    /// Server: a session is open.
    OpenAck {
        /// The tag from [`Frame::Open`].
        client_tag: u64,
        /// The session id for all further frames.
        session: u64,
        /// Map epoch the session is bound to.
        epoch: u64,
        /// [`fttt::replay::digest_face_map`] of the map the session will
        /// match against — clients cross-check their local map.
        map_digest: u64,
    },
    /// Server: results for one [`Frame::Push`], in round order.
    Rounds {
        /// The session these results belong to.
        session: u64,
        /// One result per pushed round.
        results: Vec<RoundResult>,
        /// Running session digest (replay-digest fold over *all* rounds so
        /// far) after this batch.
        digest: u64,
    },
    /// Server: a session closed cleanly.
    CloseAck {
        /// The closed session.
        session: u64,
        /// Total rounds the session stepped.
        rounds: u64,
        /// Final session digest.
        digest: u64,
    },
    /// Server: the churn repair completed.
    ChurnAck {
        /// Map epoch after the repair.
        epoch: u64,
        /// Digest of the repaired map.
        map_digest: u64,
    },
    /// Server: shutdown acknowledged; the process is draining.
    ShutdownAck,
    /// Server: a request was refused. The connection stays open unless
    /// the error was a framing violation.
    Error {
        /// Why.
        code: ErrorCode,
        /// The session id / client tag the error refers to, `0` if none.
        context: u64,
        /// Human-readable detail.
        detail: String,
    },
}

/// A typed decode failure. Never panics, never echoes attacker-sized
/// allocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the field being read.
    Truncated,
    /// The length prefix exceeds the connection's configured bound.
    Oversize {
        /// Claimed payload length.
        len: u32,
        /// The bound it violated.
        max: u32,
    },
    /// The version byte names no supported protocol version.
    BadVersion(u8),
    /// The kind byte names no known frame.
    UnknownKind(u8),
    /// A field held an out-of-domain value (named).
    BadValue(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Oversize { len, max } => {
                write!(f, "payload length {len} exceeds frame bound {max}")
            }
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind 0x{k:02x}"),
            WireError::BadValue(what) => write!(f, "bad value for {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(kind: u8, trace: u64) -> Self {
        // Length placeholder first; patched in finish(). A zero trace id
        // encodes as v1 (no trace field); non-zero as v2 with the id
        // right after the kind byte.
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&[0, 0, 0, 0]);
        if trace == 0 {
            buf.push(WIRE_VERSION);
            buf.push(kind);
        } else {
            buf.push(WIRE_VERSION_TRACED);
            buf.push(kind);
            buf.extend_from_slice(&trace.to_le_bytes());
        }
        Writer { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    fn finish(mut self) -> Vec<u8> {
        let len = (self.buf.len() - 4) as u32;
        self.buf[..4].copy_from_slice(&len.to_le_bytes());
        self.buf
    }
}

fn encode_group(w: &mut Writer, round: &ReadingRound) {
    let g = &round.group;
    w.f64(round.t);
    w.u16(g.node_count() as u16);
    w.u16(g.instants() as u16);
    let cells = g.node_count() * g.instants();
    // Presence bitmap, instant-major (bit i ↔ instant i / nodes,
    // node i % nodes), then the present readings' dBm values in the
    // same order.
    let mut bitmap = vec![0u8; cells.div_ceil(8)];
    let mut values = Vec::new();
    for instant in 0..g.instants() {
        for node in 0..g.node_count() {
            let i = instant * g.node_count() + node;
            if let Some(r) = g.get(instant, node) {
                bitmap[i / 8] |= 1 << (i % 8);
                values.push(r.dbm());
            }
        }
    }
    w.bytes(&bitmap);
    for v in values {
        w.f64(v);
    }
}

fn encode_result(w: &mut Writer, r: &RoundResult) {
    w.u64(r.round);
    w.f64(r.t);
    w.f64(r.x);
    w.f64(r.y);
    w.u8(r.status_before);
    w.u8(r.status);
    w.u8(r.cause);
    w.u64(r.face);
    w.u8(r.similarity.is_some() as u8);
    w.f64(r.similarity.unwrap_or(0.0));
    w.f64(r.missing_fraction);
    w.f64(r.zero_fraction);
    w.u32(r.samples);
    w.u32(r.k_after);
    w.u8(r.flags);
}

impl Frame {
    /// Encodes the frame as v1 (untraced), length prefix included.
    ///
    /// # Panics
    ///
    /// Panics if a `Push`/`Rounds` batch exceeds [`MAX_ROUNDS_PER_PUSH`]
    /// or a grouping exceeds [`MAX_GROUP_CELLS`] / `u16` dimensions —
    /// producer-side programming errors, not wire conditions.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_traced(0)
    }

    /// Encodes the frame carrying `trace` as its correlation id. A zero
    /// trace id produces a v1 frame bit-identical to [`Frame::encode`];
    /// a non-zero id produces a [`WIRE_VERSION_TRACED`] frame.
    ///
    /// # Panics
    ///
    /// Same bounds as [`Frame::encode`].
    pub fn encode_traced(&self, trace: u64) -> Vec<u8> {
        match self {
            Frame::Open {
                client_tag,
                extended,
            } => {
                let mut w = Writer::new(kind::OPEN, trace);
                w.u64(*client_tag);
                w.u8(*extended as u8);
                w.finish()
            }
            Frame::Push { session, rounds } => {
                assert!(
                    rounds.len() <= MAX_ROUNDS_PER_PUSH,
                    "push batch of {} exceeds MAX_ROUNDS_PER_PUSH",
                    rounds.len()
                );
                let mut w = Writer::new(kind::PUSH, trace);
                w.u64(*session);
                w.u16(rounds.len() as u16);
                for r in rounds {
                    let g = &r.group;
                    assert!(
                        g.node_count() <= u16::MAX as usize
                            && g.instants() <= u16::MAX as usize
                            && g.node_count() * g.instants() <= MAX_GROUP_CELLS,
                        "grouping {}×{} exceeds wire bounds",
                        g.node_count(),
                        g.instants()
                    );
                    encode_group(&mut w, r);
                }
                w.finish()
            }
            Frame::Close { session } => {
                let mut w = Writer::new(kind::CLOSE, trace);
                w.u64(*session);
                w.finish()
            }
            Frame::Churn { node, death } => {
                let mut w = Writer::new(kind::CHURN, trace);
                w.u32(*node);
                w.u8(*death as u8);
                w.finish()
            }
            Frame::Shutdown => Writer::new(kind::SHUTDOWN, trace).finish(),
            Frame::OpenAck {
                client_tag,
                session,
                epoch,
                map_digest,
            } => {
                let mut w = Writer::new(kind::OPEN_ACK, trace);
                w.u64(*client_tag);
                w.u64(*session);
                w.u64(*epoch);
                w.u64(*map_digest);
                w.finish()
            }
            Frame::Rounds {
                session,
                results,
                digest,
            } => {
                assert!(
                    results.len() <= MAX_ROUNDS_PER_PUSH,
                    "result batch of {} exceeds MAX_ROUNDS_PER_PUSH",
                    results.len()
                );
                let mut w = Writer::new(kind::ROUNDS, trace);
                w.u64(*session);
                w.u16(results.len() as u16);
                for r in results {
                    encode_result(&mut w, r);
                }
                w.u64(*digest);
                w.finish()
            }
            Frame::CloseAck {
                session,
                rounds,
                digest,
            } => {
                let mut w = Writer::new(kind::CLOSE_ACK, trace);
                w.u64(*session);
                w.u64(*rounds);
                w.u64(*digest);
                w.finish()
            }
            Frame::ChurnAck { epoch, map_digest } => {
                let mut w = Writer::new(kind::CHURN_ACK, trace);
                w.u64(*epoch);
                w.u64(*map_digest);
                w.finish()
            }
            Frame::ShutdownAck => Writer::new(kind::SHUTDOWN_ACK, trace).finish(),
            Frame::Error {
                code,
                context,
                detail,
            } => {
                let mut w = Writer::new(kind::ERROR, trace);
                w.u16(code.as_u16());
                w.u64(*context);
                w.bytes(detail.as_bytes());
                w.finish()
            }
        }
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::BadValue("bool")),
        }
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            // Trailing garbage is as malformed as a short frame.
            Err(WireError::BadValue("trailing bytes"))
        }
    }
}

fn decode_group(r: &mut Reader) -> Result<ReadingRound, WireError> {
    let t = r.f64()?;
    let nodes = r.u16()? as usize;
    let instants = r.u16()? as usize;
    if nodes == 0 || instants == 0 {
        return Err(WireError::BadValue("empty grouping dimensions"));
    }
    let cells = nodes * instants;
    if cells > MAX_GROUP_CELLS {
        return Err(WireError::BadValue("grouping cell count"));
    }
    let bitmap = r.take(cells.div_ceil(8))?.to_vec();
    // Canonical encoding: padding bits past the last cell must be zero,
    // so decode ∘ encode is the identity on bytes as well as values.
    if !cells.is_multiple_of(8) && bitmap[cells / 8] >> (cells % 8) != 0 {
        return Err(WireError::BadValue("bitmap padding bits"));
    }
    let mut group = GroupSampling::empty(nodes, instants);
    for instant in 0..instants {
        for node in 0..nodes {
            let i = instant * nodes + node;
            if bitmap[i / 8] & (1 << (i % 8)) != 0 {
                group.set(instant, node, Some(Rss::new(r.f64()?)));
            }
        }
    }
    Ok(ReadingRound { t, group })
}

fn decode_result(r: &mut Reader) -> Result<RoundResult, WireError> {
    let round = r.u64()?;
    let t = r.f64()?;
    let x = r.f64()?;
    let y = r.f64()?;
    let status_before = r.u8()?;
    let status = r.u8()?;
    let cause = r.u8()?;
    let face = r.u64()?;
    let has_sim = r.bool()?;
    let sim = r.f64()?;
    // Canonical encoding: an absent similarity is padded with +0.0.
    if !has_sim && sim.to_bits() != 0 {
        return Err(WireError::BadValue("similarity padding"));
    }
    let missing_fraction = r.f64()?;
    let zero_fraction = r.f64()?;
    let samples = r.u32()?;
    let k_after = r.u32()?;
    let flags = r.u8()?;
    Ok(RoundResult {
        round,
        t,
        x,
        y,
        status_before,
        status,
        cause,
        face,
        similarity: has_sim.then_some(sim),
        missing_fraction,
        zero_fraction,
        samples,
        k_after,
        flags,
    })
}

impl Frame {
    /// Decodes one payload (the bytes after the length prefix),
    /// discarding any v2 trace id. See [`Frame::decode_traced`].
    pub fn decode(payload: &[u8]) -> Result<Frame, WireError> {
        Frame::decode_traced(payload).map(|(frame, _)| frame)
    }

    /// Decodes one payload (the bytes after the length prefix) together
    /// with its correlation trace id: `0` for a v1 frame, the carried id
    /// for a [`WIRE_VERSION_TRACED`] frame. A v2 frame with trace id `0`
    /// is non-canonical and rejected — the untraced encoding of the same
    /// frame is v1, so accepting both would break decode∘encode identity.
    pub fn decode_traced(payload: &[u8]) -> Result<(Frame, u64), WireError> {
        let mut r = Reader::new(payload);
        let version = r.u8()?;
        if version != WIRE_VERSION && version != WIRE_VERSION_TRACED {
            return Err(WireError::BadVersion(version));
        }
        let k = r.u8()?;
        let trace = if version == WIRE_VERSION_TRACED {
            match r.u64()? {
                0 => return Err(WireError::BadValue("zero trace id in traced frame")),
                id => id,
            }
        } else {
            0
        };
        let frame = match k {
            kind::OPEN => Frame::Open {
                client_tag: r.u64()?,
                extended: r.bool()?,
            },
            kind::PUSH => {
                let session = r.u64()?;
                let count = r.u16()? as usize;
                if count > MAX_ROUNDS_PER_PUSH {
                    return Err(WireError::BadValue("push round count"));
                }
                let mut rounds = Vec::with_capacity(count);
                for _ in 0..count {
                    rounds.push(decode_group(&mut r)?);
                }
                Frame::Push { session, rounds }
            }
            kind::CLOSE => Frame::Close { session: r.u64()? },
            kind::CHURN => Frame::Churn {
                node: r.u32()?,
                death: r.bool()?,
            },
            kind::SHUTDOWN => Frame::Shutdown,
            kind::OPEN_ACK => Frame::OpenAck {
                client_tag: r.u64()?,
                session: r.u64()?,
                epoch: r.u64()?,
                map_digest: r.u64()?,
            },
            kind::ROUNDS => {
                let session = r.u64()?;
                let count = r.u16()? as usize;
                if count > MAX_ROUNDS_PER_PUSH {
                    return Err(WireError::BadValue("result count"));
                }
                let mut results = Vec::with_capacity(count);
                for _ in 0..count {
                    results.push(decode_result(&mut r)?);
                }
                let digest = r.u64()?;
                Frame::Rounds {
                    session,
                    results,
                    digest,
                }
            }
            kind::CLOSE_ACK => Frame::CloseAck {
                session: r.u64()?,
                rounds: r.u64()?,
                digest: r.u64()?,
            },
            kind::CHURN_ACK => Frame::ChurnAck {
                epoch: r.u64()?,
                map_digest: r.u64()?,
            },
            kind::SHUTDOWN_ACK => Frame::ShutdownAck,
            kind::ERROR => {
                let code = ErrorCode::from_u16(r.u16()?);
                let context = r.u64()?;
                let rest = r.take(payload.len() - r.pos)?;
                let detail = String::from_utf8(rest.to_vec())
                    .map_err(|_| WireError::BadValue("error detail utf-8"))?;
                Frame::Error {
                    code,
                    context,
                    detail,
                }
            }
            other => return Err(WireError::UnknownKind(other)),
        };
        r.done()?;
        Ok((frame, trace))
    }
}

// ---------------------------------------------------------------------
// Framed I/O
// ---------------------------------------------------------------------

/// Why a framed read stopped.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the connection cleanly (EOF at a frame boundary).
    Closed,
    /// The transport failed.
    Io(std::io::Error),
    /// The bytes arrived but are not a valid frame.
    Protocol(WireError),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Closed => write!(f, "connection closed"),
            RecvError::Io(e) => write!(f, "i/o error: {e}"),
            RecvError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Writes one frame (v1, untraced).
pub fn write_frame<W: std::io::Write>(w: &mut W, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&frame.encode())
}

/// Writes one frame carrying `trace` as its correlation id (`0` emits a
/// plain v1 frame).
pub fn write_frame_traced<W: std::io::Write>(
    w: &mut W,
    frame: &Frame,
    trace: u64,
) -> std::io::Result<()> {
    w.write_all(&frame.encode_traced(trace))
}

/// Reads one frame, discarding any trace id. See [`read_frame_traced`].
pub fn read_frame<R: std::io::Read>(r: &mut R, max_frame: u32) -> Result<Frame, RecvError> {
    read_frame_traced(r, max_frame).map(|(frame, _)| frame)
}

/// Reads one frame plus its correlation trace id (`0` for v1 frames),
/// enforcing `max_frame` on the payload length *before* allocating. EOF
/// exactly at a frame boundary is [`RecvError::Closed`]; EOF mid-frame is
/// a truncation ([`RecvError::Protocol`]).
pub fn read_frame_traced<R: std::io::Read>(
    r: &mut R,
    max_frame: u32,
) -> Result<(Frame, u64), RecvError> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    RecvError::Closed
                } else {
                    RecvError::Protocol(WireError::Truncated)
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header);
    if len > max_frame {
        return Err(RecvError::Protocol(WireError::Oversize {
            len,
            max: max_frame,
        }));
    }
    if len < 2 {
        return Err(RecvError::Protocol(WireError::Truncated));
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(RecvError::Protocol(WireError::Truncated)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
    Frame::decode_traced(&payload).map_err(RecvError::Protocol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_round_trips_with_missing_cells() {
        let mut g = GroupSampling::empty(3, 2);
        g.set(0, 0, Some(Rss::new(-41.25)));
        g.set(1, 2, Some(Rss::new(-87.0)));
        let frame = Frame::Push {
            session: 7,
            rounds: vec![ReadingRound { t: 1.5, group: g }],
        };
        let bytes = frame.encode();
        let decoded = Frame::decode(&bytes[4..]).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn error_detail_round_trips() {
        let frame = Frame::Error {
            code: ErrorCode::StaleEpoch,
            context: 42,
            detail: "epoch moved 3 → 5".into(),
        };
        let bytes = frame.encode();
        assert_eq!(Frame::decode(&bytes[4..]).unwrap(), frame);
    }

    #[test]
    fn oversize_is_rejected_from_the_header_alone() {
        // 4 GiB claim against a 1 KiB bound: must fail without trying to
        // allocate or read the claimed payload.
        let mut bytes = u32::MAX.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 8]);
        let mut cursor = std::io::Cursor::new(bytes);
        match read_frame(&mut cursor, 1024) {
            Err(RecvError::Protocol(WireError::Oversize { len, max })) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, 1024);
            }
            other => panic!("expected oversize, got {other:?}"),
        }
    }

    #[test]
    fn traced_frames_round_trip_and_v1_stays_bit_identical() {
        let frame = Frame::Close { session: 9 };
        // Zero trace id encodes as v1 — byte-for-byte the old encoding.
        assert_eq!(frame.encode_traced(0), frame.encode());
        assert_eq!(frame.encode()[4], WIRE_VERSION);
        // A non-zero id rides as v2 and round-trips.
        let bytes = frame.encode_traced(0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(bytes[4], WIRE_VERSION_TRACED);
        let (decoded, trace) = Frame::decode_traced(&bytes[4..]).unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(trace, 0xDEAD_BEEF_CAFE_F00D);
        // The untraced decoder serves old readers: same frame, id dropped.
        assert_eq!(Frame::decode(&bytes[4..]).unwrap(), frame);
    }

    #[test]
    fn traced_push_round_trips_with_payload() {
        let mut g = GroupSampling::empty(3, 2);
        g.set(0, 1, Some(Rss::new(-55.5)));
        let frame = Frame::Push {
            session: 7,
            rounds: vec![ReadingRound { t: 1.5, group: g }],
        };
        let bytes = frame.encode_traced(42);
        let (decoded, trace) = Frame::decode_traced(&bytes[4..]).unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(trace, 42);
    }

    #[test]
    fn zero_trace_id_in_v2_is_non_canonical() {
        // Hand-build a v2 frame whose trace field is zero: version 2,
        // kind CLOSE, trace 0, session 9.
        let mut payload = vec![WIRE_VERSION_TRACED, 0x03];
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&9u64.to_le_bytes());
        match Frame::decode_traced(&payload) {
            Err(WireError::BadValue(what)) => assert!(what.contains("trace"), "{what}"),
            other => panic!("expected BadValue, got {other:?}"),
        }
    }

    #[test]
    fn truncated_trace_id_is_truncated_not_panic() {
        let payload = [WIRE_VERSION_TRACED, 0x03, 1, 2, 3];
        assert_eq!(
            Frame::decode_traced(&payload).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn status_and_cause_bytes_are_total() {
        for s in [
            TrackStatus::Tracking,
            TrackStatus::Degraded,
            TrackStatus::Lost,
        ] {
            assert_eq!(status_from_u8(status_to_u8(s)).unwrap(), s);
        }
        assert!(status_from_u8(9).is_err());
        for c in ["healthy", "blackout", "stranded", "starved", "teleported"] {
            assert_eq!(cause_from_u8(cause_to_u8(c)).unwrap(), c);
        }
        assert!(cause_from_u8(200).is_err());
    }
}
