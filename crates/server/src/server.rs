//! The sharded tracking server.
//!
//! One process hosts tens of thousands of [`TrackingSession`]s over a
//! single shared [`FaceMap`]:
//!
//! * an **acceptor** thread takes TCP connections; each connection gets a
//!   blocking **reader** thread (frame parse + route) and a **writer**
//!   thread (drains an outbound byte queue);
//! * `shards` **worker** threads own disjoint slices of the session
//!   registry (`session_id % shards`); every session mutation happens on
//!   its owning worker, so session state needs no locks at all;
//! * workers are fed through **bounded** queues. When a shard's queue is
//!   full the reader sheds the batch immediately with
//!   [`ErrorCode::Overloaded`] instead of buffering without bound — the
//!   session is untouched and the client retries after draining replies;
//! * the map is **epoch-checked**: a churn repair installs a new map and
//!   bumps the epoch; sessions bound to an older epoch are invalidated
//!   (and their slots freed) on their next touch with
//!   [`ErrorCode::StaleEpoch`].

use crate::wire::{
    read_frame_traced, ErrorCode, Frame, ReadingRound, RecvError, RoundResult, DEFAULT_MAX_FRAME,
};
use fttt::replay::{digest_face_map, digest_round, Digest};
use fttt::session::{SessionOptions, TrackingSession};
use fttt::tracker::{Tracker, TrackerOptions};
use fttt::{FaceMap, PaperParams, RepairMode};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wsn_network::replay::digest_hex;
use wsn_telemetry::{ArgValue, Registry, Snapshot, DURATION_US_BUCKETS};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads / registry shards.
    pub shards: usize,
    /// Bounded depth of each shard's ingest queue, in jobs. A full queue
    /// sheds with [`ErrorCode::Overloaded`].
    pub queue_depth: usize,
    /// Hard cap on concurrently open sessions across all shards.
    pub max_sessions: usize,
    /// Per-connection payload bound, bytes.
    pub max_frame: u32,
    /// The field/deployment the shared map is built from. Every session
    /// matches against this one map.
    pub params: PaperParams,
    /// Fault-injection hook: stall each worker job this long before
    /// processing. `None` in production; tests use it to make
    /// backpressure sheds deterministic.
    pub ingest_stall: Option<Duration>,
    /// How often the watchdog monitor ages shard heartbeats and checks
    /// flight-recorder triggers.
    pub watchdog_interval: Duration,
    /// A shard continuously busy on one job for longer than this is
    /// declared stalled: `/healthz` flips to degraded and
    /// `fttt.server.watchdog.stalls` increments (once per transition).
    pub watchdog_stall: Duration,
    /// Anomaly flight recorder; `None` disables dumping.
    pub flight: Option<FlightConfig>,
}

/// Where and when the anomaly flight recorder dumps evidence.
///
/// On a watchdog stall, a shed burst, or a `StaleEpoch` storm (at least
/// the configured count inside one watchdog interval) the monitor thread
/// writes two files into `dir` via atomic tmp+rename: the journal ring as
/// `flight-<unix_secs>-<n>-<reason>.trace.jsonl` (readable by `fttt-sim
/// explain`/`replay`) and the merged metrics as the matching
/// `.metrics.json`. At most `max_dumps` dumps are written per process so
/// a flapping trigger cannot fill the disk.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Output directory for dump files.
    pub dir: PathBuf,
    /// Hard cap on dumps per process lifetime; later triggers only count
    /// `fttt.server.flight.suppressed`.
    pub max_dumps: usize,
    /// Sheds within one watchdog interval that count as a burst.
    pub shed_burst: u64,
    /// Stale-epoch invalidations within one watchdog interval that count
    /// as a storm.
    pub stale_burst: u64,
}

impl FlightConfig {
    /// Flight recording into `dir` with default triggers.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FlightConfig {
            dir: dir.into(),
            max_dumps: 8,
            shed_burst: 512,
            stale_burst: 512,
        }
    }
}

impl ServerConfig {
    /// A server over `params` with production-ish defaults.
    pub fn new(params: PaperParams) -> Self {
        ServerConfig {
            shards: 4,
            queue_depth: 256,
            max_sessions: 200_000,
            max_frame: DEFAULT_MAX_FRAME,
            params,
            ingest_stall: None,
            watchdog_interval: Duration::from_millis(200),
            watchdog_stall: Duration::from_secs(5),
            flight: None,
        }
    }

    /// A small-map configuration (8 nodes, 2 m cells — the fault
    /// campaign's fast geometry) for tests and smoke runs.
    pub fn fast() -> Self {
        Self::new(PaperParams::default().with_nodes(8).with_cell_size(2.0))
    }

    /// The tracker options every server session runs with — the fault
    /// campaign's configuration (heuristic matching, optionally extended
    /// vectors), so wire results are comparable to campaign runs.
    pub fn tracker_options(&self, extended: bool) -> TrackerOptions {
        if extended {
            TrackerOptions {
                extended: true,
                ..TrackerOptions::heuristic()
            }
        } else {
            TrackerOptions::heuristic()
        }
    }

    /// The session options every server session runs with (mirrors the
    /// fault campaign). Clients use this to build bit-identical shadow
    /// sessions.
    pub fn session_options(&self) -> SessionOptions {
        SessionOptions::new(self.params.samples_k).with_max_speed(self.params.max_speed)
    }
}

/// One registered session on a worker.
struct Entry {
    session: TrackingSession,
    conn: u64,
    epoch: u64,
    digest: Digest,
    rounds: u64,
    /// The most recent round served, kept for `/sessions/<id>`.
    last: Option<RoundResult>,
}

/// What the owning shard knows about one session, as reported to the ops
/// plane ([`Job::Query`], `GET /sessions/<id>`).
#[derive(Debug, Clone, PartialEq)]
pub enum SessionView {
    /// The session is live on its shard.
    Active(SessionStatus),
    /// The session exists but was opened against an older map epoch; its
    /// next push will invalidate it. The query itself does not mutate.
    Retired {
        /// The epoch the session opened against.
        opened_epoch: u64,
        /// The server's current epoch.
        current_epoch: u64,
    },
    /// No session with that id is registered on the owning shard.
    Unknown {
        /// The server's current epoch.
        current_epoch: u64,
    },
}

/// The live state behind [`SessionView::Active`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStatus {
    /// The session id.
    pub session: u64,
    /// Map epoch the session is bound to.
    pub epoch: u64,
    /// Rounds stepped so far.
    pub rounds: u64,
    /// Running replay digest over all served rounds.
    pub digest: u64,
    /// The last round served, if any were.
    pub last: Option<RoundResult>,
}

/// Work routed to a shard worker. Replies travel back through the
/// connection's outbound byte queue; `trace` is the request's wire
/// correlation id (0 = untraced v1 client) and is echoed in the reply.
pub(crate) enum Job {
    Open {
        reply: Sender<Vec<u8>>,
        conn: u64,
        client_tag: u64,
        session: u64,
        extended: bool,
        trace: u64,
    },
    Push {
        reply: Sender<Vec<u8>>,
        session: u64,
        rounds: Vec<ReadingRound>,
        trace: u64,
    },
    Close {
        reply: Sender<Vec<u8>>,
        session: u64,
        trace: u64,
    },
    /// Ops-plane session inspection; never touches session state.
    Query {
        reply: mpsc::Sender<SessionView>,
        session: u64,
    },
    ConnClosed {
        conn: u64,
    },
    Stop,
}

/// Per-shard liveness state, updated lock-free by the router and worker
/// and aged by the watchdog monitor thread.
#[derive(Debug, Default)]
pub(crate) struct ShardHealth {
    /// Jobs currently sitting in (or just drained from) the shard queue.
    pub(crate) queued: AtomicU64,
    /// Microseconds-since-server-start when the worker began its current
    /// job; `0` = idle. The watchdog ages this to detect stalls.
    pub(crate) busy_since_us: AtomicU64,
    /// Jobs fully processed.
    pub(crate) jobs_done: AtomicU64,
    /// Set by the watchdog when the shard exceeds the stall bound;
    /// cleared when it recovers. Read by `/healthz`.
    pub(crate) stalled: AtomicBool,
}

/// Clears the busy heartbeat and counts the job on every exit path of a
/// worker-loop iteration — the match arms `continue` liberally on error
/// paths, and a heartbeat left set while the worker idles on an empty
/// queue would read as a stall.
struct BusyGuard<'a>(&'a ShardHealth);

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.0.busy_since_us.store(0, Ordering::Relaxed);
        self.0.jobs_done.fetch_add(1, Ordering::Relaxed);
    }
}

pub(crate) struct ServerState {
    pub(crate) config: ServerConfig,
    /// Monotonic time base for heartbeats and stall ages.
    pub(crate) started: Instant,
    /// One liveness block per shard.
    pub(crate) shard_health: Vec<ShardHealth>,
    /// The current shared map. Replaced wholesale by churn repairs;
    /// sessions keep their `Arc` until invalidated.
    map: RwLock<Arc<FaceMap>>,
    /// Mirrors `map.epoch()` for lock-free stale checks on the hot path.
    pub(crate) epoch: AtomicU64,
    map_digest: AtomicU64,
    next_session: AtomicU64,
    pub(crate) session_count: AtomicU64,
    shutdown: AtomicBool,
    shutdown_signal: (Mutex<bool>, Condvar),
    /// Connection-plane metrics (frame counts, decode errors, sheds).
    pub(crate) conn_registry: Registry,
    /// One registry per shard worker, merged deterministically by
    /// [`Server::metrics_snapshot`].
    worker_registries: Vec<Arc<Registry>>,
}

impl ServerState {
    fn signal_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let (lock, cvar) = &self.shutdown_signal;
        *lock.lock().expect("shutdown lock poisoned") = true;
        cvar.notify_all();
    }

    /// Microseconds since the server started — the heartbeat time base.
    pub(crate) fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }
}

/// Merged metrics across the connection plane and every shard worker,
/// plus the live `fttt.server.queued` gauge (jobs currently sitting in
/// shard queues, summed).
///
/// The expects encode process-local invariants: every worker registry is
/// created by the same binary so histogram ladders agree, and the
/// connection plane uses disjoint metric names.
pub(crate) fn merged_snapshot(state: &ServerState) -> Snapshot {
    let parts: Vec<(usize, Snapshot)> = state
        .worker_registries
        .iter()
        .enumerate()
        .map(|(i, r)| (i, r.snapshot()))
        .collect();
    let mut merged =
        Snapshot::merge_shards(parts).expect("shard registries share one bucket ladder");
    merged
        .try_merge(&state.conn_registry.snapshot())
        .expect("conn-plane metric names are disjoint from worker names");
    let queued: u64 = state
        .shard_health
        .iter()
        .map(|h| h.queued.load(Ordering::Relaxed))
        .sum();
    merged
        .gauges
        .insert("fttt.server.queued".into(), queued as f64);
    merged
}

/// A running tracking server. Dropping it shuts it down.
pub struct Server {
    addr: SocketAddr,
    pub(crate) state: Arc<ServerState>,
    pub(crate) shard_txs: Vec<SyncSender<Job>>,
    acceptor: Option<JoinHandle<()>>,
    monitor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Builds the shared map from `config.params`, binds `addr`
    /// (`"127.0.0.1:0"` picks a free port) and starts the acceptor and
    /// worker threads.
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        assert!(config.shards > 0, "need at least one shard");
        assert!(config.queue_depth > 0, "need a positive queue depth");
        let field = config.params.grid_field();
        let map = Arc::new(config.params.face_map(&field));
        let map_digest = digest_face_map(&map);
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;

        let worker_registries: Vec<Arc<Registry>> = (0..config.shards)
            .map(|_| Arc::new(Registry::new()))
            .collect();
        let shard_health: Vec<ShardHealth> =
            (0..config.shards).map(|_| ShardHealth::default()).collect();
        if let Some(flight) = &config.flight {
            wsn_telemetry::ensure_writable_dir(&flight.dir)
                .map_err(|e| std::io::Error::other(format!("flight dir: {e}")))?;
        }
        let state = Arc::new(ServerState {
            epoch: AtomicU64::new(map.epoch()),
            map_digest: AtomicU64::new(map_digest),
            map: RwLock::new(map),
            next_session: AtomicU64::new(1),
            session_count: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            shutdown_signal: (Mutex::new(false), Condvar::new()),
            conn_registry: Registry::new(),
            worker_registries,
            started: Instant::now(),
            shard_health,
            config,
        });

        let mut shard_txs = Vec::with_capacity(state.config.shards);
        let mut workers = Vec::with_capacity(state.config.shards);
        for shard in 0..state.config.shards {
            let (tx, rx) = sync_channel::<Job>(state.config.queue_depth);
            shard_txs.push(tx);
            let st = Arc::clone(&state);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("wsn-shard-{shard}"))
                    .spawn(move || worker_loop(shard, st, rx))
                    .expect("spawn shard worker"),
            );
        }

        let acceptor = {
            let st = Arc::clone(&state);
            let txs = shard_txs.clone();
            std::thread::Builder::new()
                .name("wsn-accept".into())
                .spawn(move || accept_loop(listener, st, txs))
                .expect("spawn acceptor")
        };

        let monitor = {
            let st = Arc::clone(&state);
            std::thread::Builder::new()
                .name("wsn-watchdog".into())
                .spawn(move || monitor_loop(st))
                .expect("spawn watchdog monitor")
        };

        Ok(Server {
            addr: local,
            state,
            shard_txs,
            acceptor: Some(acceptor),
            monitor: Some(monitor),
            workers,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions currently registered across all shards.
    pub fn session_count(&self) -> u64 {
        self.state.session_count.load(Ordering::SeqCst)
    }

    /// The current map epoch.
    pub fn epoch(&self) -> u64 {
        self.state.epoch.load(Ordering::SeqCst)
    }

    /// Digest of the current shared map.
    pub fn map_digest(&self) -> u64 {
        self.state.map_digest.load(Ordering::SeqCst)
    }

    /// Merged metrics: the connection plane plus every shard worker,
    /// folded in ascending shard order ([`Snapshot::merge_shards`]) so the
    /// merged snapshot does not depend on thread timing.
    pub fn metrics_snapshot(&self) -> Snapshot {
        merged_snapshot(&self.state)
    }

    /// Asks `session`'s owning shard for its current view of the session
    /// (the backing of `GET /sessions/<id>`). Never mutates session
    /// state. Returns `None` if the shard queue is full or the server is
    /// draining — callers should report "unavailable", not "unknown".
    pub fn query_session(&self, session: u64) -> Option<SessionView> {
        query_session_via(&self.state, &self.shard_txs, session)
    }

    /// Blocks until a client sends [`Frame::Shutdown`] or
    /// [`Server::shutdown`] runs.
    pub fn wait_shutdown(&self) {
        let (lock, cvar) = &self.state.shutdown_signal;
        let mut down = lock.lock().expect("shutdown lock poisoned");
        while !*down {
            down = cvar.wait(down).expect("shutdown lock poisoned");
        }
    }

    /// Stops accepting, drains the workers and joins them. Idempotent.
    pub fn shutdown(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        self.state.signal_shutdown();
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
        for tx in &self.shard_txs {
            let _ = tx.send(Job::Stop);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Shared implementation of session inspection for
/// [`Server::query_session`] and the ops plane (which holds the state and
/// shard senders without a `Server` handle).
pub(crate) fn query_session_via(
    state: &ServerState,
    txs: &[SyncSender<Job>],
    session: u64,
) -> Option<SessionView> {
    let shard = (session % txs.len() as u64) as usize;
    let (tx, rx) = mpsc::channel();
    match txs[shard].try_send(Job::Query { reply: tx, session }) {
        Ok(()) => {
            state.shard_health[shard]
                .queued
                .fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => return None,
    }
    rx.recv_timeout(Duration::from_secs(2)).ok()
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>, txs: Vec<SyncSender<Job>>) {
    let mut next_conn = 0u64;
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        next_conn += 1;
        let conn_id = next_conn;
        let st = Arc::clone(&state);
        let conn_txs = txs.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("wsn-conn-{conn_id}"))
            .spawn(move || conn_loop(stream, conn_id, st, conn_txs));
        if spawned.is_err() {
            // Out of threads: drop the connection rather than the server.
            continue;
        }
        state
            .conn_registry
            .counter("fttt.server.conns_opened")
            .inc();
    }
}

fn conn_loop(
    mut stream: TcpStream,
    conn_id: u64,
    state: Arc<ServerState>,
    txs: Vec<SyncSender<Job>>,
) {
    let (out_tx, out_rx) = mpsc::channel::<Vec<u8>>();
    let writer = {
        let Ok(write_half) = stream.try_clone() else {
            return;
        };
        std::thread::Builder::new()
            .name(format!("wsn-conn-{conn_id}-w"))
            .spawn(move || writer_loop(write_half, out_rx))
    };
    let Ok(writer) = writer else { return };

    let max_frame = state.config.max_frame;
    let shards = txs.len() as u64;
    loop {
        let (frame, trace) = match read_frame_traced(&mut stream, max_frame) {
            Ok(f) => f,
            Err(RecvError::Closed) | Err(RecvError::Io(_)) => break,
            Err(RecvError::Protocol(e)) => {
                // Answer the violation, then drop the connection: framing
                // is unrecoverable mid-stream.
                state
                    .conn_registry
                    .counter("fttt.server.decode_errors")
                    .inc();
                let code = match &e {
                    crate::wire::WireError::BadVersion(_) => ErrorCode::UnsupportedVersion,
                    crate::wire::WireError::Oversize { .. } => ErrorCode::Oversize,
                    _ => ErrorCode::Malformed,
                };
                let _ = out_tx.send(
                    Frame::Error {
                        code,
                        context: 0,
                        detail: e.to_string(),
                    }
                    .encode(),
                );
                break;
            }
        };
        state.conn_registry.counter("fttt.server.frames_in").inc();
        match frame {
            Frame::Open {
                client_tag,
                extended,
            } => {
                let session = state.next_session.fetch_add(1, Ordering::SeqCst);
                let shard = (session % shards) as usize;
                route(
                    &state,
                    shard,
                    &txs[shard],
                    &out_tx,
                    client_tag,
                    trace,
                    Job::Open {
                        reply: out_tx.clone(),
                        conn: conn_id,
                        client_tag,
                        session,
                        extended,
                        trace,
                    },
                );
            }
            Frame::Push { session, rounds } => {
                let shard = (session % shards) as usize;
                route(
                    &state,
                    shard,
                    &txs[shard],
                    &out_tx,
                    session,
                    trace,
                    Job::Push {
                        reply: out_tx.clone(),
                        session,
                        rounds,
                        trace,
                    },
                );
            }
            Frame::Close { session } => {
                let shard = (session % shards) as usize;
                route(
                    &state,
                    shard,
                    &txs[shard],
                    &out_tx,
                    session,
                    trace,
                    Job::Close {
                        reply: out_tx.clone(),
                        session,
                        trace,
                    },
                );
            }
            Frame::Churn { node, death } => {
                let reply = apply_churn(&state, node as usize, death);
                let _ = out_tx.send(reply.encode_traced(trace));
            }
            Frame::Shutdown => {
                let _ = out_tx.send(Frame::ShutdownAck.encode_traced(trace));
                state.conn_registry.counter("fttt.server.shutdowns").inc();
                state.signal_shutdown();
            }
            // Server-to-client frames arriving at the server are protocol
            // abuse; answer and drop.
            _ => {
                let _ = out_tx.send(
                    Frame::Error {
                        code: ErrorCode::Malformed,
                        context: 0,
                        detail: "client sent a server frame".into(),
                    }
                    .encode_traced(trace),
                );
                break;
            }
        }
    }

    // Sweep this connection's sessions from every shard. Blocking send:
    // cleanup must never be shed.
    for tx in &txs {
        let _ = tx.send(Job::ConnClosed { conn: conn_id });
    }
    state
        .conn_registry
        .counter("fttt.server.conns_closed")
        .inc();
    drop(out_tx);
    let _ = writer.join();
}

/// Routes `job` to its shard, shedding with [`ErrorCode::Overloaded`]
/// when the shard's bounded queue is full. `trace` is echoed in shed /
/// drain errors so a traced client can attribute them.
#[allow(clippy::too_many_arguments)]
fn route(
    state: &ServerState,
    shard: usize,
    tx: &SyncSender<Job>,
    out: &Sender<Vec<u8>>,
    context: u64,
    trace: u64,
    job: Job,
) {
    match tx.try_send(job) {
        Ok(()) => {
            state.shard_health[shard]
                .queued
                .fetch_add(1, Ordering::Relaxed);
        }
        Err(TrySendError::Full(_)) => {
            state.conn_registry.counter("fttt.server.shed").inc();
            if wsn_telemetry::journal_enabled() {
                wsn_telemetry::trace_instant(
                    "fttt.server.shed",
                    vec![
                        ("trace", ArgValue::Str(digest_hex(trace))),
                        ("shard", ArgValue::U64(shard as u64)),
                        ("context", ArgValue::U64(context)),
                    ],
                );
            }
            let _ = out.send(
                Frame::Error {
                    code: ErrorCode::Overloaded,
                    context,
                    detail: "shard ingest queue full; retry after draining replies".into(),
                }
                .encode_traced(trace),
            );
        }
        Err(TrySendError::Disconnected(_)) => {
            // Worker already stopped: the server is draining. This must
            // NOT be `Overloaded` — a client retrying a dead shard would
            // spin forever.
            let _ = out.send(
                Frame::Error {
                    code: ErrorCode::ShuttingDown,
                    context,
                    detail: "server is shutting down".into(),
                }
                .encode_traced(trace),
            );
        }
    }
}

/// Repairs the shared map for one churn event and installs the new epoch.
/// Runs on the connection thread under the map write lock — churn is rare
/// and the repair is incremental (PR 8), so stalling ingest briefly is the
/// honest cost of a topology change.
fn apply_churn(state: &ServerState, node: usize, death: bool) -> Frame {
    let mut guard = state.map.write().expect("map lock poisoned");
    let map = guard.as_ref();
    if node >= map.deployment().len() {
        return Frame::Error {
            code: ErrorCode::BadChurn,
            context: node as u64,
            detail: format!("node {node} outside the deployment"),
        };
    }
    if death && !map.is_node_live(node) {
        return Frame::Error {
            code: ErrorCode::BadChurn,
            context: node as u64,
            detail: format!("node {node} is already dead"),
        };
    }
    if !death && map.is_node_live(node) {
        return Frame::Error {
            code: ErrorCode::BadChurn,
            context: node as u64,
            detail: format!("node {node} is already live"),
        };
    }
    if death && map.live_nodes().len() <= 2 {
        return Frame::Error {
            code: ErrorCode::BadChurn,
            context: node as u64,
            detail: "a face map needs at least two live sensors".into(),
        };
    }
    let mut repaired = map.clone();
    if death {
        repaired.kill_node(node, RepairMode::Incremental);
    } else {
        repaired.revive_node(node, RepairMode::Incremental);
    }
    let epoch = repaired.epoch();
    let digest = digest_face_map(&repaired);
    *guard = Arc::new(repaired);
    state.epoch.store(epoch, Ordering::SeqCst);
    state.map_digest.store(digest, Ordering::SeqCst);
    state
        .conn_registry
        .counter("fttt.server.churn_repairs")
        .inc();
    Frame::ChurnAck {
        epoch,
        map_digest: digest,
    }
}

fn worker_loop(shard: usize, state: Arc<ServerState>, rx: Receiver<Job>) {
    let registry = Arc::clone(&state.worker_registries[shard]);
    let opened = registry.counter("fttt.server.sessions_opened");
    let closed = registry.counter("fttt.server.sessions_closed");
    let invalidated = registry.counter("fttt.server.sessions_invalidated");
    let dropped = registry.counter("fttt.server.sessions_dropped");
    let rounds_total = registry.counter("fttt.server.rounds");
    let batches = registry.counter("fttt.server.push_batches");
    let round_us = registry.histogram("fttt.server.round_us", DURATION_US_BUCKETS);
    let health = &state.shard_health[shard];
    let mut sessions: HashMap<u64, Entry> = HashMap::new();

    while let Ok(job) = rx.recv() {
        // Heartbeat: mark the worker busy on this job so the watchdog can
        // age a stuck one; `now_us` is clamped to ≥ 1 so 0 stays "idle".
        let _ = health
            .queued
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
        health
            .busy_since_us
            .store(state.now_us().max(1), Ordering::Relaxed);
        let _busy = BusyGuard(health);
        if let Some(stall) = state.config.ingest_stall {
            std::thread::sleep(stall);
        }
        match job {
            Job::Open {
                reply,
                conn,
                client_tag,
                session,
                extended,
                trace,
            } => {
                let before = state.session_count.fetch_add(1, Ordering::SeqCst);
                if before as usize >= state.config.max_sessions {
                    state.session_count.fetch_sub(1, Ordering::SeqCst);
                    let _ = reply.send(
                        Frame::Error {
                            code: ErrorCode::SessionLimit,
                            context: client_tag,
                            detail: format!("at capacity ({} sessions)", state.config.max_sessions),
                        }
                        .encode_traced(trace),
                    );
                    continue;
                }
                let map = Arc::clone(&state.map.read().expect("map lock poisoned"));
                let epoch = map.epoch();
                let tracker = Tracker::shared(map, state.config.tracker_options(extended));
                let entry = Entry {
                    session: TrackingSession::new(tracker, state.config.session_options())
                        .with_session_id(session),
                    conn,
                    epoch,
                    digest: Digest::new(),
                    rounds: 0,
                    last: None,
                };
                sessions.insert(session, entry);
                opened.inc();
                let _ = reply.send(
                    Frame::OpenAck {
                        client_tag,
                        session,
                        epoch,
                        map_digest: state.map_digest.load(Ordering::SeqCst),
                    }
                    .encode_traced(trace),
                );
            }
            Job::Push {
                reply,
                session,
                rounds,
                trace,
            } => {
                let Some(entry) = sessions.get_mut(&session) else {
                    let _ = reply.send(unknown_session(session).encode_traced(trace));
                    continue;
                };
                let current = state.epoch.load(Ordering::SeqCst);
                if entry.epoch != current {
                    // The map churned since this session opened: free the
                    // slot and tell the client to re-open.
                    let stale = entry.epoch;
                    sessions.remove(&session);
                    state.session_count.fetch_sub(1, Ordering::SeqCst);
                    invalidated.inc();
                    if wsn_telemetry::journal_enabled() {
                        wsn_telemetry::trace_instant(
                            "fttt.server.stale_epoch",
                            vec![
                                ("trace", ArgValue::Str(digest_hex(trace))),
                                ("session", ArgValue::U64(session)),
                                ("shard", ArgValue::U64(shard as u64)),
                                ("opened_epoch", ArgValue::U64(stale)),
                                ("current_epoch", ArgValue::U64(current)),
                            ],
                        );
                    }
                    let _ = reply.send(
                        Frame::Error {
                            code: ErrorCode::StaleEpoch,
                            context: session,
                            detail: format!("map epoch moved {stale} → {current}; re-open"),
                        }
                        .encode_traced(trace),
                    );
                    continue;
                }
                // A reading sized for a different deployment would panic
                // the matcher — and a panicking worker takes the whole
                // shard (and every session on it) down with it. Reject
                // the batch whole before touching the session, so the
                // digest stays intact and the shard stays alive.
                let expected = state.config.params.nodes;
                if let Some(bad) = rounds.iter().find(|r| r.group.node_count() != expected) {
                    let _ = reply.send(
                        Frame::Error {
                            code: ErrorCode::Malformed,
                            context: session,
                            detail: format!(
                                "reading has {} nodes; this server's map has {expected}",
                                bad.group.node_count()
                            ),
                        }
                        .encode_traced(trace),
                    );
                    continue;
                }
                let batch_started = Instant::now();
                let mut results = Vec::with_capacity(rounds.len());
                for r in &rounds {
                    let started = Instant::now();
                    let round = entry.session.step(r.t, &r.group);
                    round_us.observe(started.elapsed().as_secs_f64() * 1e6);
                    digest_round(&mut entry.digest, &round);
                    entry.rounds += 1;
                    results.push(RoundResult::from_round(&round));
                }
                entry.last = results.last().cloned();
                rounds_total.add(results.len() as u64);
                batches.inc();
                // The server half of cross-wire correlation: one event per
                // push batch keyed by the request's trace id (hex, the
                // full-range-u64 JSON convention), so `fttt-sim explain`
                // can join a client-side trace to the shard that served
                // it and the time it spent actually stepping rounds.
                if wsn_telemetry::journal_enabled() {
                    wsn_telemetry::trace_instant(
                        "fttt.server.push",
                        vec![
                            ("trace", ArgValue::Str(digest_hex(trace))),
                            ("session", ArgValue::U64(session)),
                            ("shard", ArgValue::U64(shard as u64)),
                            ("rounds", ArgValue::U64(results.len() as u64)),
                            (
                                "work_us",
                                ArgValue::F64(batch_started.elapsed().as_secs_f64() * 1e6),
                            ),
                        ],
                    );
                }
                let _ = reply.send(
                    Frame::Rounds {
                        session,
                        results,
                        digest: entry.digest.value(),
                    }
                    .encode_traced(trace),
                );
            }
            Job::Close {
                reply,
                session,
                trace,
            } => {
                let Some(entry) = sessions.remove(&session) else {
                    let _ = reply.send(unknown_session(session).encode_traced(trace));
                    continue;
                };
                state.session_count.fetch_sub(1, Ordering::SeqCst);
                closed.inc();
                let _ = reply.send(
                    Frame::CloseAck {
                        session,
                        rounds: entry.rounds,
                        digest: entry.digest.value(),
                    }
                    .encode_traced(trace),
                );
            }
            Job::Query { reply, session } => {
                let current = state.epoch.load(Ordering::SeqCst);
                let view = match sessions.get(&session) {
                    Some(entry) if entry.epoch == current => SessionView::Active(SessionStatus {
                        session,
                        epoch: entry.epoch,
                        rounds: entry.rounds,
                        digest: entry.digest.value(),
                        last: entry.last.clone(),
                    }),
                    Some(entry) => SessionView::Retired {
                        opened_epoch: entry.epoch,
                        current_epoch: current,
                    },
                    None => SessionView::Unknown {
                        current_epoch: current,
                    },
                };
                let _ = reply.send(view);
            }
            Job::ConnClosed { conn } => {
                let before = sessions.len();
                sessions.retain(|_, e| e.conn != conn);
                let swept = (before - sessions.len()) as u64;
                if swept > 0 {
                    state.session_count.fetch_sub(swept, Ordering::SeqCst);
                    dropped.add(swept);
                }
            }
            Job::Stop => break,
        }
    }
}

/// The watchdog monitor: every `watchdog_interval` it ages each shard's
/// busy heartbeat against `watchdog_stall` (flipping `ShardHealth::stalled`
/// and counting `fttt.server.watchdog.stalls` once per transition) and,
/// when a flight recorder is configured, checks its burst triggers and
/// dumps evidence. Exits promptly on shutdown via the shared condvar.
fn monitor_loop(state: Arc<ServerState>) {
    let stalls = state.conn_registry.counter("fttt.server.watchdog.stalls");
    let stall_us = state.config.watchdog_stall.as_micros() as u64;
    let mut dumps_written = 0usize;
    let mut last_shed = 0u64;
    let mut last_stale = 0u64;
    loop {
        {
            let (lock, cvar) = &state.shutdown_signal;
            let down = lock.lock().expect("shutdown lock poisoned");
            if *down {
                break;
            }
            let (down, _) = cvar
                .wait_timeout(down, state.config.watchdog_interval)
                .expect("shutdown lock poisoned");
            if *down {
                break;
            }
        }
        let now = state.now_us();
        let mut new_stall = false;
        for health in &state.shard_health {
            let busy = health.busy_since_us.load(Ordering::Relaxed);
            let stalled_now = busy != 0 && now.saturating_sub(busy) > stall_us;
            let was = health.stalled.swap(stalled_now, Ordering::Relaxed);
            if stalled_now && !was {
                stalls.inc();
                new_stall = true;
            }
        }
        let Some(flight) = &state.config.flight else {
            continue;
        };
        let snap = merged_snapshot(&state);
        let shed = snap.counters.get("fttt.server.shed").copied().unwrap_or(0);
        let stale = snap
            .counters
            .get("fttt.server.sessions_invalidated")
            .copied()
            .unwrap_or(0);
        let shed_delta = shed.saturating_sub(last_shed);
        let stale_delta = stale.saturating_sub(last_stale);
        last_shed = shed;
        last_stale = stale;
        let reason = if new_stall {
            Some("stall")
        } else if shed_delta >= flight.shed_burst {
            Some("shed-burst")
        } else if stale_delta >= flight.stale_burst {
            Some("stale-storm")
        } else {
            None
        };
        let Some(reason) = reason else { continue };
        if dumps_written >= flight.max_dumps {
            state
                .conn_registry
                .counter("fttt.server.flight.suppressed")
                .inc();
            continue;
        }
        dumps_written += 1;
        flight_dump(&state, flight, reason, dumps_written, snap);
    }
}

/// Writes one flight-recorder dump: the journal ring as
/// `flight-<unix_secs>-<seq>-<reason>.trace.jsonl` and the merged metrics
/// as the matching `.metrics.json`, both via atomic tmp+rename so a
/// concurrent reader never sees a torn file. With no journal installed the
/// trace file is written empty — the metrics half still captures the
/// anomaly.
fn flight_dump(
    state: &ServerState,
    flight: &FlightConfig,
    reason: &str,
    seq: usize,
    snap: Snapshot,
) {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let stem = format!("flight-{secs}-{seq}-{reason}");
    let mut trace = String::new();
    wsn_telemetry::with_journal(|j| trace = j.snapshot().to_jsonl());
    let mut ok = true;
    let trace_path = flight.dir.join(format!("{stem}.trace.jsonl"));
    if let Err(e) = wsn_telemetry::write_file_atomic(&trace_path, trace.as_bytes()) {
        eprintln!("flight recorder: {e}");
        ok = false;
    }
    let metrics_path = flight.dir.join(format!("{stem}.metrics.json"));
    if let Err(e) = wsn_telemetry::write_file_atomic(&metrics_path, snap.to_json().as_bytes()) {
        eprintln!("flight recorder: {e}");
        ok = false;
    }
    if ok {
        state
            .conn_registry
            .counter("fttt.server.flight.dumps")
            .inc();
    }
}

fn unknown_session(session: u64) -> Frame {
    Frame::Error {
        code: ErrorCode::UnknownSession,
        context: session,
        detail: format!("session {session} is not registered on this shard"),
    }
}

fn writer_loop(mut stream: TcpStream, rx: mpsc::Receiver<Vec<u8>>) {
    use std::io::Write;
    while let Ok(buf) = rx.recv() {
        if stream.write_all(&buf).is_err() {
            break;
        }
    }
    let _ = stream.flush();
}
