//! The sharded tracking server.
//!
//! One process hosts tens of thousands of [`TrackingSession`]s over a
//! single shared [`FaceMap`]:
//!
//! * an **acceptor** thread takes TCP connections; each connection gets a
//!   blocking **reader** thread (frame parse + route) and a **writer**
//!   thread (drains an outbound byte queue);
//! * `shards` **worker** threads own disjoint slices of the session
//!   registry (`session_id % shards`); every session mutation happens on
//!   its owning worker, so session state needs no locks at all;
//! * workers are fed through **bounded** queues. When a shard's queue is
//!   full the reader sheds the batch immediately with
//!   [`ErrorCode::Overloaded`] instead of buffering without bound — the
//!   session is untouched and the client retries after draining replies;
//! * the map is **epoch-checked**: a churn repair installs a new map and
//!   bumps the epoch; sessions bound to an older epoch are invalidated
//!   (and their slots freed) on their next touch with
//!   [`ErrorCode::StaleEpoch`].

use crate::wire::{
    read_frame, ErrorCode, Frame, ReadingRound, RecvError, RoundResult, DEFAULT_MAX_FRAME,
};
use fttt::replay::{digest_face_map, digest_round, Digest};
use fttt::session::{SessionOptions, TrackingSession};
use fttt::tracker::{Tracker, TrackerOptions};
use fttt::{FaceMap, PaperParams, RepairMode};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wsn_telemetry::{Registry, Snapshot, DURATION_US_BUCKETS};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads / registry shards.
    pub shards: usize,
    /// Bounded depth of each shard's ingest queue, in jobs. A full queue
    /// sheds with [`ErrorCode::Overloaded`].
    pub queue_depth: usize,
    /// Hard cap on concurrently open sessions across all shards.
    pub max_sessions: usize,
    /// Per-connection payload bound, bytes.
    pub max_frame: u32,
    /// The field/deployment the shared map is built from. Every session
    /// matches against this one map.
    pub params: PaperParams,
    /// Fault-injection hook: stall each worker job this long before
    /// processing. `None` in production; tests use it to make
    /// backpressure sheds deterministic.
    pub ingest_stall: Option<Duration>,
}

impl ServerConfig {
    /// A server over `params` with production-ish defaults.
    pub fn new(params: PaperParams) -> Self {
        ServerConfig {
            shards: 4,
            queue_depth: 256,
            max_sessions: 200_000,
            max_frame: DEFAULT_MAX_FRAME,
            params,
            ingest_stall: None,
        }
    }

    /// A small-map configuration (8 nodes, 2 m cells — the fault
    /// campaign's fast geometry) for tests and smoke runs.
    pub fn fast() -> Self {
        Self::new(PaperParams::default().with_nodes(8).with_cell_size(2.0))
    }

    /// The tracker options every server session runs with — the fault
    /// campaign's configuration (heuristic matching, optionally extended
    /// vectors), so wire results are comparable to campaign runs.
    pub fn tracker_options(&self, extended: bool) -> TrackerOptions {
        if extended {
            TrackerOptions {
                extended: true,
                ..TrackerOptions::heuristic()
            }
        } else {
            TrackerOptions::heuristic()
        }
    }

    /// The session options every server session runs with (mirrors the
    /// fault campaign). Clients use this to build bit-identical shadow
    /// sessions.
    pub fn session_options(&self) -> SessionOptions {
        SessionOptions::new(self.params.samples_k).with_max_speed(self.params.max_speed)
    }
}

/// One registered session on a worker.
struct Entry {
    session: TrackingSession,
    conn: u64,
    epoch: u64,
    digest: Digest,
    rounds: u64,
}

/// Work routed to a shard worker. Replies travel back through the
/// connection's outbound byte queue.
enum Job {
    Open {
        reply: Sender<Vec<u8>>,
        conn: u64,
        client_tag: u64,
        session: u64,
        extended: bool,
    },
    Push {
        reply: Sender<Vec<u8>>,
        session: u64,
        rounds: Vec<ReadingRound>,
    },
    Close {
        reply: Sender<Vec<u8>>,
        session: u64,
    },
    ConnClosed {
        conn: u64,
    },
    Stop,
}

struct ServerState {
    config: ServerConfig,
    /// The current shared map. Replaced wholesale by churn repairs;
    /// sessions keep their `Arc` until invalidated.
    map: RwLock<Arc<FaceMap>>,
    /// Mirrors `map.epoch()` for lock-free stale checks on the hot path.
    epoch: AtomicU64,
    map_digest: AtomicU64,
    next_session: AtomicU64,
    session_count: AtomicU64,
    shutdown: AtomicBool,
    shutdown_signal: (Mutex<bool>, Condvar),
    /// Connection-plane metrics (frame counts, decode errors, sheds).
    conn_registry: Registry,
    /// One registry per shard worker, merged deterministically by
    /// [`Server::metrics_snapshot`].
    worker_registries: Vec<Arc<Registry>>,
}

impl ServerState {
    fn signal_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let (lock, cvar) = &self.shutdown_signal;
        *lock.lock().expect("shutdown lock poisoned") = true;
        cvar.notify_all();
    }
}

/// A running tracking server. Dropping it shuts it down.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    shard_txs: Vec<SyncSender<Job>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Builds the shared map from `config.params`, binds `addr`
    /// (`"127.0.0.1:0"` picks a free port) and starts the acceptor and
    /// worker threads.
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        assert!(config.shards > 0, "need at least one shard");
        assert!(config.queue_depth > 0, "need a positive queue depth");
        let field = config.params.grid_field();
        let map = Arc::new(config.params.face_map(&field));
        let map_digest = digest_face_map(&map);
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;

        let worker_registries: Vec<Arc<Registry>> = (0..config.shards)
            .map(|_| Arc::new(Registry::new()))
            .collect();
        let state = Arc::new(ServerState {
            epoch: AtomicU64::new(map.epoch()),
            map_digest: AtomicU64::new(map_digest),
            map: RwLock::new(map),
            next_session: AtomicU64::new(1),
            session_count: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            shutdown_signal: (Mutex::new(false), Condvar::new()),
            conn_registry: Registry::new(),
            worker_registries,
            config,
        });

        let mut shard_txs = Vec::with_capacity(state.config.shards);
        let mut workers = Vec::with_capacity(state.config.shards);
        for shard in 0..state.config.shards {
            let (tx, rx) = sync_channel::<Job>(state.config.queue_depth);
            shard_txs.push(tx);
            let st = Arc::clone(&state);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("wsn-shard-{shard}"))
                    .spawn(move || worker_loop(shard, st, rx))
                    .expect("spawn shard worker"),
            );
        }

        let acceptor = {
            let st = Arc::clone(&state);
            let txs = shard_txs.clone();
            std::thread::Builder::new()
                .name("wsn-accept".into())
                .spawn(move || accept_loop(listener, st, txs))
                .expect("spawn acceptor")
        };

        Ok(Server {
            addr: local,
            state,
            shard_txs,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions currently registered across all shards.
    pub fn session_count(&self) -> u64 {
        self.state.session_count.load(Ordering::SeqCst)
    }

    /// The current map epoch.
    pub fn epoch(&self) -> u64 {
        self.state.epoch.load(Ordering::SeqCst)
    }

    /// Digest of the current shared map.
    pub fn map_digest(&self) -> u64 {
        self.state.map_digest.load(Ordering::SeqCst)
    }

    /// Merged metrics: the connection plane plus every shard worker,
    /// folded in ascending shard order ([`Snapshot::merge_shards`]) so the
    /// merged snapshot does not depend on thread timing.
    pub fn metrics_snapshot(&self) -> Snapshot {
        let parts: Vec<(usize, Snapshot)> = self
            .state
            .worker_registries
            .iter()
            .enumerate()
            .map(|(i, r)| (i, r.snapshot()))
            .collect();
        let mut merged = Snapshot::merge_shards(parts);
        // Connection-plane names are disjoint from worker names, so this
        // final fold is order-insensitive.
        merged.merge(&self.state.conn_registry.snapshot());
        merged
    }

    /// Blocks until a client sends [`Frame::Shutdown`] or
    /// [`Server::shutdown`] runs.
    pub fn wait_shutdown(&self) {
        let (lock, cvar) = &self.state.shutdown_signal;
        let mut down = lock.lock().expect("shutdown lock poisoned");
        while !*down {
            down = cvar.wait(down).expect("shutdown lock poisoned");
        }
    }

    /// Stops accepting, drains the workers and joins them. Idempotent.
    pub fn shutdown(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        self.state.signal_shutdown();
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for tx in &self.shard_txs {
            let _ = tx.send(Job::Stop);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>, txs: Vec<SyncSender<Job>>) {
    let mut next_conn = 0u64;
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        next_conn += 1;
        let conn_id = next_conn;
        let st = Arc::clone(&state);
        let conn_txs = txs.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("wsn-conn-{conn_id}"))
            .spawn(move || conn_loop(stream, conn_id, st, conn_txs));
        if spawned.is_err() {
            // Out of threads: drop the connection rather than the server.
            continue;
        }
        state
            .conn_registry
            .counter("fttt.server.conns_opened")
            .inc();
    }
}

fn conn_loop(
    mut stream: TcpStream,
    conn_id: u64,
    state: Arc<ServerState>,
    txs: Vec<SyncSender<Job>>,
) {
    let (out_tx, out_rx) = mpsc::channel::<Vec<u8>>();
    let writer = {
        let Ok(write_half) = stream.try_clone() else {
            return;
        };
        std::thread::Builder::new()
            .name(format!("wsn-conn-{conn_id}-w"))
            .spawn(move || writer_loop(write_half, out_rx))
    };
    let Ok(writer) = writer else { return };

    let max_frame = state.config.max_frame;
    let shards = txs.len() as u64;
    loop {
        let frame = match read_frame(&mut stream, max_frame) {
            Ok(f) => f,
            Err(RecvError::Closed) | Err(RecvError::Io(_)) => break,
            Err(RecvError::Protocol(e)) => {
                // Answer the violation, then drop the connection: framing
                // is unrecoverable mid-stream.
                state
                    .conn_registry
                    .counter("fttt.server.decode_errors")
                    .inc();
                let code = match &e {
                    crate::wire::WireError::BadVersion(_) => ErrorCode::UnsupportedVersion,
                    crate::wire::WireError::Oversize { .. } => ErrorCode::Oversize,
                    _ => ErrorCode::Malformed,
                };
                let _ = out_tx.send(
                    Frame::Error {
                        code,
                        context: 0,
                        detail: e.to_string(),
                    }
                    .encode(),
                );
                break;
            }
        };
        state.conn_registry.counter("fttt.server.frames_in").inc();
        match frame {
            Frame::Open {
                client_tag,
                extended,
            } => {
                let session = state.next_session.fetch_add(1, Ordering::SeqCst);
                let shard = (session % shards) as usize;
                route(
                    &state,
                    &txs[shard],
                    &out_tx,
                    client_tag,
                    Job::Open {
                        reply: out_tx.clone(),
                        conn: conn_id,
                        client_tag,
                        session,
                        extended,
                    },
                );
            }
            Frame::Push { session, rounds } => {
                let shard = (session % shards) as usize;
                route(
                    &state,
                    &txs[shard],
                    &out_tx,
                    session,
                    Job::Push {
                        reply: out_tx.clone(),
                        session,
                        rounds,
                    },
                );
            }
            Frame::Close { session } => {
                let shard = (session % shards) as usize;
                route(
                    &state,
                    &txs[shard],
                    &out_tx,
                    session,
                    Job::Close {
                        reply: out_tx.clone(),
                        session,
                    },
                );
            }
            Frame::Churn { node, death } => {
                let reply = apply_churn(&state, node as usize, death);
                let _ = out_tx.send(reply.encode());
            }
            Frame::Shutdown => {
                let _ = out_tx.send(Frame::ShutdownAck.encode());
                state.conn_registry.counter("fttt.server.shutdowns").inc();
                state.signal_shutdown();
            }
            // Server-to-client frames arriving at the server are protocol
            // abuse; answer and drop.
            _ => {
                let _ = out_tx.send(
                    Frame::Error {
                        code: ErrorCode::Malformed,
                        context: 0,
                        detail: "client sent a server frame".into(),
                    }
                    .encode(),
                );
                break;
            }
        }
    }

    // Sweep this connection's sessions from every shard. Blocking send:
    // cleanup must never be shed.
    for tx in &txs {
        let _ = tx.send(Job::ConnClosed { conn: conn_id });
    }
    state
        .conn_registry
        .counter("fttt.server.conns_closed")
        .inc();
    drop(out_tx);
    let _ = writer.join();
}

/// Routes `job` to its shard, shedding with [`ErrorCode::Overloaded`]
/// when the shard's bounded queue is full.
fn route(state: &ServerState, tx: &SyncSender<Job>, out: &Sender<Vec<u8>>, context: u64, job: Job) {
    match tx.try_send(job) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            state.conn_registry.counter("fttt.server.shed").inc();
            let _ = out.send(
                Frame::Error {
                    code: ErrorCode::Overloaded,
                    context,
                    detail: "shard ingest queue full; retry after draining replies".into(),
                }
                .encode(),
            );
        }
        Err(TrySendError::Disconnected(_)) => {
            // Worker already stopped: the server is draining. This must
            // NOT be `Overloaded` — a client retrying a dead shard would
            // spin forever.
            let _ = out.send(
                Frame::Error {
                    code: ErrorCode::ShuttingDown,
                    context,
                    detail: "server is shutting down".into(),
                }
                .encode(),
            );
        }
    }
}

/// Repairs the shared map for one churn event and installs the new epoch.
/// Runs on the connection thread under the map write lock — churn is rare
/// and the repair is incremental (PR 8), so stalling ingest briefly is the
/// honest cost of a topology change.
fn apply_churn(state: &ServerState, node: usize, death: bool) -> Frame {
    let mut guard = state.map.write().expect("map lock poisoned");
    let map = guard.as_ref();
    if node >= map.deployment().len() {
        return Frame::Error {
            code: ErrorCode::BadChurn,
            context: node as u64,
            detail: format!("node {node} outside the deployment"),
        };
    }
    if death && !map.is_node_live(node) {
        return Frame::Error {
            code: ErrorCode::BadChurn,
            context: node as u64,
            detail: format!("node {node} is already dead"),
        };
    }
    if !death && map.is_node_live(node) {
        return Frame::Error {
            code: ErrorCode::BadChurn,
            context: node as u64,
            detail: format!("node {node} is already live"),
        };
    }
    if death && map.live_nodes().len() <= 2 {
        return Frame::Error {
            code: ErrorCode::BadChurn,
            context: node as u64,
            detail: "a face map needs at least two live sensors".into(),
        };
    }
    let mut repaired = map.clone();
    if death {
        repaired.kill_node(node, RepairMode::Incremental);
    } else {
        repaired.revive_node(node, RepairMode::Incremental);
    }
    let epoch = repaired.epoch();
    let digest = digest_face_map(&repaired);
    *guard = Arc::new(repaired);
    state.epoch.store(epoch, Ordering::SeqCst);
    state.map_digest.store(digest, Ordering::SeqCst);
    state
        .conn_registry
        .counter("fttt.server.churn_repairs")
        .inc();
    Frame::ChurnAck {
        epoch,
        map_digest: digest,
    }
}

fn worker_loop(shard: usize, state: Arc<ServerState>, rx: Receiver<Job>) {
    let registry = Arc::clone(&state.worker_registries[shard]);
    let opened = registry.counter("fttt.server.sessions_opened");
    let closed = registry.counter("fttt.server.sessions_closed");
    let invalidated = registry.counter("fttt.server.sessions_invalidated");
    let dropped = registry.counter("fttt.server.sessions_dropped");
    let rounds_total = registry.counter("fttt.server.rounds");
    let batches = registry.counter("fttt.server.push_batches");
    let round_us = registry.histogram("fttt.server.round_us", DURATION_US_BUCKETS);
    let mut sessions: HashMap<u64, Entry> = HashMap::new();

    while let Ok(job) = rx.recv() {
        if let Some(stall) = state.config.ingest_stall {
            std::thread::sleep(stall);
        }
        match job {
            Job::Open {
                reply,
                conn,
                client_tag,
                session,
                extended,
            } => {
                let before = state.session_count.fetch_add(1, Ordering::SeqCst);
                if before as usize >= state.config.max_sessions {
                    state.session_count.fetch_sub(1, Ordering::SeqCst);
                    let _ = reply.send(
                        Frame::Error {
                            code: ErrorCode::SessionLimit,
                            context: client_tag,
                            detail: format!("at capacity ({} sessions)", state.config.max_sessions),
                        }
                        .encode(),
                    );
                    continue;
                }
                let map = Arc::clone(&state.map.read().expect("map lock poisoned"));
                let epoch = map.epoch();
                let tracker = Tracker::shared(map, state.config.tracker_options(extended));
                let entry = Entry {
                    session: TrackingSession::new(tracker, state.config.session_options())
                        .with_session_id(session),
                    conn,
                    epoch,
                    digest: Digest::new(),
                    rounds: 0,
                };
                sessions.insert(session, entry);
                opened.inc();
                let _ = reply.send(
                    Frame::OpenAck {
                        client_tag,
                        session,
                        epoch,
                        map_digest: state.map_digest.load(Ordering::SeqCst),
                    }
                    .encode(),
                );
            }
            Job::Push {
                reply,
                session,
                rounds,
            } => {
                let Some(entry) = sessions.get_mut(&session) else {
                    let _ = reply.send(unknown_session(session).encode());
                    continue;
                };
                let current = state.epoch.load(Ordering::SeqCst);
                if entry.epoch != current {
                    // The map churned since this session opened: free the
                    // slot and tell the client to re-open.
                    let stale = entry.epoch;
                    sessions.remove(&session);
                    state.session_count.fetch_sub(1, Ordering::SeqCst);
                    invalidated.inc();
                    let _ = reply.send(
                        Frame::Error {
                            code: ErrorCode::StaleEpoch,
                            context: session,
                            detail: format!("map epoch moved {stale} → {current}; re-open"),
                        }
                        .encode(),
                    );
                    continue;
                }
                // A reading sized for a different deployment would panic
                // the matcher — and a panicking worker takes the whole
                // shard (and every session on it) down with it. Reject
                // the batch whole before touching the session, so the
                // digest stays intact and the shard stays alive.
                let expected = state.config.params.nodes;
                if let Some(bad) = rounds.iter().find(|r| r.group.node_count() != expected) {
                    let _ = reply.send(
                        Frame::Error {
                            code: ErrorCode::Malformed,
                            context: session,
                            detail: format!(
                                "reading has {} nodes; this server's map has {expected}",
                                bad.group.node_count()
                            ),
                        }
                        .encode(),
                    );
                    continue;
                }
                let mut results = Vec::with_capacity(rounds.len());
                for r in &rounds {
                    let started = Instant::now();
                    let round = entry.session.step(r.t, &r.group);
                    round_us.observe(started.elapsed().as_secs_f64() * 1e6);
                    digest_round(&mut entry.digest, &round);
                    entry.rounds += 1;
                    results.push(RoundResult::from_round(&round));
                }
                rounds_total.add(results.len() as u64);
                batches.inc();
                let _ = reply.send(
                    Frame::Rounds {
                        session,
                        results,
                        digest: entry.digest.value(),
                    }
                    .encode(),
                );
            }
            Job::Close { reply, session } => {
                let Some(entry) = sessions.remove(&session) else {
                    let _ = reply.send(unknown_session(session).encode());
                    continue;
                };
                state.session_count.fetch_sub(1, Ordering::SeqCst);
                closed.inc();
                let _ = reply.send(
                    Frame::CloseAck {
                        session,
                        rounds: entry.rounds,
                        digest: entry.digest.value(),
                    }
                    .encode(),
                );
            }
            Job::ConnClosed { conn } => {
                let before = sessions.len();
                sessions.retain(|_, e| e.conn != conn);
                let swept = (before - sessions.len()) as u64;
                if swept > 0 {
                    state.session_count.fetch_sub(swept, Ordering::SeqCst);
                    dropped.add(swept);
                }
            }
            Job::Stop => break,
        }
    }
}

fn unknown_session(session: u64) -> Frame {
    Frame::Error {
        code: ErrorCode::UnknownSession,
        context: session,
        detail: format!("session {session} is not registered on this shard"),
    }
}

fn writer_loop(mut stream: TcpStream, rx: mpsc::Receiver<Vec<u8>>) {
    use std::io::Write;
    while let Ok(buf) = rx.recv() {
        if stream.write_all(&buf).is_err() {
            break;
        }
    }
    let _ = stream.flush();
}
