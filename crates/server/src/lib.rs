//! Tracking-as-a-service: the FTTT engine behind a TCP wire.
//!
//! After eight PRs the self-healing tracking core was still driven only by
//! in-process benches. This crate makes it a *system under load*: a
//! length-prefixed binary protocol ([`wire`]), a session registry sharded
//! across worker threads over **one** shared immutable [`fttt::FaceMap`]
//! ([`server`]), bounded ingest queues that shed explicitly instead of
//! buffering without bound, and epoch-checked invalidation so the PR-8
//! churn repairs retire stale sessions cleanly.
//!
//! The determinism contract carries over the wire unchanged: the server
//! folds every round through [`fttt::replay::digest_round`] and reports
//! the running digest with each reply, so a client running a shadow
//! in-process [`fttt::session::TrackingSession`] on the same readings can
//! check **bit-identity** end-to-end — the `serve_smoke` tier-1 test and
//! the `serve_load` generator both do.
//!
//! Robustness stance (the trust-model papers' lesson applied to the
//! transport): a hostile or broken client can produce truncated frames,
//! absurd length prefixes, wrong versions, unknown sessions — the server
//! answers each with a typed [`wire::ErrorCode`], frees whatever the
//! connection owned, and keeps serving everyone else.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod ops;
pub mod server;
pub mod wire;

pub use client::{ClientError, Connection, OpenInfo};
pub use ops::{OpsError, OpsHandle};
pub use server::{FlightConfig, Server, ServerConfig, SessionStatus, SessionView};
pub use wire::{
    read_frame, read_frame_traced, write_frame, write_frame_traced, ErrorCode, Frame, ReadingRound,
    RecvError, RoundResult, WireError, DEFAULT_MAX_FRAME, MAX_ROUNDS_PER_PUSH, WIRE_VERSION,
    WIRE_VERSION_TRACED,
};
