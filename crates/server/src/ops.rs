//! The live ops plane: a second, tiny HTTP/1.1 listener beside the wire
//! protocol.
//!
//! Production tracking servers need to answer "is it healthy and what is
//! it doing" without a custom client. [`Server::serve_ops`] binds a
//! separate port (so an ops scrape can never contend with ingest framing)
//! and serves three read-only endpoints over hand-rolled std-only
//! HTTP/1.1:
//!
//! * `GET /metrics` — the merged live [`Snapshot`] in Prometheus text
//!   exposition 0.0.4 (`Snapshot::to_prometheus`), scrapeable by any
//!   stock collector;
//! * `GET /healthz` — per-shard liveness JSON (queue depth, busy age,
//!   jobs done, watchdog verdict) plus epoch and session count; `200`
//!   when every shard is live, `503` when the watchdog has any shard
//!   stalled;
//! * `GET /sessions/<id>` — the owning shard's view of one session
//!   ([`SessionView`]): `200` with status/rounds/digest/last-round when
//!   active, `404` **with the epochs in the body** when retired or
//!   unknown, `503` when the shard queue is full.
//!
//! The parser is deliberately inhospitable: requests are capped at 8 KiB,
//! anything that is not a well-formed `GET` start-line is answered `400`
//! and the connection dropped, and reads carry a short timeout so a
//! slow-loris client cannot wedge the ops thread. The serve loop itself is
//! untouched by anything that happens here — the ops plane only ever
//! *reads* server state (session inspection goes through the same bounded
//! shard queues as real work, as a [`Job::Query`] that never mutates).

use crate::server::{merged_snapshot, Server, SessionView};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use wsn_network::replay::digest_hex;
use wsn_telemetry::json::{format_f64, format_str};

/// Largest request head (start-line + headers) the ops parser will read.
/// Anything longer is answered `400` and dropped.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Per-connection socket timeout: an ops client that stops sending (or
/// reading) gets its connection closed instead of wedging the ops thread.
const OPS_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Why the ops plane could not start.
#[derive(Debug)]
pub enum OpsError {
    /// The ops address could not be bound (typically already in use).
    /// The tracking serve loop is unaffected — callers decide whether a
    /// missing ops plane is fatal.
    Bind {
        /// The address that failed to bind.
        addr: String,
        /// The underlying socket error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for OpsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpsError::Bind { addr, source } => {
                write!(f, "cannot bind ops listener on {addr}: {source}")
            }
        }
    }
}

impl std::error::Error for OpsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OpsError::Bind { source, .. } => Some(source),
        }
    }
}

/// A running ops listener. Dropping it stops the listener thread; the
/// tracking server it observes keeps running.
pub struct OpsHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl OpsHandle {
    /// The bound ops address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the ops listener and joins its thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.thread.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for OpsHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Server {
    /// Binds the ops plane on `addr` (`"127.0.0.1:0"` picks a free port)
    /// and starts serving `/metrics`, `/healthz` and `/sessions/<id>`.
    ///
    /// Failure to bind returns [`OpsError::Bind`] naming the address; the
    /// tracking listener keeps serving either way.
    pub fn serve_ops(&self, addr: &str) -> Result<OpsHandle, OpsError> {
        let listener = TcpListener::bind(addr).map_err(|source| OpsError::Bind {
            addr: addr.to_string(),
            source,
        })?;
        let local = listener.local_addr().map_err(|source| OpsError::Bind {
            addr: addr.to_string(),
            source,
        })?;
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::clone(&self.state);
        let txs = self.shard_txs.clone();
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("wsn-ops".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Requests are tiny and read-only; serving them
                    // serially keeps the plane to one thread and bounds
                    // the damage any one client can do to other scrapers.
                    handle_conn(stream, &state, &txs);
                }
            })
            .map_err(|source| OpsError::Bind {
                addr: addr.to_string(),
                source,
            })?;
        Ok(OpsHandle {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }
}

fn handle_conn(
    mut stream: TcpStream,
    state: &Arc<crate::server::ServerState>,
    txs: &[std::sync::mpsc::SyncSender<crate::server::Job>],
) {
    let _ = stream.set_read_timeout(Some(OPS_IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(OPS_IO_TIMEOUT));
    let path = match read_request_path(&mut stream) {
        Ok(path) => path,
        Err(reason) => {
            // Malformed or oversized request: answer 400 and drop the
            // connection without touching server state.
            respond(
                &mut stream,
                400,
                "Bad Request",
                "text/plain; charset=utf-8",
                &format!("bad request: {reason}\n"),
            );
            return;
        }
    };
    match path.as_str() {
        "/metrics" => {
            let text = merged_snapshot(state).to_prometheus();
            respond(
                &mut stream,
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &text,
            );
        }
        "/healthz" => {
            let (degraded, body) = healthz_json(state);
            if degraded {
                respond(
                    &mut stream,
                    503,
                    "Service Unavailable",
                    "application/json",
                    &body,
                );
            } else {
                respond(&mut stream, 200, "OK", "application/json", &body);
            }
        }
        p if p.starts_with("/sessions/") => {
            let id = &p["/sessions/".len()..];
            match id.parse::<u64>() {
                Ok(session) => serve_session(&mut stream, state, txs, session),
                Err(_) => respond(
                    &mut stream,
                    400,
                    "Bad Request",
                    "text/plain; charset=utf-8",
                    &format!("session id must be a decimal u64, got {id:?}\n"),
                ),
            }
        }
        _ => respond(
            &mut stream,
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            "unknown path; ops endpoints are /metrics, /healthz, /sessions/<id>\n",
        ),
    }
}

/// Reads and validates the request head, returning the path of a
/// well-formed `GET`. Any deviation — too large, not UTF-8 start-line,
/// wrong method or HTTP version marker — is an error string for the 400
/// body.
fn read_request_path(stream: &mut TcpStream) -> Result<String, String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        // A complete head ends in a blank line; stop early once we have
        // the start-line, headers are irrelevant to routing.
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if buf.len() >= MAX_REQUEST_BYTES {
            return Err(format!("request head exceeds {MAX_REQUEST_BYTES} bytes"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Err("read failed or timed out".into()),
        }
    }
    let head = std::str::from_utf8(&buf).map_err(|_| "request is not UTF-8".to_string())?;
    let start_line = head.lines().next().unwrap_or("");
    let mut parts = start_line.split_whitespace();
    let (method, path, version) = (
        parts.next().unwrap_or(""),
        parts.next().unwrap_or(""),
        parts.next().unwrap_or(""),
    );
    if method != "GET" {
        return Err(format!("only GET is supported, got {method:?}"));
    }
    if !path.starts_with('/') {
        return Err(format!("path must start with '/', got {path:?}"));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version:?}"));
    }
    Ok(path.to_string())
}

/// Per-shard liveness JSON for `/healthz`. Returns `(degraded, body)`;
/// degraded iff the watchdog currently has any shard flagged stalled.
fn healthz_json(state: &crate::server::ServerState) -> (bool, String) {
    let now = state.now_us();
    let mut degraded = false;
    let mut shards = Vec::with_capacity(state.shard_health.len());
    for (i, h) in state.shard_health.iter().enumerate() {
        let busy = h.busy_since_us.load(Ordering::Relaxed);
        let stalled = h.stalled.load(Ordering::Relaxed);
        degraded |= stalled;
        shards.push(format!(
            "{{\"shard\":{i},\"queued\":{},\"busy_us\":{},\"jobs_done\":{},\"stalled\":{stalled}}}",
            h.queued.load(Ordering::Relaxed),
            if busy == 0 {
                0
            } else {
                now.saturating_sub(busy)
            },
            h.jobs_done.load(Ordering::Relaxed),
        ));
    }
    let body = format!(
        "{{\"status\":{},\"epoch\":{},\"sessions\":{},\"uptime_us\":{now},\"shards\":[{}]}}\n",
        if degraded { "\"degraded\"" } else { "\"ok\"" },
        state.epoch.load(Ordering::SeqCst),
        state.session_count.load(Ordering::SeqCst),
        shards.join(",")
    );
    (degraded, body)
}

fn serve_session(
    stream: &mut TcpStream,
    state: &Arc<crate::server::ServerState>,
    txs: &[std::sync::mpsc::SyncSender<crate::server::Job>],
    session: u64,
) {
    match crate::server::query_session_via(state, txs, session) {
        Some(SessionView::Active(s)) => {
            let last = match &s.last {
                Some(r) => format!(
                    "{{\"round\":{},\"t\":{},\"x\":{},\"y\":{},\"status\":{},\"face\":{}}}",
                    r.round,
                    format_f64(r.t),
                    format_f64(r.x),
                    format_f64(r.y),
                    r.status,
                    r.face
                ),
                None => "null".into(),
            };
            let body = format!(
                "{{\"status\":\"active\",\"session\":{},\"epoch\":{},\"rounds\":{},\"digest\":{},\"last\":{last}}}\n",
                s.session,
                s.epoch,
                s.rounds,
                format_str(&digest_hex(s.digest)),
            );
            respond(stream, 200, "OK", "application/json", &body);
        }
        Some(SessionView::Retired {
            opened_epoch,
            current_epoch,
        }) => {
            let body = format!(
                "{{\"status\":\"retired\",\"session\":{session},\"opened_epoch\":{opened_epoch},\"current_epoch\":{current_epoch}}}\n",
            );
            respond(stream, 404, "Not Found", "application/json", &body);
        }
        Some(SessionView::Unknown { current_epoch }) => {
            let body = format!(
                "{{\"status\":\"unknown\",\"session\":{session},\"current_epoch\":{current_epoch}}}\n",
            );
            respond(stream, 404, "Not Found", "application/json", &body);
        }
        // Shard queue full or server draining: the session may well
        // exist, so this must not read as a 404.
        None => respond(
            stream,
            503,
            "Service Unavailable",
            "application/json",
            "{\"status\":\"unavailable\",\"detail\":\"owning shard is saturated or draining\"}\n",
        ),
    }
}

fn respond(stream: &mut TcpStream, code: u16, reason: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}
