//! A blocking client for the tracking server.
//!
//! [`Connection`] exposes raw [`send`](Connection::send) /
//! [`recv`](Connection::recv) for pipelined use (the load generator keeps
//! a window of un-acked pushes in flight) plus strict request/response
//! helpers for tests and tools.

use crate::wire::{
    read_frame, read_frame_traced, write_frame, write_frame_traced, ErrorCode, Frame, ReadingRound,
    RecvError, RoundResult, DEFAULT_MAX_FRAME,
};
use std::net::{TcpStream, ToSocketAddrs};

/// Everything a request/response helper can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure or peer hangup.
    Io(std::io::Error),
    /// The peer's bytes did not decode.
    Protocol(crate::wire::WireError),
    /// The server answered with [`Frame::Error`].
    Server {
        /// Why.
        code: ErrorCode,
        /// The session id / tag the error refers to.
        context: u64,
        /// Server-provided detail.
        detail: String,
    },
    /// The server answered with a frame the request does not expect.
    Unexpected(Frame),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Server {
                code,
                context,
                detail,
            } => write!(f, "server error {code:?} (context {context}): {detail}"),
            ClientError::Unexpected(frame) => write!(f, "unexpected reply frame {frame:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<RecvError> for ClientError {
    fn from(e: RecvError) -> Self {
        match e {
            RecvError::Closed => ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            RecvError::Io(e) => ClientError::Io(e),
            RecvError::Protocol(e) => ClientError::Protocol(e),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A session opened via [`Connection::open_session`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenInfo {
    /// The server-assigned session id.
    pub session: u64,
    /// Map epoch the session is bound to.
    pub epoch: u64,
    /// Digest of the map the session matches against.
    pub map_digest: u64,
}

/// One blocking connection to a tracking server.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    max_frame: u32,
}

impl Connection {
    /// Connects with the default frame bound.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Connection {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Sends one frame.
    pub fn send(&mut self, frame: &Frame) -> std::io::Result<()> {
        write_frame(&mut self.stream, frame)
    }

    /// Sends one frame carrying a correlation `trace` id (v2 wire frame
    /// unless `trace` is 0, which degrades to plain v1). The server
    /// echoes the id in its reply and stamps it into its journal, so a
    /// traced client run can be joined against the server's trace.
    pub fn send_traced(&mut self, frame: &Frame, trace: u64) -> std::io::Result<()> {
        write_frame_traced(&mut self.stream, frame, trace)
    }

    /// Receives one frame.
    pub fn recv(&mut self) -> Result<Frame, RecvError> {
        read_frame(&mut self.stream, self.max_frame)
    }

    /// Receives one frame together with its echoed trace id (0 for
    /// untraced v1 replies).
    pub fn recv_traced(&mut self) -> Result<(Frame, u64), RecvError> {
        read_frame_traced(&mut self.stream, self.max_frame)
    }

    fn expect_reply(&mut self) -> Result<Frame, ClientError> {
        match self.recv()? {
            Frame::Error {
                code,
                context,
                detail,
            } => Err(ClientError::Server {
                code,
                context,
                detail,
            }),
            frame => Ok(frame),
        }
    }

    /// Opens a session (request/response).
    pub fn open_session(
        &mut self,
        client_tag: u64,
        extended: bool,
    ) -> Result<OpenInfo, ClientError> {
        self.send(&Frame::Open {
            client_tag,
            extended,
        })?;
        match self.expect_reply()? {
            Frame::OpenAck {
                client_tag: tag,
                session,
                epoch,
                map_digest,
            } if tag == client_tag => Ok(OpenInfo {
                session,
                epoch,
                map_digest,
            }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Pushes a batch of rounds and waits for its results; returns the
    /// per-round results and the session's running digest.
    pub fn push_rounds(
        &mut self,
        session: u64,
        rounds: Vec<ReadingRound>,
    ) -> Result<(Vec<RoundResult>, u64), ClientError> {
        self.send(&Frame::Push { session, rounds })?;
        match self.expect_reply()? {
            Frame::Rounds {
                session: s,
                results,
                digest,
            } if s == session => Ok((results, digest)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Closes a session; returns `(rounds stepped, final digest)`.
    pub fn close_session(&mut self, session: u64) -> Result<(u64, u64), ClientError> {
        self.send(&Frame::Close { session })?;
        match self.expect_reply()? {
            Frame::CloseAck {
                session: s,
                rounds,
                digest,
            } if s == session => Ok((rounds, digest)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Kills (`death`) or revives a deployment node on the server's shared
    /// map; returns `(new epoch, new map digest)`.
    pub fn churn(&mut self, node: u32, death: bool) -> Result<(u64, u64), ClientError> {
        self.send(&Frame::Churn { node, death })?;
        match self.expect_reply()? {
            Frame::ChurnAck { epoch, map_digest } => Ok((epoch, map_digest)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Asks the server process to shut down.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.send(&Frame::Shutdown)?;
        match self.expect_reply()? {
            Frame::ShutdownAck => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }
}
