//! `wsn-serve`: the tracking-as-a-service daemon.
//!
//! Binds a TCP address, prints `LISTENING <addr>` on stdout (the contract
//! the `serve_load` generator parses when it spawns this binary), then
//! serves sessions until a client sends a `Shutdown` frame. At exit it
//! writes the merged `fttt.server.*` metrics / trace journal if asked.

use std::process::ExitCode;
use wsn_server::{Server, ServerConfig};

const USAGE: &str = "wsn-serve — tracking-as-a-service daemon

USAGE:
    wsn-serve [OPTIONS]

OPTIONS:
    --listen ADDR        Bind address (default 127.0.0.1:0 = free port)
    --shards N           Session-registry worker threads (default 4)
    --queue-depth N      Bounded ingest queue depth per shard (default 256)
    --max-sessions N     Concurrent session cap (default 200000)
    --nodes N            Deployment size of the shared map (default 10)
    --cell-size M        Face-map raster cell, metres (default 2.0)
    --fast               Small-map preset (8 nodes), for smoke runs
    --metrics-out PATH   Write merged metrics at exit
    --metrics-format F   json (default) or prom
    --trace-out PATH     Write the trace journal (JSONL) at exit
    -h, --help           This help
";

struct Args {
    listen: String,
    config: ServerConfig,
    metrics_out: Option<String>,
    metrics_prom: bool,
    trace_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut listen = "127.0.0.1:0".to_string();
    let mut config = ServerConfig::new(
        fttt::PaperParams::default()
            .with_nodes(10)
            .with_cell_size(2.0),
    );
    let mut nodes: Option<usize> = None;
    let mut cell: Option<f64> = None;
    let mut fast = false;
    let mut metrics_out = None;
    let mut metrics_prom = false;
    let mut trace_out = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--listen" => listen = value("--listen")?,
            "--shards" => {
                config.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--queue-depth" => {
                config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--max-sessions" => {
                config.max_sessions = value("--max-sessions")?
                    .parse()
                    .map_err(|e| format!("--max-sessions: {e}"))?;
            }
            "--nodes" => {
                nodes = Some(
                    value("--nodes")?
                        .parse()
                        .map_err(|e| format!("--nodes: {e}"))?,
                )
            }
            "--cell-size" => {
                cell = Some(
                    value("--cell-size")?
                        .parse()
                        .map_err(|e| format!("--cell-size: {e}"))?,
                )
            }
            "--fast" => fast = true,
            "--metrics-out" => metrics_out = Some(value("--metrics-out")?),
            "--metrics-format" => {
                metrics_prom = match value("--metrics-format")?.as_str() {
                    "json" => false,
                    "prom" => true,
                    other => return Err(format!("unknown metrics format {other:?}")),
                }
            }
            "--trace-out" => trace_out = Some(value("--trace-out")?),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if fast {
        config.params = ServerConfig::fast().params;
    }
    if let Some(n) = nodes {
        config.params = config.params.with_nodes(n);
    }
    if let Some(c) = cell {
        config.params = config.params.with_cell_size(c);
    }
    if config.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    Ok(Args {
        listen,
        config,
        metrics_out,
        metrics_prom,
        trace_out,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("wsn-serve: {msg}");
            return ExitCode::FAILURE;
        }
    };

    // A typo'd output path must fail now, not after hours of serving.
    for (flag, path) in [
        ("--metrics-out", &args.metrics_out),
        ("--trace-out", &args.trace_out),
    ] {
        if let Some(p) = path {
            if let Err(msg) = wsn_telemetry::ensure_writable_file(std::path::Path::new(p)) {
                eprintln!("wsn-serve: {flag}: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }

    let journal = args.trace_out.as_ref().map(|_| {
        let journal = std::sync::Arc::new(wsn_telemetry::Journal::new());
        wsn_telemetry::install_journal(std::sync::Arc::clone(&journal));
        journal
    });

    let mut server = match Server::bind(&args.listen, args.config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("wsn-serve: cannot bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    // The spawn contract: exactly one LISTENING line, immediately flushed.
    println!("LISTENING {}", server.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    server.wait_shutdown();
    let snapshot = server.metrics_snapshot();
    server.shutdown();

    if let Some(path) = &args.metrics_out {
        let payload = if args.metrics_prom {
            snapshot.to_prometheus()
        } else {
            snapshot.to_json() + "\n"
        };
        if let Err(e) = std::fs::write(path, payload) {
            eprintln!("wsn-serve: write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.trace_out {
        wsn_telemetry::uninstall_journal();
        let log = journal
            .expect("journal installed with --trace-out")
            .snapshot();
        if let Err(e) = std::fs::write(path, log.to_jsonl()) {
            eprintln!("wsn-serve: write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
