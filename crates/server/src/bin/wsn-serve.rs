//! `wsn-serve`: the tracking-as-a-service daemon.
//!
//! Binds a TCP address, prints `LISTENING <addr>` on stdout (the contract
//! the `serve_load` generator parses when it spawns this binary), then
//! serves sessions until a client sends a `Shutdown` frame. With
//! `--ops-listen` it also binds the live ops plane (`/metrics`,
//! `/healthz`, `/sessions/<id>`) and prints `OPS LISTENING <addr>` as a
//! second banner line. At exit it writes the merged `fttt.server.*`
//! metrics / trace journal if asked.
//!
//! Crash-consistency contract for `--metrics-out`: with
//! `--metrics-interval` the file is rewritten atomically (tmp + rename)
//! every interval and once more at clean shutdown, so a reader — or a
//! post-crash operator — always sees a complete snapshot no older than
//! one interval. A crash can leave a stale `<path>.tmp` beside the intact
//! artifact; it is safe to delete.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use wsn_server::{FlightConfig, Server, ServerConfig};

const USAGE: &str = "wsn-serve — tracking-as-a-service daemon

USAGE:
    wsn-serve [OPTIONS]

OPTIONS:
    --listen ADDR          Bind address (default 127.0.0.1:0 = free port)
    --ops-listen ADDR      Also bind the HTTP ops plane (/metrics, /healthz,
                           /sessions/<id>) on this address
    --shards N             Session-registry worker threads (default 4)
    --queue-depth N        Bounded ingest queue depth per shard (default 256)
    --max-sessions N       Concurrent session cap (default 200000)
    --nodes N              Deployment size of the shared map (default 10)
    --cell-size M          Face-map raster cell, metres (default 2.0)
    --fast                 Small-map preset (8 nodes), for smoke runs
    --metrics-out PATH     Write merged metrics at exit
    --metrics-format F     json (default) or prom
    --metrics-interval S   Also rewrite --metrics-out atomically every S
                           seconds (requires --metrics-out)
    --trace-out PATH       Write the trace journal (JSONL) at exit
    --flight-dir DIR       Enable the anomaly flight recorder: dump journal
                           + metrics into DIR on stalls / shed bursts /
                           stale-epoch storms
    --watchdog-stall S     Declare a shard stalled after S seconds busy on
                           one job (default 5)
    --ingest-stall MS      Fault injection: stall every worker job MS
                           milliseconds (testing only)
    -h, --help             This help
";

struct Args {
    listen: String,
    ops_listen: Option<String>,
    config: ServerConfig,
    metrics_out: Option<String>,
    metrics_prom: bool,
    metrics_interval: Option<Duration>,
    trace_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut listen = "127.0.0.1:0".to_string();
    let mut ops_listen = None;
    let mut config = ServerConfig::new(
        fttt::PaperParams::default()
            .with_nodes(10)
            .with_cell_size(2.0),
    );
    let mut nodes: Option<usize> = None;
    let mut cell: Option<f64> = None;
    let mut fast = false;
    let mut metrics_out = None;
    let mut metrics_prom = false;
    let mut metrics_interval = None;
    let mut trace_out = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--listen" => listen = value("--listen")?,
            "--ops-listen" => ops_listen = Some(value("--ops-listen")?),
            "--shards" => {
                config.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--queue-depth" => {
                config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--max-sessions" => {
                config.max_sessions = value("--max-sessions")?
                    .parse()
                    .map_err(|e| format!("--max-sessions: {e}"))?;
            }
            "--nodes" => {
                nodes = Some(
                    value("--nodes")?
                        .parse()
                        .map_err(|e| format!("--nodes: {e}"))?,
                )
            }
            "--cell-size" => {
                cell = Some(
                    value("--cell-size")?
                        .parse()
                        .map_err(|e| format!("--cell-size: {e}"))?,
                )
            }
            "--fast" => fast = true,
            "--metrics-out" => metrics_out = Some(value("--metrics-out")?),
            "--metrics-format" => {
                metrics_prom = match value("--metrics-format")?.as_str() {
                    "json" => false,
                    "prom" => true,
                    other => return Err(format!("unknown metrics format {other:?}")),
                }
            }
            "--metrics-interval" => {
                let secs: f64 = value("--metrics-interval")?
                    .parse()
                    .map_err(|e| format!("--metrics-interval: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--metrics-interval must be a positive number of seconds".into());
                }
                metrics_interval = Some(Duration::from_secs_f64(secs));
            }
            "--trace-out" => trace_out = Some(value("--trace-out")?),
            "--flight-dir" => {
                config.flight = Some(FlightConfig::new(value("--flight-dir")?));
            }
            "--watchdog-stall" => {
                let secs: f64 = value("--watchdog-stall")?
                    .parse()
                    .map_err(|e| format!("--watchdog-stall: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--watchdog-stall must be a positive number of seconds".into());
                }
                config.watchdog_stall = Duration::from_secs_f64(secs);
            }
            "--ingest-stall" => {
                let ms: u64 = value("--ingest-stall")?
                    .parse()
                    .map_err(|e| format!("--ingest-stall: {e}"))?;
                config.ingest_stall = Some(Duration::from_millis(ms));
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if fast {
        config.params = ServerConfig::fast().params;
    }
    if let Some(n) = nodes {
        config.params = config.params.with_nodes(n);
    }
    if let Some(c) = cell {
        config.params = config.params.with_cell_size(c);
    }
    if config.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    if metrics_interval.is_some() && metrics_out.is_none() {
        return Err("--metrics-interval requires --metrics-out".into());
    }
    Ok(Args {
        listen,
        ops_listen,
        config,
        metrics_out,
        metrics_prom,
        metrics_interval,
        trace_out,
    })
}

fn render_metrics(snapshot: &wsn_telemetry::Snapshot, prom: bool) -> String {
    if prom {
        snapshot.to_prometheus()
    } else {
        snapshot.to_json() + "\n"
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("wsn-serve: {msg}");
            return ExitCode::FAILURE;
        }
    };

    // A typo'd output path must fail now, not after hours of serving.
    for (flag, path) in [
        ("--metrics-out", &args.metrics_out),
        ("--trace-out", &args.trace_out),
    ] {
        if let Some(p) = path {
            if let Err(msg) = wsn_telemetry::ensure_writable_file(std::path::Path::new(p)) {
                eprintln!("wsn-serve: {flag}: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }

    // The journal feeds --trace-out at exit and the flight recorder live,
    // so either flag installs it.
    let journal = (args.trace_out.is_some() || args.config.flight.is_some()).then(|| {
        let journal = std::sync::Arc::new(wsn_telemetry::Journal::new());
        wsn_telemetry::install_journal(std::sync::Arc::clone(&journal));
        journal
    });

    let mut server = match Server::bind(&args.listen, args.config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("wsn-serve: cannot bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    // The spawn contract: exactly one LISTENING line (plus one OPS
    // LISTENING line when the ops plane is up), immediately flushed.
    println!("LISTENING {}", server.local_addr());
    let _ops = match &args.ops_listen {
        Some(addr) => match server.serve_ops(addr) {
            Ok(handle) => {
                println!("OPS LISTENING {}", handle.local_addr());
                Some(handle)
            }
            Err(e) => {
                eprintln!("wsn-serve: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    use std::io::Write;
    let _ = std::io::stdout().flush();

    // Periodic flusher + shutdown wait share the server by scoped borrow;
    // the flusher polls its stop flag at 50 ms so shutdown is prompt even
    // with long intervals.
    let stop_flusher = AtomicBool::new(false);
    let snapshot = std::thread::scope(|scope| {
        if let (Some(interval), Some(path)) = (args.metrics_interval, &args.metrics_out) {
            let server = &server;
            let stop = &stop_flusher;
            let prom = args.metrics_prom;
            scope.spawn(move || {
                let tick = Duration::from_millis(50);
                let mut since_flush = Duration::ZERO;
                loop {
                    std::thread::sleep(tick);
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    since_flush += tick;
                    if since_flush < interval {
                        continue;
                    }
                    since_flush = Duration::ZERO;
                    let payload = render_metrics(&server.metrics_snapshot(), prom);
                    if let Err(msg) = wsn_telemetry::write_file_atomic(
                        std::path::Path::new(path),
                        payload.as_bytes(),
                    ) {
                        eprintln!("wsn-serve: periodic metrics flush: {msg}");
                    }
                }
            });
        }
        server.wait_shutdown();
        let snapshot = server.metrics_snapshot();
        stop_flusher.store(true, Ordering::Relaxed);
        snapshot
    });
    server.shutdown();

    if let Some(path) = &args.metrics_out {
        let payload = render_metrics(&snapshot, args.metrics_prom);
        if let Err(msg) =
            wsn_telemetry::write_file_atomic(std::path::Path::new(path), payload.as_bytes())
        {
            eprintln!("wsn-serve: {msg}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.trace_out {
        wsn_telemetry::uninstall_journal();
        let log = journal
            .expect("journal installed with --trace-out")
            .snapshot();
        if let Err(msg) =
            wsn_telemetry::write_file_atomic(std::path::Path::new(path), log.to_jsonl().as_bytes())
        {
            eprintln!("wsn-serve: {msg}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
