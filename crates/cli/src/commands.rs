//! Subcommand implementations.

use crate::args::{MetricsFormat, Options};
use crate::render::Canvas;
use fttt::config::PaperParams;
use fttt::postprocess;
use fttt::theory;
use fttt_bench::{run_once, trial_stats, MethodKind, Scenario, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Exits with the CLI usage code when an output path cannot be written —
/// called *before* the simulation runs, so a typo'd `--metrics-out` fails
/// in milliseconds instead of after the whole campaign.
fn require_writable(flag: &str, path: &std::path::Path) {
    if let Err(msg) = wsn_telemetry::ensure_writable_file(path) {
        eprintln!("error: {flag}: {msg}");
        std::process::exit(2);
    }
}

/// Installs a fresh telemetry sink when `--metrics-out` was given,
/// returning the registry to flush after the run. Validates the output
/// path up front.
fn metrics_sink(opts: &Options) -> Option<std::sync::Arc<wsn_telemetry::Registry>> {
    let path = opts.metrics_out.as_ref()?;
    require_writable("--metrics-out", path);
    let registry = std::sync::Arc::new(wsn_telemetry::Registry::new());
    wsn_telemetry::install(std::sync::Arc::clone(&registry));
    Some(registry)
}

/// Installs a fresh trace journal when `--trace-out` was given, returning
/// it for draining after the run. Validates the output path up front.
fn trace_sink(opts: &Options) -> Option<std::sync::Arc<wsn_telemetry::Journal>> {
    let path = opts.trace_out.as_ref()?;
    require_writable("--trace-out", path);
    let journal = std::sync::Arc::new(wsn_telemetry::Journal::new());
    wsn_telemetry::install_journal(std::sync::Arc::clone(&journal));
    Some(journal)
}

/// Uninstalls the journal and writes its snapshot to `--trace-out`:
/// a `.jsonl` path selects line-delimited JSON, anything else the Chrome
/// trace-event format (loadable in Perfetto / about:tracing).
fn emit_trace(opts: &Options, journal: Option<std::sync::Arc<wsn_telemetry::Journal>>) {
    let (Some(journal), Some(path)) = (journal, opts.trace_out.as_ref()) else {
        return;
    };
    wsn_telemetry::uninstall_journal();
    let log = journal.snapshot();
    let payload = if path.extension().and_then(|e| e.to_str()) == Some("jsonl") {
        log.to_jsonl()
    } else {
        log.to_chrome_json()
    };
    std::fs::write(path, payload).expect("write trace file");
    eprintln!(
        "[trace] wrote {} ({} events, {} dropped)",
        path.display(),
        log.events.len(),
        log.dropped
    );
}

/// Renders a snapshot in the format picked by `--metrics-format`.
fn metrics_payload(snap: &wsn_telemetry::Snapshot, format: MetricsFormat) -> String {
    match format {
        MetricsFormat::Json => snap.to_json() + "\n",
        MetricsFormat::Prom => snap.to_prometheus(),
    }
}

/// Uninstalls the sink, writes the snapshot to `--metrics-out` in the
/// chosen format and prints the metrics table.
fn emit_metrics(opts: &Options, registry: Option<std::sync::Arc<wsn_telemetry::Registry>>) {
    let (Some(registry), Some(path)) = (registry, opts.metrics_out.as_ref()) else {
        return;
    };
    wsn_telemetry::uninstall();
    let snap = registry.snapshot();
    std::fs::write(path, metrics_payload(&snap, opts.metrics_format)).expect("write metrics file");
    let mut t = Table::new("metrics", &["metric", "value"]);
    for (name, v) in &snap.counters {
        t.row(&[name.clone(), v.to_string()]);
    }
    for (name, v) in &snap.gauges {
        t.row(&[name.clone(), format!("{v}")]);
    }
    for (name, h) in &snap.histograms {
        t.row(&[
            format!("{name} (mean/n)"),
            format!("{:.2} / {}", h.mean(), h.count),
        ]);
    }
    println!();
    t.print();
    eprintln!("[metrics] wrote {}", path.display());
}

fn params_from(opts: &Options) -> PaperParams {
    let mut p = PaperParams::default()
        .with_nodes(opts.nodes)
        .with_epsilon(opts.epsilon)
        .with_samples(opts.samples)
        .with_cell_size(opts.cell);
    if opts.idealized {
        p = p.with_idealized_noise();
    }
    p
}

fn scenario_from(opts: &Options) -> Scenario {
    let mut s = Scenario::new(params_from(opts)).with_duration(opts.duration);
    if opts.grid {
        s = s.with_grid();
    }
    s
}

/// `fttt-sim track`: one simulation, error report, optional render.
pub fn track(opts: &Options) {
    let metrics = metrics_sink(opts);
    let journal = trace_sink(opts);
    let scenario = scenario_from(opts);
    let run = run_once(&scenario, opts.method, opts.seed);
    let stats = run.error_stats();
    println!(
        "{} | n = {}, k = {}, ε = {}, {} deployment, {:.0} s, seed {}",
        opts.method.label(),
        opts.nodes,
        opts.samples,
        opts.epsilon,
        if opts.grid { "grid" } else { "random" },
        opts.duration,
        opts.seed,
    );
    println!(
        "{} localizations | mean {:.2} m | std {:.2} m | max {:.2} m | rmse {:.2} m",
        stats.count, stats.mean, stats.std, stats.max, stats.rmse
    );
    println!(
        "trajectory roughness {:.2} m | mean estimated speed {:.2} m/s",
        postprocess::roughness(&run),
        postprocess::mean_speed(&run)
    );
    if opts.render {
        let field = scenario.params.rect();
        let mut canvas = Canvas::new(field, 64, 32);
        canvas.plot_path(
            &run.localizations
                .iter()
                .map(|l| l.truth)
                .collect::<Vec<_>>(),
            '#',
        );
        for l in &run.localizations {
            canvas.plot(l.estimate, 'o');
        }
        print!("{}", canvas.render());
        println!("  # true trajectory   o estimates");
    }
    if journal.is_some() {
        session_pass(opts);
    }
    emit_metrics(opts, metrics);
    emit_trace(opts, journal);
}

/// With a journal armed, `track` additionally runs the self-healing
/// [`TrackingSession`](fttt::session::TrackingSession) wrapper (FTTT
/// methods only) over the same seeded world, so the trace carries the
/// per-round explainability events that `fttt-sim explain` renders.
fn session_pass(opts: &Options) {
    use fttt::session::{SessionOptions, TrackStatus, TrackingSession};
    use fttt::tracker::{Tracker, TrackerOptions};
    let tracker_options = match opts.method {
        MethodKind::FtttBasic => TrackerOptions::default(),
        MethodKind::FtttExtended => TrackerOptions::extended(),
        MethodKind::FtttHeuristic => TrackerOptions::heuristic(),
        _ => {
            eprintln!(
                "[trace] note: {} has no session wrapper — the trace holds \
                 sampler events only",
                opts.method.label()
            );
            return;
        }
    };
    let params = params_from(opts);
    // Same world derivation as `run_once`: deployment then trace from one
    // seeded stream.
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let field = if opts.grid {
        params.grid_field()
    } else {
        params.random_field(&mut rng)
    };
    let trace = params.random_trace(opts.duration, &mut rng);
    let map = params.face_map(&field);
    let mut session = TrackingSession::new(
        Tracker::new(map, tracker_options),
        SessionOptions::new(params.samples_k).with_max_speed(params.max_speed),
    );
    let base = params.sampler();
    let run = session.run(&trace, &mut rng, |k, pos, _, r| {
        let sampler = wsn_network::GroupSampler {
            samples: k,
            ..base.clone()
        };
        sampler.sample(&field, pos, r)
    });
    let transitions = run
        .rounds
        .windows(2)
        .filter(|w| w[0].status != w[1].status)
        .count();
    println!(
        "session pass: {} rounds | tracking {} / degraded {} / lost {} | \
         {} transition(s) | mean k {:.2}",
        run.rounds.len(),
        run.rounds_in(TrackStatus::Tracking),
        run.rounds_in(TrackStatus::Degraded),
        run.rounds_in(TrackStatus::Lost),
        transitions,
        run.total_samples() as f64 / run.rounds.len().max(1) as f64,
    );
}

/// `fttt-sim facemap`: build (or load) the division and report structure.
pub fn facemap(opts: &Options) {
    let params = params_from(opts);
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let field = if opts.grid {
        params.grid_field()
    } else {
        params.random_field(&mut rng)
    };
    let t0 = std::time::Instant::now();
    let map = match &opts.load {
        Some(path) => {
            let mut file =
                std::io::BufReader::new(std::fs::File::open(path).expect("open face-map file"));
            fttt::facemap::FaceMap::read_from(&mut file).expect("parse face-map file")
        }
        None => params.face_map(&field),
    };
    let build = t0.elapsed();
    if let Some(path) = &opts.save {
        let mut file =
            std::io::BufWriter::new(std::fs::File::create(path).expect("create face-map file"));
        map.write_to(&mut file).expect("serialize face map");
        eprintln!("[saved] {}", path.display());
    }
    println!(
        "n = {}, C = {:.4}, cell = {} m: {} faces ({} certain), {} neighbor links, built in {:.0} ms",
        opts.nodes,
        params.uncertainty_constant(),
        params.cell_size,
        map.face_count(),
        map.certain_face_count(),
        map.neighbor_link_count() / 2,
        build.as_secs_f64() * 1e3,
    );
    let sizes: Vec<usize> = map.faces().iter().map(|f| f.cell_count).collect();
    let max = sizes.iter().max().copied().unwrap_or(0);
    let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
    println!("face sizes: mean {mean:.1} cells, largest {max} cells");
    if opts.render {
        // Shade cells by (face id mod alphabet) to show the arrangement.
        let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789".chars().collect();
        let mut canvas = Canvas::new(params.rect(), 64, 32);
        let grid = map.grid();
        for (_, center) in grid.iter_centers() {
            if let Some(id) = map.face_at(center) {
                canvas.plot(center, alphabet[id.index() % alphabet.len()]);
            }
        }
        for node in field.nodes() {
            canvas.plot(node.pos, '@');
        }
        print!("{}", canvas.render());
        println!("  letters: faces (mod 36)   @ sensors");
    }
}

/// `fttt-sim sweep`: node-count sweep for one method.
pub fn sweep(opts: &Options) {
    let mut t = Table::new(
        format!(
            "{} mean error vs nodes ({} trials, seed {})",
            opts.method.label(),
            opts.trials,
            opts.seed
        ),
        &["n", "mean (m)", "std (m)", "worst world (m)"],
    );
    for n in [5usize, 10, 15, 20, 25, 30, 35, 40] {
        let mut o = opts.clone();
        o.nodes = n;
        let agg = trial_stats(&scenario_from(&o), opts.method, opts.trials, opts.seed);
        t.row(&[
            n.to_string(),
            format!("{:.2}", agg.mean_error),
            format!("{:.2}", agg.mean_std),
            format!("{:.2}", agg.worst_mean),
        ]);
        eprintln!("[sweep] n = {n} done");
    }
    t.print();
}

/// `fttt-sim campaign`: fault regimes × self-healing sessions, with
/// graceful-degradation envelope checks. `--schedule PATH` runs one
/// user-written regime schedule instead of the built-in sweep; a malformed
/// file is rejected at parse time with the offending line.
pub fn campaign(opts: &Options) {
    use fttt_bench::robustness::{
        campaign_field_side, check_churn_digests, check_envelopes, rows_from_stats,
        run_campaign_stats, run_custom_schedule, CampaignConfig, CampaignKind,
    };
    let metrics = metrics_sink(opts);
    let journal = trace_sink(opts);
    let mut cfg = if opts.fast {
        CampaignConfig::fast(opts.seed)
    } else {
        CampaignConfig::full(opts.seed)
    };
    cfg.trials = opts.trials.max(1);
    let (rows, check, churn_violations) = match &opts.schedule {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: cannot read {}: {e}", path.display());
                std::process::exit(2);
            });
            // Parse up front so a malformed file is rejected with its
            // offending line before any simulation runs; the campaign
            // takes the text itself (it embeds the schedule in the
            // journal header so a recording is replayable stand-alone).
            wsn_network::Schedule::parse(&text).unwrap_or_else(|e| {
                eprintln!("error: {}: {e}", path.display());
                std::process::exit(2);
            });
            let label = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("schedule");
            (run_custom_schedule(&cfg, label, &text), false, Vec::new())
        }
        None => {
            let cs = run_campaign_stats(&cfg, &CampaignKind::Builtin, 1, 0);
            let rows = rows_from_stats(&cfg, &cs.cells, &cs.stats);
            // The churn family's strongest invariant rides along: the
            // incremental and rebuild policies must have produced
            // bit-identical per-trial digests.
            let churn = check_churn_digests(&cs.cells, &cs.stats);
            (rows, true, churn)
        }
    };
    let mut t = Table::new(
        format!(
            "fault campaign ({} trials x {:.0} s, {} nodes, seed {})",
            cfg.trials, cfg.duration, cfg.nodes, cfg.seed
        ),
        &[
            "regime",
            "rate",
            "method",
            "mean (m)",
            "worst (m)",
            "lost",
            "degraded",
            "mean k",
        ],
    );
    for r in &rows {
        t.row(&[
            r.regime.clone(),
            r.fault_rate
                .map_or_else(|| "-".into(), |v| format!("{v:.1}")),
            r.method.to_string(),
            format!("{:.2}", r.mean_error),
            format!("{:.2}", r.worst_error),
            format!("{:.1}%", 100.0 * r.lost_fraction),
            format!("{:.1}%", 100.0 * r.degraded_fraction),
            format!("{:.2}", r.mean_samples),
        ]);
    }
    t.print();
    emit_metrics(opts, metrics);
    emit_trace(opts, journal);
    if check {
        let mut violations = check_envelopes(&rows, campaign_field_side(&cfg));
        violations.extend(churn_violations);
        if violations.is_empty() {
            println!("\nall graceful-degradation envelopes hold");
        } else {
            eprintln!("\n{} envelope violation(s):", violations.len());
            for v in &violations {
                eprintln!("  - {v}");
            }
            std::process::exit(1);
        }
    }
}

/// `fttt-sim theory`: the Section-5 sampling-times table.
pub fn theory(opts: &Options) {
    let lambda = opts.lambda;
    let mut t = Table::new(
        format!("required sampling times k for confidence λ = {lambda}"),
        &["in-range nodes", "pairs N", "k", "P(all flips seen)"],
    );
    for nodes in [4usize, 6, 8, 10, 15, 20, 30, 40] {
        let pairs = nodes * (nodes - 1) / 2;
        let k = theory::required_sampling_times(lambda, pairs);
        t.row(&[
            nodes.to_string(),
            pairs.to_string(),
            k.to_string(),
            format!("{:.4}", theory::all_flips_probability(k, pairs)),
        ]);
    }
    t.print();
    println!();
    println!(
        "expected vector error at k = {}: E_N = {:.4} (N = 45 pairs)",
        opts.samples,
        theory::expected_vector_error(opts.samples, 45)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_payload_renders_both_formats() {
        let registry = wsn_telemetry::Registry::new();
        registry.counter("fttt.session.rounds").add(3);
        registry.gauge("fttt.session.samples_k").set(7.0);
        let snap = registry.snapshot();

        let json = metrics_payload(&snap, MetricsFormat::Json);
        assert!(json.ends_with('\n'));
        assert!(json.trim_start().starts_with('{'), "{json}");
        assert!(json.contains("\"fttt.session.rounds\": 3"), "{json}");

        let prom = metrics_payload(&snap, MetricsFormat::Prom);
        assert!(prom.contains("# TYPE"), "{prom}");
        assert!(prom.contains("fttt_session_rounds 3"), "{prom}");
        assert!(prom.contains("fttt_session_samples_k 7"), "{prom}");
    }
}
