//! `fttt-sim` — command-line driver for the FTTT tracking suite.
//!
//! ```text
//! fttt-sim track   [--nodes N] [--method M] [--seed S] [--duration SEC]
//!                  [--grid] [--epsilon E] [--samples K] [--render]
//! fttt-sim facemap [--nodes N] [--seed S] [--cell M] [--render]
//! fttt-sim sweep   [--method M] [--trials T] [--seed S]
//! fttt-sim campaign [--seed S] [--trials T] [--fast] [--schedule PATH]
//! fttt-sim theory  [--lambda L]
//! fttt-sim explain TRACE_FILE
//! fttt-sim replay  TRACE_FILE
//! ```
//!
//! Methods: `fttt` (default), `fttt-ext`, `fttt-heur`, `pm`, `mle`, `wcl`, `pf`, `ekf`.

mod args;
mod commands;
mod explain;
mod render;
mod replay;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprintln!("{}", args::USAGE);
        std::process::exit(2);
    }
    let cmd = argv.remove(0);
    // `explain` and `replay` take a positional trace-file argument, not
    // options (plus `--correlate SERVER_TRACE` for explain).
    if cmd == "explain" || cmd == "replay" {
        let Some(path) = argv.first() else {
            eprintln!("error: {cmd} needs a trace file\n\n{}", args::USAGE);
            std::process::exit(2);
        };
        if cmd == "explain" {
            match argv.get(1).map(String::as_str) {
                None => explain::run(std::path::Path::new(path)),
                Some("--correlate") => {
                    let Some(server) = argv.get(2) else {
                        eprintln!(
                            "error: --correlate needs a server trace file\n\n{}",
                            args::USAGE
                        );
                        std::process::exit(2);
                    };
                    explain::run_correlate(
                        std::path::Path::new(path),
                        std::path::Path::new(server),
                    );
                }
                Some(other) => {
                    eprintln!(
                        "error: explain: unknown option `{other}`\n\n{}",
                        args::USAGE
                    );
                    std::process::exit(2);
                }
            }
        } else {
            replay::run(std::path::Path::new(path));
        }
        return;
    }
    let opts = match args::Options::parse(&argv) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", args::USAGE);
            std::process::exit(2);
        }
    };
    match cmd.as_str() {
        "track" => commands::track(&opts),
        "facemap" => commands::facemap(&opts),
        "sweep" => commands::sweep(&opts),
        "campaign" => commands::campaign(&opts),
        "theory" => commands::theory(&opts),
        "help" | "--help" | "-h" => println!("{}", args::USAGE),
        other => {
            eprintln!("error: unknown command `{other}`\n\n{}", args::USAGE);
            std::process::exit(2);
        }
    }
}
