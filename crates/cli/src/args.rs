//! Argument parsing for `fttt-sim`.

use fttt_bench::MethodKind;

/// Serialization format for the `--metrics-out` snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Structured JSON document (the default).
    Json,
    /// Prometheus exposition text.
    Prom,
}

/// Usage text printed on `help` or malformed input.
pub const USAGE: &str = "\
fttt-sim — FTTT fault-tolerant target tracking simulator

USAGE:
    fttt-sim <COMMAND> [OPTIONS]

COMMANDS:
    track     run one tracking simulation and report per-point errors
    facemap   build a face map and print its statistics
    sweep     Monte-Carlo sweep of the node count for one method
    campaign  fault campaign: self-healing sessions across fault regimes
    theory    print the Section-5 sampling-times table
    explain   render a human-readable timeline from a --trace-out file;
              `explain CLIENT --correlate SERVER` joins a serve_load
              client trace against the server journal by wire trace id
              and names the server-side cause of each slow push
    replay    re-run a campaign recorded with --trace-out and diff every
              round against the recording (exit 1 on divergence)
    help      show this message

OPTIONS:
    --nodes <N>       number of sensors            (default 10)
    --method <M>      fttt|fttt-ext|fttt-heur|pm|mle|wcl|pf|ekf (default fttt)
    --seed <S>        master RNG seed              (default 42)
    --duration <SEC>  trace duration in seconds    (default 60)
    --grid            regular grid deployment      (default: uniform random)
    --epsilon <E>     sensing resolution, dBm      (default 1.0)
    --samples <K>     grouping sampling times      (default 5)
    --cell <M>        raster cell size, metres     (default 1.0)
    --trials <T>      Monte-Carlo trials (sweep)   (default 10)
    --lambda <L>      confidence level (theory)    (default 0.99)
    --idealized       idealized bounded-noise sensing model
    --render          ASCII-render the field/trajectory
    --save <PATH>     (facemap) write the built map to a binary file
    --load <PATH>     (facemap) load a map instead of building one
    --fast            (campaign) reduced smoke workload
    --schedule <PATH> (campaign) run one regime-schedule file instead of
                      the built-in sweep (see DESIGN.md for the format)
    --metrics-out <PATH>
                      (track/campaign) collect telemetry during the run,
                      print a metrics table and write the snapshot
    --metrics-format <F>
                      (track/campaign) snapshot format for --metrics-out:
                      json (default) or prom (Prometheus exposition text)
    --trace-out <PATH>
                      (track/campaign) record a structured trace journal
                      and write it on exit; `.jsonl` extension selects
                      line-delimited JSON, anything else a Chrome
                      trace-event file loadable in Perfetto / about:tracing
";

/// Parsed options (flat across subcommands; each uses what it needs).
#[derive(Debug, Clone)]
pub struct Options {
    pub nodes: usize,
    pub method: MethodKind,
    pub seed: u64,
    pub duration: f64,
    pub grid: bool,
    pub epsilon: f64,
    pub samples: usize,
    pub cell: f64,
    pub trials: usize,
    pub lambda: f64,
    pub idealized: bool,
    pub render: bool,
    pub save: Option<std::path::PathBuf>,
    pub load: Option<std::path::PathBuf>,
    pub fast: bool,
    pub schedule: Option<std::path::PathBuf>,
    pub metrics_out: Option<std::path::PathBuf>,
    pub metrics_format: MetricsFormat,
    pub trace_out: Option<std::path::PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            nodes: 10,
            method: MethodKind::FtttBasic,
            seed: 42,
            duration: 60.0,
            grid: false,
            epsilon: 1.0,
            samples: 5,
            cell: 1.0,
            trials: 10,
            lambda: 0.99,
            idealized: false,
            render: false,
            save: None,
            load: None,
            fast: false,
            schedule: None,
            metrics_out: None,
            metrics_format: MetricsFormat::Json,
            trace_out: None,
        }
    }
}

impl Options {
    /// Parses `argv` (already stripped of the subcommand).
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut o = Self::default();
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match arg.as_str() {
                "--nodes" => o.nodes = parse_num(&value("--nodes")?, "--nodes")?,
                "--method" => o.method = parse_method(&value("--method")?)?,
                "--seed" => o.seed = parse_num(&value("--seed")?, "--seed")?,
                "--duration" => o.duration = parse_num(&value("--duration")?, "--duration")?,
                "--grid" => o.grid = true,
                "--epsilon" => o.epsilon = parse_num(&value("--epsilon")?, "--epsilon")?,
                "--samples" => o.samples = parse_num(&value("--samples")?, "--samples")?,
                "--cell" => o.cell = parse_num(&value("--cell")?, "--cell")?,
                "--trials" => o.trials = parse_num(&value("--trials")?, "--trials")?,
                "--lambda" => o.lambda = parse_num(&value("--lambda")?, "--lambda")?,
                "--idealized" => o.idealized = true,
                "--render" => o.render = true,
                "--save" => o.save = Some(value("--save")?.into()),
                "--load" => o.load = Some(value("--load")?.into()),
                "--fast" => o.fast = true,
                "--schedule" => o.schedule = Some(value("--schedule")?.into()),
                "--metrics-out" => o.metrics_out = Some(value("--metrics-out")?.into()),
                "--metrics-format" => {
                    o.metrics_format = match value("--metrics-format")?.as_str() {
                        "json" => MetricsFormat::Json,
                        "prom" => MetricsFormat::Prom,
                        other => {
                            return Err(format!(
                                "--metrics-format: unknown format `{other}` (json|prom)"
                            ))
                        }
                    }
                }
                "--trace-out" => o.trace_out = Some(value("--trace-out")?.into()),
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        if o.nodes < 2 {
            return Err("--nodes must be at least 2".into());
        }
        if o.samples == 0 {
            return Err("--samples must be at least 1".into());
        }
        Ok(o)
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, name: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{name}: cannot parse `{s}`"))
}

fn parse_method(s: &str) -> Result<MethodKind, String> {
    Ok(match s {
        "fttt" => MethodKind::FtttBasic,
        "fttt-ext" => MethodKind::FtttExtended,
        "fttt-heur" => MethodKind::FtttHeuristic,
        "pm" => MethodKind::Pm,
        "mle" => MethodKind::DirectMle,
        "wcl" => MethodKind::Wcl,
        "pf" => MethodKind::ParticleFilter,
        "ekf" => MethodKind::Ekf,
        other => return Err(format!("unknown method `{other}`")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.nodes, 10);
        assert_eq!(o.method, MethodKind::FtttBasic);
        assert!(!o.grid);
    }

    #[test]
    fn full_line() {
        let o = parse(&[
            "--nodes",
            "25",
            "--method",
            "pm",
            "--seed",
            "7",
            "--duration",
            "30",
            "--grid",
            "--epsilon",
            "2.5",
            "--samples",
            "9",
            "--cell",
            "0.5",
            "--trials",
            "4",
            "--lambda",
            "0.999",
            "--idealized",
            "--render",
        ])
        .unwrap();
        assert_eq!(o.nodes, 25);
        assert_eq!(o.method, MethodKind::Pm);
        assert_eq!(o.seed, 7);
        assert_eq!(o.duration, 30.0);
        assert!(o.grid && o.idealized && o.render);
        assert_eq!(o.epsilon, 2.5);
        assert_eq!(o.samples, 9);
        assert_eq!(o.cell, 0.5);
        assert_eq!(o.trials, 4);
        assert_eq!(o.lambda, 0.999);
    }

    #[test]
    fn every_method_parses() {
        for (name, kind) in [
            ("fttt", MethodKind::FtttBasic),
            ("fttt-ext", MethodKind::FtttExtended),
            ("fttt-heur", MethodKind::FtttHeuristic),
            ("pm", MethodKind::Pm),
            ("mle", MethodKind::DirectMle),
            ("wcl", MethodKind::Wcl),
            ("pf", MethodKind::ParticleFilter),
            ("ekf", MethodKind::Ekf),
        ] {
            assert_eq!(parse(&["--method", name]).unwrap().method, kind);
        }
    }

    #[test]
    fn metrics_out_parses() {
        let o = parse(&["--metrics-out", "m.json"]).unwrap();
        assert_eq!(o.metrics_out, Some(std::path::PathBuf::from("m.json")));
        assert!(parse(&[]).unwrap().metrics_out.is_none());
        assert!(parse(&["--metrics-out"]).is_err());
    }

    #[test]
    fn metrics_format_parses() {
        assert_eq!(parse(&[]).unwrap().metrics_format, MetricsFormat::Json);
        assert_eq!(
            parse(&["--metrics-format", "json"]).unwrap().metrics_format,
            MetricsFormat::Json
        );
        assert_eq!(
            parse(&["--metrics-format", "prom"]).unwrap().metrics_format,
            MetricsFormat::Prom
        );
        assert!(parse(&["--metrics-format", "xml"]).is_err());
        assert!(parse(&["--metrics-format"]).is_err());
    }

    #[test]
    fn trace_out_parses() {
        let o = parse(&["--trace-out", "run.trace.json"]).unwrap();
        assert_eq!(
            o.trace_out,
            Some(std::path::PathBuf::from("run.trace.json"))
        );
        assert!(parse(&[]).unwrap().trace_out.is_none());
        assert!(parse(&["--trace-out"]).is_err());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&["--nodes"]).is_err());
        assert!(parse(&["--nodes", "abc"]).is_err());
        assert!(parse(&["--nodes", "1"]).is_err());
        assert!(parse(&["--method", "kalman"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
    }
}
